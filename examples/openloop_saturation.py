#!/usr/bin/env python3
"""Drive Obladi with offered load and find its saturation knee.

The other examples measure "N clients in lockstep" (a closed loop).  This
one asks the question a capacity planner asks: *what happens as the arrival
rate approaches and passes what the system can serve?*  Transactions arrive
according to a seeded Poisson process (``repro.api.PoissonArrivals``), wait
in a bounded admission queue, and are dispatched in epoch-sized waves by the
open-loop driver (``engine.run_open_loop``), which measures queueing delay
separately from service latency.

The sweep offers load at multiples of the measured closed-loop ceiling and
prints the classic saturation curve: flat-ish latency below the knee, a
throughput plateau at the ceiling, and queue-driven latency growth past it.

Run it with::

    python examples/openloop_saturation.py
"""

from repro.harness.experiments import run_saturation_sweep
from repro.harness.report import print_table

MULTIPLIERS = (0.05, 0.25, 0.5, 1.0, 2.0, 4.0)


def main() -> None:
    rows = run_saturation_sweep(kinds=("obladi", "nopriv"),
                                rate_multipliers=MULTIPLIERS,
                                transactions=96, clients=16)

    print_table(rows,
                title="Open-loop saturation sweep (Poisson arrivals, simulated time)",
                columns=["engine", "rate_multiplier", "target_rate_tps",
                         "achieved_tps", "mean_total_latency_ms",
                         "p95_total_latency_ms", "mean_queue_delay_ms",
                         "max_queue_depth", "dropped"])

    for kind in ("obladi", "nopriv"):
        ceiling = next(r.closed_loop_tps for r in rows if r.engine == kind)
        past = [r for r in rows if r.engine == kind and r.rate_multiplier > 1]
        plateau = max(r.achieved_tps for r in past)
        print(f"\n{kind}: closed-loop ceiling {ceiling:.0f} txn/s; "
              f"past-knee plateau {plateau:.0f} txn/s "
              f"({plateau / ceiling:.0%} of ceiling); "
              f"queueing delay grows {past[0].mean_queue_delay_ms:.1f} -> "
              f"{past[-1].mean_queue_delay_ms:.1f} ms from "
              f"{past[0].rate_multiplier:g}x to {past[-1].rate_multiplier:g}x")


if __name__ == "__main__":
    main()
