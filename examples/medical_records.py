#!/usr/bin/env python3
"""An oblivious electronic-health-record service (the paper's motivating use).

The introduction of the Obladi paper motivates hiding access patterns with a
medical scenario: even when charts are encrypted, *which* chart is read and
*how often* can reveal a diagnosis (e.g. the cadence of chemotherapy
appointments).  This example runs the FreeHealth EHR workload on Obladi and
then demonstrates exactly that property: a patient receiving weekly
treatment and a patient never seen at all are indistinguishable to the cloud
storage provider.

Run it with::

    python examples/medical_records.py
"""

import random

from repro.analysis.obliviousness import leaf_access_counts, trace_similarity
from repro.api import EngineConfig, create_engine
from repro.workloads.freehealth import FreeHealthConfig, FreeHealthWorkload


def build_clinic(seed: int) -> tuple:
    """A small clinic database on an Obladi engine."""
    workload = FreeHealthWorkload(FreeHealthConfig(num_users=6, num_patients=80,
                                                   num_drugs=30, seed=seed))
    data = workload.initial_data()
    config = (EngineConfig()
              .with_workload("freehealth")
              .with_backend("server")
              .with_oram(num_blocks=2 * len(data), z_real=16, block_size=320)
              .with_batching(read_batch_size=32, write_batch_size=16)
              .with_durability(True)
              .with_seed(seed))
    engine = create_engine("obladi", config)
    engine.load_initial_data(data)
    return engine, workload


def run_clinic_day(engine, workload, transactions=60, clients=10) -> None:
    """A day at the clinic: chart lookups, new episodes, prescriptions."""
    run = engine.run_closed_loop(workload.transaction_factory,
                                 total_transactions=transactions, clients=clients)
    print(f"  committed {run.committed} clinical transactions "
          f"({run.aborted} retried/aborted) in {run.epochs} epochs")
    print(f"  simulated throughput {run.throughput_tps:.0f} txn/s, "
          f"mean latency {run.average_latency_ms:.0f} ms")


def chemotherapy_schedule(engine, workload, patient: int, weeks: int = 6) -> None:
    """Weekly oncology visits for one patient: episode + prescription each week."""
    for week in range(weeks):
        engine.submit_many([workload.create_episode_program(patient=patient),
                            workload.prescribe_program()])


def main() -> None:
    print("=== Oblivious EHR demo (FreeHealth on Obladi) ===\n")

    print("A normal clinic day:")
    engine, workload = build_clinic(seed=1)
    run_clinic_day(engine, workload)

    print("\nNow compare two worlds the cloud provider might try to tell apart:")
    print("  world A: patient 7 attends weekly chemotherapy appointments")
    print("  world B: patient 7 never visits; other patients are seen instead\n")

    world_a, workload_a = build_clinic(seed=2)
    world_a.storage.trace.clear()
    chemotherapy_schedule(world_a, workload_a, patient=7)

    world_b, workload_b = build_clinic(seed=2)
    world_b.storage.trace.clear()
    rng = random.Random(3)
    for _ in range(6):
        world_b.submit_many([workload_b.lookup_patient_program(),
                             workload_b.medical_history_program()])
    del rng

    depth = world_a.proxy.oram.params.depth
    distance = trace_similarity(world_a.storage.trace, world_b.storage.trace, depth)
    counts_a = leaf_access_counts(world_a.storage.trace, depth)
    read_batches_a = [s for k, s in world_a.storage.trace.batch_shape() if k == "read"]
    read_batches_b = [s for k, s in world_b.storage.trace.batch_shape() if k == "read"]
    print(f"physical requests observed:  world A = {len(world_a.storage.trace)}, "
          f"world B = {len(world_b.storage.trace)}")
    print(f"distinct ORAM paths touched in world A: {len(counts_a)}")
    print(f"total-variation distance between the two path distributions: {distance:.3f}")
    print(f"read batches observed: {len(read_batches_a)} vs {len(read_batches_b)}, "
          f"all padded to size {set(read_batches_a) | set(read_batches_b)}")
    print("\nThe provider sees the same number of fixed-size encrypted batches in both"
          "\nworlds and statistically indistinguishable path distributions — it cannot"
          "\ntell whether patient 7 is in treatment at all.")


if __name__ == "__main__":
    main()
