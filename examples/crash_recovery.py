#!/usr/bin/env python3
"""Crash the proxy mid-epoch and recover it obliviously.

Obladi's durability story (paper §8): transactions become durable only at
epoch boundaries; the proxy checkpoints its metadata (position map,
permutations, stash, counters) every epoch and logs each read batch's access
locations before executing it.  After a crash, a fresh proxy restores the
last committed epoch, rolls the ORAM back to that epoch's bucket versions,
and replays the aborted epoch's logged paths so the storage server learns
nothing from the failure.

The engine API surfaces this as ``engine.crash()`` / ``engine.recover()``
(the Obladi engine sets ``supports_crash_recovery``; the baselines raise
``EngineFeatureUnavailable`` — they have no durability story to recover).

Run it with::

    python examples/crash_recovery.py
"""

from repro.api import EngineConfig, create_engine
from repro.core.client import Read, Write
from repro.core.errors import ProxyCrashedError
from repro.recovery.crash import CrashInjector, CrashPoint


def main() -> None:
    config = (EngineConfig()
              .with_oram(num_blocks=1024, z_real=8, block_size=160)
              .with_batching(read_batches=3, read_batch_size=12, write_batch_size=12)
              .with_backend("server")
              .with_durability(True, checkpoint_frequency=2)
              .with_seed(9))
    engine = create_engine("obladi", config)
    engine.load_initial_data({f"doc:{i}": f"draft-{i}".encode() for i in range(40)})
    print("Engine started with durability on; initial checkpoint written "
          f"(supports_crash_recovery={engine.supports_crash_recovery}).\n")

    # Commit two epochs of edits (one submit_many wave = one epoch).
    for epoch in range(2):
        def edit_for(i, epoch=epoch):
            def edit():
                yield Read(f"doc:{i}")
                yield Write(f"doc:{i}", f"revision-{epoch}-{i}".encode())
                return True
            return edit

        results = engine.submit_many([edit_for(i) for i in range(5)])
        print(f"epoch wave {epoch}: committed {sum(r.committed for r in results)} edits")
    print("doc:1 is now:", engine.read("doc:1").decode(), "\n")

    # Crash in the middle of the next epoch, after its first read batch.
    # (Crash *injection* is proxy-level tooling; the engine exposes the
    # recovery path itself.)
    injector = CrashInjector(engine.proxy, crash_after_batches=1,
                             point=CrashPoint.AFTER_READ_BATCH)
    injector.arm()

    def doomed_edit():
        yield Read("doc:1")
        yield Write("doc:1", b"MUST-NOT-SURVIVE")
        return True

    try:
        engine.submit_many([doomed_edit])
    except ProxyCrashedError as crash:
        print(f"proxy crashed mid-epoch: {crash}\n")

    # Recover: only the master key survives; everything else comes from the
    # untrusted store.  The engine swaps in the recovered proxy.
    report = engine.recover()
    print("recovery complete:")
    print(f"  recovered epoch        : {report.recovered_epoch}")
    print(f"  aborted epoch          : {report.aborted_epoch}")
    print(f"  total time             : {report.total_ms:.1f} simulated ms")
    print(f"    network              : {report.network_ms:.1f} ms")
    print(f"    position map         : {report.position_ms:.2f} ms "
          f"({report.position_entries} entries)")
    print(f"    permutation metadata : {report.permutation_ms:.2f} ms "
          f"({report.metadata_buckets} buckets)")
    print(f"    path replay          : {report.paths_ms:.2f} ms "
          f"({report.paths_replayed} logged requests re-read)")

    value = engine.read("doc:1")
    print(f"\ndoc:1 after recovery: {value.decode()!r} "
          "(the committed revision; the in-flight edit vanished with its epoch)")

    # And the recovered engine keeps serving transactions.
    def post_recovery_edit():
        yield Write("doc:1", b"post-recovery-edit")
        return True

    engine.submit(post_recovery_edit)
    print("doc:1 after a post-recovery edit:", engine.read("doc:1").decode())


if __name__ == "__main__":
    main()
