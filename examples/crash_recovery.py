#!/usr/bin/env python3
"""Crash the proxy mid-epoch and recover it obliviously.

Obladi's durability story (paper §8): transactions become durable only at
epoch boundaries; the proxy checkpoints its metadata (position map,
permutations, stash, counters) every epoch and logs each read batch's access
locations before executing it.  After a crash, a fresh proxy restores the
last committed epoch, rolls the ORAM back to that epoch's bucket versions,
and replays the aborted epoch's logged paths so the storage server learns
nothing from the failure.

Run it with::

    python examples/crash_recovery.py
"""

from repro.core.client import Read, Write
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.errors import ProxyCrashedError
from repro.core.proxy import ObladiProxy
from repro.recovery.crash import CrashInjector, CrashPoint
from repro.recovery.manager import recover_proxy


def read_key(proxy, key):
    def program():
        value = yield Read(key)
        return value

    return proxy.execute_transaction(program).return_value


def main() -> None:
    config = ObladiConfig(
        oram=RingOramConfig(num_blocks=1024, z_real=8, block_size=160),
        read_batches=3, read_batch_size=12, write_batch_size=12,
        backend="server", durability=True, checkpoint_frequency=2, seed=9)
    proxy = ObladiProxy(config)
    proxy.load_initial_data({f"doc:{i}": f"draft-{i}".encode() for i in range(40)})
    print("Proxy started with durability on; initial checkpoint written.\n")

    # Commit two epochs of edits.
    for epoch in range(2):
        for i in range(5):
            def edit(i=i, epoch=epoch):
                yield Read(f"doc:{i}")
                yield Write(f"doc:{i}", f"revision-{epoch}-{i}".encode())
                return True
            proxy.submit(edit)
        summary = proxy.run_epoch()
        print(f"epoch {summary.epoch_id}: committed {summary.committed} edits "
              f"(simulated {summary.duration_ms:.1f} ms)")
    print("doc:1 is now:", read_key(proxy, "doc:1").decode(), "\n")

    # Crash in the middle of the next epoch, after its first read batch.
    injector = CrashInjector(proxy, crash_after_batches=1, point=CrashPoint.AFTER_READ_BATCH)
    injector.arm()

    def doomed_edit():
        yield Read("doc:1")
        yield Write("doc:1", b"MUST-NOT-SURVIVE")
        return True

    proxy.submit(doomed_edit)
    try:
        proxy.run_epoch()
    except ProxyCrashedError as crash:
        print(f"proxy crashed mid-epoch: {crash}\n")

    # Recover: only the master key survives; everything else comes from the
    # untrusted store.
    recovered, report = recover_proxy(proxy.storage, config, master_key=proxy.master_key)
    print("recovery complete:")
    print(f"  recovered epoch        : {report.recovered_epoch}")
    print(f"  aborted epoch          : {report.aborted_epoch}")
    print(f"  total time             : {report.total_ms:.1f} simulated ms")
    print(f"    network              : {report.network_ms:.1f} ms")
    print(f"    position map         : {report.position_ms:.2f} ms "
          f"({report.position_entries} entries)")
    print(f"    permutation metadata : {report.permutation_ms:.2f} ms "
          f"({report.metadata_buckets} buckets)")
    print(f"    path replay          : {report.paths_ms:.2f} ms "
          f"({report.paths_replayed} logged requests re-read)")

    value = read_key(recovered, "doc:1")
    print(f"\ndoc:1 after recovery: {value.decode()!r} "
          "(the committed revision; the in-flight edit vanished with its epoch)")

    # And the recovered proxy keeps serving transactions.
    def post_recovery_edit():
        yield Write("doc:1", b"post-recovery-edit")
        return True

    recovered.submit(post_recovery_edit)
    recovered.run_epoch()
    print("doc:1 after a post-recovery edit:", read_key(recovered, "doc:1").decode())


if __name__ == "__main__":
    main()
