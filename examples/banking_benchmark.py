#!/usr/bin/env python3
"""Compare Obladi against the non-private baselines on SmallBank.

This example reproduces, at laptop scale, the comparison behind Figure 9 for
one application: the SmallBank banking workload running on

* Obladi (oblivious, serializable, durable),
* NoPriv (same MVTSO concurrency control, plain remote storage), and
* a MySQL-like strict-2PL store,

in both the LAN (0.3 ms) and WAN (10 ms) settings, and prints the
throughput/latency table plus the privacy price Obladi pays.

Run it with::

    python examples/banking_benchmark.py
"""

from repro.baseline.mysql_like import TwoPhaseLockingStore
from repro.baseline.nopriv import NoPrivProxy
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.proxy import ObladiProxy
from repro.harness.report import print_table
from repro.workloads.driver import run_baseline_closed_loop, run_obladi_closed_loop
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload

TRANSACTIONS = 150
CLIENTS = 24
ACCOUNTS = 400


def fresh_workload():
    return SmallBankWorkload(SmallBankConfig(num_accounts=ACCOUNTS, seed=11))


def run_obladi(backend: str):
    workload = fresh_workload()
    data = workload.initial_data()
    config = ObladiConfig.for_workload(
        "smallbank", num_blocks=2 * len(data), backend=backend,
        oram=RingOramConfig(num_blocks=2 * len(data), z_real=16, block_size=192),
        read_batch_size=CLIENTS * 3, write_batch_size=CLIENTS * 2,
        durability=True, encrypt=False, seed=11)
    proxy = ObladiProxy(config)
    proxy.load_initial_data(data)
    return run_obladi_closed_loop(proxy, workload.transaction_factory,
                                  total_transactions=TRANSACTIONS, clients=CLIENTS)


def run_baseline(kind: str, backend: str):
    workload = fresh_workload()
    data = workload.initial_data()
    baseline = NoPrivProxy(backend=backend) if kind == "nopriv" else TwoPhaseLockingStore()
    baseline.load_initial_data(data)
    return run_baseline_closed_loop(baseline, workload.transaction_factory,
                                    total_transactions=TRANSACTIONS, clients=CLIENTS)


def main() -> None:
    print(f"SmallBank, {ACCOUNTS} accounts, {CLIENTS} concurrent clients, "
          f"{TRANSACTIONS} transactions per system (simulated time)\n")

    rows = []
    runs = {}
    for label, runner in (
        ("obladi", lambda: run_obladi("server")),
        ("nopriv", lambda: run_baseline("nopriv", "server")),
        ("mysql", lambda: run_baseline("mysql", "server")),
        ("obladi (WAN)", lambda: run_obladi("server_wan")),
        ("nopriv (WAN)", lambda: run_baseline("nopriv", "server_wan")),
    ):
        run = runner()
        runs[label] = run
        rows.append({
            "system": label,
            "throughput_tps": round(run.throughput_tps, 1),
            "mean_latency_ms": round(run.average_latency_ms, 2),
            "committed": run.committed,
            "abort_rate": round(run.abort_rate, 3),
        })

    print_table(rows, title="SmallBank: Obladi vs non-private baselines")

    obladi, nopriv = runs["obladi"], runs["nopriv"]
    print("The price of hiding access patterns (LAN):")
    print(f"  throughput: {nopriv.throughput_tps / max(obladi.throughput_tps, 1e-9):.1f}x lower")
    print(f"  latency:    {obladi.average_latency_ms / max(nopriv.average_latency_ms, 1e-9):.0f}x higher")
    print("\nThe paper reports Obladi within 5x-12x of NoPriv's throughput with a "
          "17x-70x latency penalty; the simulated reproduction should land in the "
          "same ballpark (see EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
