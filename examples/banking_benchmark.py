#!/usr/bin/env python3
"""Compare Obladi against the non-private baselines on SmallBank.

This example reproduces, at laptop scale, the comparison behind Figure 9 for
one application: the SmallBank banking workload running on

* Obladi (oblivious, serializable, durable),
* NoPriv (same MVTSO concurrency control, plain remote storage), and
* a MySQL-like strict-2PL store,

in both the LAN (0.3 ms) and WAN (10 ms) settings, and prints the
throughput/latency table plus the privacy price Obladi pays.

Every system is a :class:`~repro.api.engine.TransactionEngine` built by
:func:`repro.api.create_engine`, so the whole comparison is one loop: same
workload object, same closed-loop driver, three engines.

Run it with::

    python examples/banking_benchmark.py
"""

from repro.api import EngineConfig, create_engine
from repro.harness.report import print_table
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload

TRANSACTIONS = 150
CLIENTS = 24
ACCOUNTS = 400


def fresh_workload():
    return SmallBankWorkload(SmallBankConfig(num_accounts=ACCOUNTS, seed=11))


def build_engine(kind: str, backend: str, num_blocks: int):
    config = (EngineConfig()
              .with_workload("smallbank")
              .with_backend(backend)
              .with_oram(num_blocks=num_blocks, z_real=16, block_size=192)
              .with_batching(read_batch_size=CLIENTS * 3, write_batch_size=CLIENTS * 2)
              .with_durability(True)
              .with_encryption(False)
              .with_seed(11))
    return create_engine(kind, config)


def run_system(kind: str, backend: str):
    workload = fresh_workload()
    data = workload.initial_data()
    engine = build_engine(kind, backend, num_blocks=2 * len(data))
    engine.load_initial_data(data)
    return engine.run_closed_loop(workload.transaction_factory,
                                  total_transactions=TRANSACTIONS, clients=CLIENTS)


def main() -> None:
    print(f"SmallBank, {ACCOUNTS} accounts, {CLIENTS} concurrent clients, "
          f"{TRANSACTIONS} transactions per system (simulated time)\n")

    rows = []
    runs = {}
    for label, kind, backend in (
        ("obladi", "obladi", "server"),
        ("nopriv", "nopriv", "server"),
        ("mysql", "mysql", "server"),
        ("obladi (WAN)", "obladi", "server_wan"),
        ("nopriv (WAN)", "nopriv", "server_wan"),
    ):
        run = run_system(kind, backend)
        runs[label] = run
        rows.append({
            "system": label,
            "throughput_tps": round(run.throughput_tps, 1),
            "mean_latency_ms": round(run.average_latency_ms, 2),
            "committed": run.committed,
            "abort_rate": round(run.abort_rate, 3),
        })

    print_table(rows, title="SmallBank: Obladi vs non-private baselines")

    obladi, nopriv = runs["obladi"], runs["nopriv"]
    print("The price of hiding access patterns (LAN):")
    print(f"  throughput: {nopriv.throughput_tps / max(obladi.throughput_tps, 1e-9):.1f}x lower")
    print(f"  latency:    {obladi.average_latency_ms / max(nopriv.average_latency_ms, 1e-9):.0f}x higher")
    print("\nThe paper reports Obladi within 5x-12x of NoPriv's throughput with a "
          "17x-70x latency penalty; the simulated reproduction should land in the "
          "same ballpark (see EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
