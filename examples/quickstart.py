#!/usr/bin/env python3
"""Quickstart: oblivious serializable transactions in a few lines.

This example stands up an Obladi engine backed by a (simulated) untrusted
cloud store through the unified API (:func:`repro.api.create_engine`), loads
a handful of records, and runs transactions three ways:

1. the interactive :meth:`~repro.api.engine.TransactionEngine.transaction`
   context manager,
2. generator transaction programs submitted as one epoch wave via
   ``engine.submit_many`` (the API the workloads use), and
3. a quick look at what the *storage server* observed — encrypted slots of
   fixed size, touched along uniformly random paths, none of which reveal
   which logical keys the transactions used.

The same ``create_engine`` call with kind ``"nopriv"`` or ``"mysql"`` runs
the identical programs on the paper's non-private baselines (see
``examples/banking_benchmark.py``).

Run it with::

    python examples/quickstart.py
"""

from repro.api import EngineConfig, create_engine
from repro.core.client import ReadMany, Write


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Configure and start the engine.
    # ------------------------------------------------------------------ #
    config = (EngineConfig()
              .with_oram(num_blocks=2_048, z_real=8, block_size=256)
              .with_batching(read_batches=3,        # R
                             read_batch_size=16,    # b_read
                             write_batch_size=16,   # b_write
                             batch_interval_ms=5.0)  # Δ
              .with_backend("server")               # 0.3 ms LAN storage
              .with_durability(True)
              .with_encryption(True)
              .with_seed(42))
    engine = create_engine("obladi", config)
    print("Started Obladi engine:", engine.proxy.config.describe())

    # Load an initial dataset (this also writes the first durable checkpoint).
    accounts = {f"account:{i}": f'{{"owner": "user{i}", "balance": {100 + i}}}'.encode()
                for i in range(20)}
    engine.load_initial_data(accounts)
    print(f"Loaded {len(accounts)} records into the ORAM "
          f"({engine.proxy.oram.params.describe()})\n")

    # ------------------------------------------------------------------ #
    # 2. The interactive facade: read, write, commit.
    # ------------------------------------------------------------------ #
    txn = engine.transaction()
    balance_blob = txn.read("account:3")
    print("account:3 before:", balance_blob.decode())
    txn.write("account:3", b'{"owner": "user3", "balance": 1000}')
    # Reads see the transaction's own buffered writes before commit:
    print("account:3 inside txn:", txn.read("account:3").decode())
    result = txn.commit()
    print(f"interactive transaction committed in epoch {result.epoch} "
          f"(latency {result.latency_ms:.1f} simulated ms)\n")

    # ------------------------------------------------------------------ #
    # 3. Generator programs: the API used by the paper's workloads.
    # ------------------------------------------------------------------ #
    def transfer(src: str, dst: str, amount: int):
        """Move ``amount`` between two accounts, atomically."""
        import json

        rows = yield ReadMany([src, dst])
        src_row = json.loads(rows[src])
        dst_row = json.loads(rows[dst])
        src_row["balance"] -= amount
        dst_row["balance"] += amount
        yield Write(src, json.dumps(src_row).encode())
        yield Write(dst, json.dumps(dst_row).encode())
        return src_row["balance"], dst_row["balance"]

    # One submit_many wave = one epoch: the transfers commit together.
    results = engine.submit_many(
        [lambda i=i: transfer(f"account:{i}", f"account:{i + 10}", 25)
         for i in range(4)])
    print(f"epoch wave: committed={sum(r.committed for r in results)} "
          f"aborted={sum(not r.committed for r in results)}")

    def audit():
        rows = yield ReadMany([f"account:{i}" for i in range(20)])
        import json
        return sum(json.loads(v)["balance"] for v in rows.values())

    total = engine.submit(audit).return_value
    print("total balance across all accounts:", total, "\n")

    # ------------------------------------------------------------------ #
    # 4. What did the storage server see?
    # ------------------------------------------------------------------ #
    trace = engine.storage.trace
    print("Adversary's view (a few physical requests):")
    for event in trace.events[-5:]:
        print(f"   {event.op.value:5s} {event.key:24s} {event.size_bytes} bytes")
    reads = trace.ops_by_kind()
    print(f"...and {len(trace)} requests total ({reads}).")
    read_batch_size = engine.proxy.config.read_batch_size
    epoch_batches = [(kind, size) for kind, size in trace.batch_shape()
                     if size >= read_batch_size]
    print("Logical batch pattern of the last epochs (kind, size):", epoch_batches[-4:])
    print("\nNo request names an application key, every ORAM slot is a fixed-size "
          "ciphertext, and the read batches are always padded to b_read regardless "
          "of how many real requests the epoch contained.")


if __name__ == "__main__":
    main()
