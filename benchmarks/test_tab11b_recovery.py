"""Table 11b: durability slowdown and recovery-time breakdown vs ORAM size.

The paper reports, for 10K/100K/1M objects on the WAN backend: a normal-case
slowdown of 0.83x-0.89x from durability, total recovery times growing from
about 1.5 s to 6.1 s, position/permutation map costs growing with the number
of keys, and path-replay costs growing only with the tree depth.
"""

from repro.harness.experiments import run_recovery_table
from repro.harness.report import render_table

from .conftest import run_once


def test_tab11b_recovery(benchmark, bench_scale):
    sizes = bench_scale["recovery_sizes"]
    rows = run_once(benchmark, lambda: run_recovery_table(
        sizes=sizes,
        backend="server_wan",
        transactions=max(32, bench_scale["transactions"] // 4),
        clients=max(8, bench_scale["clients"] // 4),
    ))
    print()
    print(render_table(rows, title="Table 11b — recovery breakdown (simulated ms, WAN)",
                       columns=["num_objects", "tree_levels", "durability_slowdown",
                                "recovery_time_ms", "network_ms", "position_ms",
                                "permutation_ms", "paths_ms"]))
    ordered = sorted(rows, key=lambda r: r.num_objects)
    for row in ordered:
        # Durability costs some throughput but far from all of it.
        assert 0.3 < row.durability_slowdown <= 1.1
        assert row.recovery_time_ms > 0
    # Metadata-decryption costs grow with the number of objects; recovery
    # time therefore grows with ORAM size.
    assert ordered[-1].position_ms >= ordered[0].position_ms
    assert ordered[-1].permutation_ms >= ordered[0].permutation_ms
    assert ordered[-1].recovery_time_ms >= ordered[0].recovery_time_ms
    # The larger ORAM has at least as many tree levels.
    assert ordered[-1].tree_levels >= ordered[0].tree_levels
