"""Heterogeneous-link sweep: one slow proxy-to-server link in the cluster.

``link_extra_rtt_ms`` has existed since the storage tier grew distinct
servers, but no benchmark swept it.  This sweep runs SmallBank over a
one-server-per-partition topology (``shards=4``, ``storage_servers=4``)
while adding round-trip time to *one* link, and pins the two claims that
make heterogeneous links safe to reason about:

* **Timing degrades with the slowest link.**  Partition batches fan out in
  parallel and the epoch charges the slowest partition, so the mean epoch
  wall-time grows monotonically with the slow link's extra RTT and
  throughput falls.
* **The shape never changes.**  Per-server request *counts* are a function
  of the configuration alone: every server observes exactly the same padded
  batches no matter how slow its link is.  A network adversary that can
  only time one link learns nothing about the workload from counts.
"""

from repro.api import EngineConfig, create_engine
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload

from .conftest import run_once

TRANSACTIONS = 96
CLIENTS = 24
EXTRA_RTTS_MS = (0.0, 2.0, 8.0)


def _run(extra_rtt_ms: float, num_accounts: int):
    workload = SmallBankWorkload(SmallBankConfig(num_accounts=num_accounts, seed=17))
    config = (EngineConfig()
              .with_workload("smallbank")
              .with_backend("server")
              .with_oram(num_blocks=max(4096, 2 * num_accounts), z_real=8,
                         block_size=192)
              .with_batching(read_batches=3, read_batch_size=64, write_batch_size=64,
                             batch_interval_ms=1.0)
              .with_durability(False)
              .with_encryption(False)
              .with_sharding(4)
              .with_storage_servers(4, link_extra_rtt_ms=(0.0, 0.0, 0.0, extra_rtt_ms))
              .with_seed(17))
    engine = create_engine("obladi", config)
    engine.load_initial_data(workload.initial_data())
    stats = engine.run_closed_loop(workload.transaction_factory,
                                   total_transactions=TRANSACTIONS, clients=CLIENTS)
    summaries = engine.proxy.epoch_summaries
    mean_epoch_ms = sum(s.duration_ms for s in summaries) / len(summaries)
    return stats, mean_epoch_ms


def test_slow_link_costs_time_but_never_changes_the_shape(benchmark, bench_scale):
    num_accounts = max(400, int(4000 * bench_scale["workload_scale"]))

    def experiment():
        return [_run(extra, num_accounts) for extra in EXTRA_RTTS_MS]

    sweep = run_once(benchmark, experiment)
    print()
    for extra, (stats, mean_epoch_ms) in zip(EXTRA_RTTS_MS, sweep):
        print(f"  +{extra:4.1f} ms on link 3: {stats.throughput_tps:9.1f} txn/s, "
              f"mean epoch {mean_epoch_ms:7.2f} ms, "
              f"server reads {[reads for reads, _ in stats.server_physical]}")

    baseline_stats, baseline_epoch_ms = sweep[0]
    assert baseline_stats.committed > 0
    epochs = [mean_epoch_ms for _, mean_epoch_ms in sweep]
    throughputs = [stats.throughput_tps for stats, _ in sweep]
    # Timing: the slowest link dominates the parallel fan-out, so epoch
    # wall-time is monotonically non-decreasing in the extra RTT (strictly
    # worse at the far end) and throughput monotonically non-increasing.
    assert epochs == sorted(epochs)
    assert epochs[-1] > baseline_epoch_ms
    assert throughputs == sorted(throughputs, reverse=True)
    assert throughputs[-1] < baseline_stats.throughput_tps
    # Shape: the same transactions commit and every server observes exactly
    # the same request counts regardless of link speed.
    for stats, _ in sweep[1:]:
        assert stats.committed == baseline_stats.committed
        assert stats.server_physical == baseline_stats.server_physical
        assert stats.partition_physical == baseline_stats.partition_physical
