"""Figure 11a: throughput as a function of checkpoint frequency.

Durability requires checkpointing proxy metadata every epoch; writing full
checkpoints every epoch is expensive, so Obladi writes deltas and only
periodically a full checkpoint.  The paper sweeps the full-checkpoint
frequency from 1 to 256 epochs and shows that computing diffs recovers most
of the lost throughput.
"""

from repro.harness.experiments import run_checkpoint_frequency
from repro.harness.report import render_table

from .conftest import run_once


FREQUENCIES = (1, 4, 16, 64)


def test_fig11a_checkpoint_frequency(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: run_checkpoint_frequency(
        frequencies=FREQUENCIES,
        backends=("server", "server_wan", "dynamo"),
        num_records=max(2000, bench_scale["oram_objects"] // 10),
        transactions=max(48, bench_scale["transactions"] // 3),
        clients=max(8, bench_scale["clients"] // 3),
    ))
    print()
    print(render_table(rows, title="Figure 11a — throughput vs full-checkpoint frequency "
                                   "(ops/s, simulated)"))
    for backend in ("server", "server_wan", "dynamo"):
        series = sorted((r for r in rows if r.backend == backend),
                        key=lambda r: r.checkpoint_frequency)
        # Checkpointing in full every epoch is the most expensive setting;
        # delta checkpoints (higher frequency values) never do worse.
        assert series[-1].throughput_ops_per_s >= series[0].throughput_ops_per_s * 0.95
