"""Sharding smoke: partitioned Obladi vs the single-tree proxy on SmallBank.

The partitioned data layer fans each epoch batch out across N independent
Ring ORAM trees and charges the *maximum* partition makespan (they run in
parallel), and each partition's tree is shallower (it holds 1/N of the
objects).  Both effects shrink the simulated epoch wall-time, so closed-loop
throughput at the same latency model must not regress — this is the "sharded
Obladi proxies" scale direction behind the ``DataLayer`` seam.
"""

from repro.api import EngineConfig, create_engine
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload

from .conftest import run_once

TRANSACTIONS = 96
CLIENTS = 24


def _run(shards: int, num_accounts: int):
    workload = SmallBankWorkload(SmallBankConfig(num_accounts=num_accounts, seed=17))
    config = (EngineConfig()
              .with_workload("smallbank")
              .with_backend("server")
              .with_oram(num_blocks=max(4096, 2 * num_accounts), z_real=8,
                         block_size=192)
              .with_batching(read_batches=3, read_batch_size=64, write_batch_size=64,
                             batch_interval_ms=1.0)
              .with_durability(False)
              .with_encryption(False)
              .with_sharding(shards)
              .with_seed(17))
    engine = create_engine("obladi", config)
    engine.load_initial_data(workload.initial_data())
    stats = engine.run_closed_loop(workload.transaction_factory,
                                   total_transactions=TRANSACTIONS, clients=CLIENTS)
    summaries = engine.proxy.epoch_summaries
    mean_epoch_ms = sum(s.duration_ms for s in summaries) / len(summaries)
    return stats, mean_epoch_ms


def test_sharded_smallbank_throughput_and_epoch_time(benchmark, bench_scale):
    num_accounts = max(400, int(4000 * bench_scale["workload_scale"]))

    def experiment():
        return _run(1, num_accounts), _run(4, num_accounts)

    (single, single_epoch_ms), (sharded, sharded_epoch_ms) = run_once(benchmark,
                                                                     experiment)
    print()
    print(f"  shards=1: {single.throughput_tps:9.1f} txn/s, "
          f"mean epoch {single_epoch_ms:7.2f} ms, committed {single.committed}")
    print(f"  shards=4: {sharded.throughput_tps:9.1f} txn/s, "
          f"mean epoch {sharded_epoch_ms:7.2f} ms, committed {sharded.committed}")

    # Sharding the data layer must not lose throughput at the same latency
    # model, and the simulated epoch wall-time must shrink (partition batches
    # run in parallel over shallower trees).
    assert sharded.committed > 0
    assert sharded.throughput_tps >= single.throughput_tps
    assert sharded_epoch_ms < single_epoch_ms
    # The sharded engine reports its per-partition physical work.
    assert len(sharded.partition_physical) == 4
    assert sum(r for r, _ in sharded.partition_physical) == sharded.physical_reads
