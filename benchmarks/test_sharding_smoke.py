"""Sharding smoke: partitioned Obladi vs the single-tree proxy on SmallBank.

The partitioned data layer fans each epoch batch out across N independent
Ring ORAM trees and charges the *maximum* partition makespan (they run in
parallel), and each partition's tree is shallower (it holds 1/N of the
objects).  Both effects shrink the simulated epoch wall-time, so closed-loop
throughput at the same latency model must not regress — this is the "sharded
Obladi proxies" scale direction behind the ``DataLayer`` seam.

Two topology guards ride along: hosting the partitions on distinct storage
servers (one per partition, homogeneous links) must sustain the colocated
throughput, and over-sharding past the proxy's fan-out lanes
(``shards > parallelism``) must charge a *staggered* epoch wall-time that
lands strictly between the ideal-parallel and serial bounds instead of
pretending extra partitions are free.
"""

from repro.api import EngineConfig, create_engine
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload

from .conftest import run_once

TRANSACTIONS = 96
CLIENTS = 24


def _engine(shards: int, num_accounts: int, storage_servers: int = 1,
            parallelism=None):
    config = (EngineConfig()
              .with_workload("smallbank")
              .with_backend("server")
              .with_oram(num_blocks=max(4096, 2 * num_accounts), z_real=8,
                         block_size=192)
              .with_batching(read_batches=3, read_batch_size=64, write_batch_size=64,
                             batch_interval_ms=1.0)
              .with_durability(False)
              .with_encryption(False)
              .with_sharding(shards)
              .with_storage_servers(storage_servers)
              .with_seed(17))
    if parallelism is not None:
        config = config.with_parallelism(parallelism)
    return create_engine("obladi", config)


def _run(shards: int, num_accounts: int, storage_servers: int = 1,
         parallelism=None):
    workload = SmallBankWorkload(SmallBankConfig(num_accounts=num_accounts, seed=17))
    engine = _engine(shards, num_accounts, storage_servers, parallelism)
    engine.load_initial_data(workload.initial_data())
    stats = engine.run_closed_loop(workload.transaction_factory,
                                   total_transactions=TRANSACTIONS, clients=CLIENTS)
    summaries = engine.proxy.epoch_summaries
    mean_epoch_ms = sum(s.duration_ms for s in summaries) / len(summaries)
    return stats, mean_epoch_ms, engine


def test_sharded_smallbank_throughput_and_epoch_time(benchmark, bench_scale):
    num_accounts = max(400, int(4000 * bench_scale["workload_scale"]))

    def experiment():
        return _run(1, num_accounts), _run(4, num_accounts)

    (single, single_epoch_ms, _), (sharded, sharded_epoch_ms, _) = run_once(
        benchmark, experiment)
    print()
    print(f"  shards=1: {single.throughput_tps:9.1f} txn/s, "
          f"mean epoch {single_epoch_ms:7.2f} ms, committed {single.committed}")
    print(f"  shards=4: {sharded.throughput_tps:9.1f} txn/s, "
          f"mean epoch {sharded_epoch_ms:7.2f} ms, committed {sharded.committed}")

    # Sharding the data layer must not lose throughput at the same latency
    # model, and the simulated epoch wall-time must shrink (partition batches
    # run in parallel over shallower trees).
    assert sharded.committed > 0
    assert sharded.throughput_tps >= single.throughput_tps
    assert sharded_epoch_ms < single_epoch_ms
    # The sharded engine reports its per-partition physical work.
    assert len(sharded.partition_physical) == 4
    assert sum(r for r, _ in sharded.partition_physical) == sharded.physical_reads


def test_per_partition_servers_sustain_colocated_throughput(benchmark, bench_scale):
    """One server per partition (homogeneous links) vs colocated namespaces:
    distributing the storage tier must not cost throughput, and every server
    must report the physical work of exactly its partition."""
    num_accounts = max(400, int(4000 * bench_scale["workload_scale"]))

    def experiment():
        return _run(4, num_accounts, storage_servers=1), \
            _run(4, num_accounts, storage_servers=4)

    (colocated, colocated_epoch_ms, _), (distributed, distributed_epoch_ms, _) = \
        run_once(benchmark, experiment)
    print()
    print(f"  colocated (1 server):  {colocated.throughput_tps:9.1f} txn/s, "
          f"mean epoch {colocated_epoch_ms:7.2f} ms")
    print(f"  per-partition servers: {distributed.throughput_tps:9.1f} txn/s, "
          f"mean epoch {distributed_epoch_ms:7.2f} ms")

    assert distributed.committed > 0
    assert distributed.throughput_tps >= colocated.throughput_tps
    # Each of the four servers observed its own partition's traffic.
    assert len(distributed.server_physical) == 4
    for (server_reads, server_writes), (part_reads, _part_writes) in zip(
            distributed.server_physical, distributed.partition_physical):
        assert server_reads == part_reads
        assert server_writes > 0


def test_overshard_staggers_between_ideal_and_serial(benchmark, bench_scale):
    """shards=8 over parallelism=4: partition batches do not all start at
    once — the fan-out wall-time must land strictly between the ideal
    parallel bound (max over partitions) and the serial bound (sum)."""
    num_accounts = max(400, int(4000 * bench_scale["workload_scale"]))

    def experiment():
        return _run(8, num_accounts, storage_servers=8, parallelism=4)

    stats, mean_epoch_ms, engine = run_once(benchmark, experiment)
    fanout = engine.proxy.data_layer.fanout_stats
    print()
    print(f"  shards=8/parallelism=4: {stats.throughput_tps:9.1f} txn/s, "
          f"mean epoch {mean_epoch_ms:7.2f} ms")
    print(f"  fan-out: ideal {fanout.ideal_ms:9.2f} ms  <  "
          f"staggered {fanout.actual_ms:9.2f} ms  <  "
          f"serial {fanout.serial_ms:9.2f} ms "
          f"({fanout.staggered_fanouts}/{fanout.fanouts} fan-outs staggered)")

    assert stats.committed > 0
    assert fanout.staggered_fanouts > 0
    assert fanout.ideal_ms < fanout.actual_ms < fanout.serial_ms
