"""Proxy-tier smoke: sharded trusted MVTSO/version-cache workers on SmallBank.

The distributed proxy tier (``repro.proxytier``) scales the half of Obladi
the paper explicitly leaves single-node: the trusted proxy's concurrency
control.  Two claims are guarded:

* **Workers are free when CC CPU is negligible.**  At the default (unpriced)
  concurrency-control cost, ``proxy_workers=4`` must match the single proxy
  exactly — same commits, same simulated elapsed time — because routing and
  the epoch vote barrier change *who* does the work, never *what* the epoch
  looks like.
* **Workers win when the proxy is CPU-bound.**  With a priced per-operation
  CC cost (``CpuCostModel.cc_op_ms``) the single proxy charges its MVTSO
  work serially, while the coordinator charges the slowest worker lane per
  round; under a proxy-CPU-bound configuration SmallBank throughput with
  ``proxy_workers=4`` must be at least the single proxy's, and the realised
  lane speedup must be real (> 1).
"""

from dataclasses import replace

from repro.api import EngineConfig, create_engine
from repro.sim.latency import CpuCostModel
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload

from .conftest import run_once

TRANSACTIONS = 96
CLIENTS = 24


def _engine(proxy_workers: int, num_accounts: int, cc_op_ms: float = 0.0):
    config = (EngineConfig()
              .with_workload("smallbank")
              .with_backend("server")
              .with_oram(num_blocks=max(4096, 2 * num_accounts), z_real=8,
                         block_size=192)
              .with_batching(read_batches=3, read_batch_size=64, write_batch_size=64,
                             batch_interval_ms=1.0)
              .with_durability(False)
              .with_encryption(False)
              .with_proxy_workers(proxy_workers)
              .with_seed(17))
    resolved = config.to_obladi_config()
    if cc_op_ms:
        resolved = replace(resolved, cost_model=CpuCostModel(cc_op_ms=cc_op_ms))
    return create_engine("obladi", resolved)


def _run(proxy_workers: int, num_accounts: int, cc_op_ms: float = 0.0):
    workload = SmallBankWorkload(SmallBankConfig(num_accounts=num_accounts, seed=17))
    engine = _engine(proxy_workers, num_accounts, cc_op_ms)
    engine.load_initial_data(workload.initial_data())
    stats = engine.run_closed_loop(workload.transaction_factory,
                                   total_transactions=TRANSACTIONS, clients=CLIENTS)
    return stats, engine


def test_workers_free_at_unpriced_cc(benchmark, bench_scale):
    """Default cost model: proxy_workers=4 is behavior- and timing-identical
    to the single proxy (throughput >= trivially, as equality)."""
    num_accounts = max(400, int(4000 * bench_scale["workload_scale"]))

    def experiment():
        return _run(1, num_accounts), _run(4, num_accounts)

    (single, _), (sharded, sharded_engine) = run_once(benchmark, experiment)
    print()
    print(f"  workers=1: {single.throughput_tps:9.1f} txn/s, "
          f"committed {single.committed}")
    print(f"  workers=4: {sharded.throughput_tps:9.1f} txn/s, "
          f"committed {sharded.committed}")

    assert sharded.committed == single.committed > 0
    assert sharded.elapsed_ms == single.elapsed_ms
    assert sharded.throughput_tps >= single.throughput_tps
    # The trusted tier reports its per-worker CC breakdown.
    assert len(sharded.worker_ops) == 4
    assert sum(reads for reads, _ in sharded.worker_ops) > 0
    assert single.worker_ops == []
    # Nothing was charged: the barrier and routing are free at cc_op_ms=0.
    assert sharded.cpu_ms == 0.0
    assert sharded_engine.proxy.lane_stats.charges == 0


def test_workers_beat_single_proxy_when_cpu_bound(benchmark, bench_scale):
    """Proxy-CPU-bound configuration (priced CC ops): sharding the trusted
    tier must recover throughput the single proxy loses to serial MVTSO
    work — proxy_workers=4 >= single proxy, with a real lane speedup."""
    num_accounts = max(400, int(4000 * bench_scale["workload_scale"]))
    cc_op_ms = 0.02

    def experiment():
        return _run(1, num_accounts, cc_op_ms), _run(4, num_accounts, cc_op_ms)

    (single, single_engine), (sharded, sharded_engine) = run_once(
        benchmark, experiment)
    lanes = sharded_engine.proxy.lane_stats
    print()
    print(f"  workers=1: {single.throughput_tps:9.1f} txn/s, "
          f"cc cpu {single.cpu_ms:7.2f} ms (serial)")
    print(f"  workers=4: {sharded.throughput_tps:9.1f} txn/s, "
          f"cc cpu {sharded.cpu_ms:7.2f} ms "
          f"(lane speedup {lanes.speedup:.2f}x over "
          f"{lanes.serial_ms:.2f} ms serial)")

    assert sharded.committed == single.committed > 0
    assert sharded.throughput_tps >= single.throughput_tps
    # The single proxy paid the CC bill serially; the coordinator's lanes
    # charged strictly less wall-clock for at least as much work.
    assert 0 < sharded.cpu_ms < single.cpu_ms
    assert lanes.speedup > 1.0
    # Identical outcomes: the barrier voted every commit through unchanged.
    barrier = sharded_engine.proxy.barrier_stats
    assert barrier.transactions_voted > 0
    assert single_engine.proxy.cc_cpu_ms == single.cpu_ms
