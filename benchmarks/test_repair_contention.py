"""Conflict repair vs retry at the contention knee.

Retry — the default conflict strategy — re-queues an MVTSO conflict loser
through backoff and re-executes it from scratch, so at a contended hotspot
every retry has roughly the same probability of losing again and offered
load past the knee is amplified into wasted work.  Repair
(:mod:`repro.concurrency.repair`) instead re-executes the loser against the
winning versions inside the very epoch that detected the conflict, with a
fresh (highest) timestamp, so most losers are salvaged without another trip
through the load generator.

This benchmark runs :func:`repro.harness.experiments.run_repair_comparison`
— seeded-Poisson arrivals at multiples of each strategy's own closed-loop
ceiling — on the two contended workloads of the evaluation and pins:

* **Repair commits at least as much as retry at and past the knee** (2x
  and 4x the ceiling) on hotspot SmallBank and Zipfian(0.99) YCSB, and
  strictly reduces wasted attempts.
* **Repaired histories are serializable** — every repair-strategy point
  runs under the streaming auditor (``audit_ok``), and a direct run's
  committed history additionally passes the *offline* cycle check.

The measured rows are snapshotted to ``BENCH_repair.json`` in the repo root
for FIGURES.md, and each workload's sweep is appended to the cross-PR
trajectory ledger (``BENCH_trajectory.json``).
"""

import json
import os
import time

from repro.api import EngineConfig, create_engine
from repro.concurrency import check_serializable
from repro.harness import perfbench
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload
from repro.harness.experiments import run_repair_comparison

from .conftest import SCALE, run_once

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SNAPSHOT = os.path.join(_REPO_ROOT, "BENCH_repair.json")

AT_KNEE = 2.0
PAST_KNEE = 4.0
MULTIPLIERS = (AT_KNEE, PAST_KNEE)


def _print_rows(workload, rows):
    print()
    print(f"  {workload:10s} {'strategy':8s} {'mult':>5s} {'tps':>8s} "
          f"{'committed':>9s} {'aborted':>8s} {'repaired':>8s} {'wasted':>7s} "
          f"{'audit':>5s}")
    for row in rows:
        print(f"  {'':10s} {row.strategy:8s} {row.rate_multiplier:5.1f} "
              f"{row.achieved_tps:8.1f} {row.committed:9d} {row.aborted:8d} "
              f"{row.repaired:8d} {row.wasted_attempts:7d} "
              f"{str(row.audit_ok):>5s}")


def test_repair_beats_retry_at_the_knee(benchmark, bench_scale):
    """Repair >= retry committed throughput at 2x/4x the knee, both workloads."""
    transactions = max(64, bench_scale["transactions"] // 2)
    num_accounts = max(60, int(2_000 * bench_scale["workload_scale"]))

    def sweep():
        walls = {}
        results = {}
        for workload in ("smallbank", "ycsb"):
            started = time.perf_counter()
            results[workload] = run_repair_comparison(
                rate_multipliers=MULTIPLIERS, transactions=transactions,
                clients=16, num_accounts=num_accounts, workload=workload)
            walls[workload] = time.perf_counter() - started
        return results, walls

    sweeps, sweep_walls = run_once(benchmark, sweep)

    snapshot = {}
    for workload, rows in sweeps.items():
        _print_rows(workload, rows)
        by_key = {(row.strategy, row.rate_multiplier): row for row in rows}
        assert set(by_key) == {(s, m) for s in ("retry", "repair")
                               for m in MULTIPLIERS}

        for multiplier in MULTIPLIERS:
            retry = by_key[("retry", multiplier)]
            repair = by_key[("repair", multiplier)]
            # The headline claim: at and past the knee, repair commits at
            # least as many transactions per second as retry...
            assert repair.achieved_tps >= retry.achieved_tps, (
                f"{workload} @{multiplier}x: repair {repair.achieved_tps:.1f} "
                f"< retry {retry.achieved_tps:.1f} tps")
            assert repair.committed >= retry.committed, (workload, multiplier)
            # ... by actually salvaging conflict losers, not by luck.
            assert repair.repaired > 0, (workload, multiplier)
            assert repair.wasted_attempts < retry.wasted_attempts, (
                workload, multiplier)
            # Retry never reports repair activity.
            assert retry.repaired == 0 and retry.repair_failed == 0
            # Every repaired run's history passed the streaming auditor.
            assert repair.audit_ok, (workload, multiplier)

        snapshot[workload] = [
            {"strategy": row.strategy,
             "rate_multiplier": row.rate_multiplier,
             "achieved_tps": round(row.achieved_tps, 2),
             "committed": row.committed,
             "aborted": row.aborted,
             "repaired": row.repaired,
             "repair_failed": row.repair_failed,
             "wasted_attempts": row.wasted_attempts,
             "abort_rate": round(row.abort_rate, 4),
             "mean_total_latency_ms": round(row.mean_total_latency_ms, 3),
             "closed_loop_tps": round(row.closed_loop_tps, 2),
             "audit_ok": row.audit_ok}
            for row in rows]

    snapshot["transactions"] = transactions
    snapshot["num_accounts"] = num_accounts
    snapshot["rate_multipliers"] = list(MULTIPLIERS)
    with open(_SNAPSHOT, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # Append each workload's sweep to the cross-PR trajectory ledger.
    for workload, rows in sweeps.items():
        by_key = {(row.strategy, row.rate_multiplier): row for row in rows}
        perfbench.append_entry(
            perfbench.DEFAULT_LEDGER, f"repair-contention-{workload}",
            sweep_walls[workload], scale=SCALE, repeats=1,
            metrics={"repair_tps_at_knee":
                         round(by_key[("repair", AT_KNEE)].achieved_tps, 2),
                     "retry_tps_at_knee":
                         round(by_key[("retry", AT_KNEE)].achieved_tps, 2),
                     "repair_wasted":
                         by_key[("repair", AT_KNEE)].wasted_attempts,
                     "retry_wasted":
                         by_key[("retry", AT_KNEE)].wasted_attempts},
            signature=perfbench.results_signature(snapshot[workload]))


def test_repair_smoke_offline_serializable(benchmark):
    """Smoke: a repaired hotspot run's history passes the offline checker.

    The sweep above certifies repaired histories with the *streaming*
    auditor; this cheap companion closes the loop with the offline cycle
    check on a direct closed-loop run, and doubles as the CI smoke test
    (``-k smoke``).
    """

    def contended_run():
        config = (EngineConfig()
                  .with_workload("smallbank")
                  .with_backend("server")
                  .with_oram(num_blocks=512, z_real=8, block_size=128)
                  .with_batching(read_batches=3, read_batch_size=32,
                                 write_batch_size=32)
                  .with_durability(False)
                  .with_encryption(False)
                  .with_conflict_strategy("repair")
                  .with_seed(11))
        engine = create_engine("obladi", config)
        workload = SmallBankWorkload(SmallBankConfig(
            num_accounts=50, hotspot_probability=0.9, seed=11))
        engine.load_initial_data(workload.initial_data())
        stats = engine.run_closed_loop(workload.transaction_factory,
                                       total_transactions=48, clients=16)
        return stats, engine.committed_history

    stats, history = run_once(benchmark, contended_run)
    assert stats.repaired > 0, "contended hotspot run should exercise repair"
    ok, cycle = check_serializable(history)
    assert ok, f"repaired history has a serialization cycle: {cycle}"
    assert stats.committed == len(history)
    print(f"\n  committed {stats.committed}  repaired {stats.repaired}  "
          f"offline serializable: {ok}")
