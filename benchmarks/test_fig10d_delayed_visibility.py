"""Figure 10d: delayed visibility (buffering bucket writes until epoch end).

The paper reports that buffering and deduplicating bucket writes for an
epoch of eight batches yields roughly a 1.5x speedup on the server and
DynamoDB backends, 1.6x on the WAN, and only about 1.1x on the local dummy
backend (where writes are nearly free anyway).
"""

from repro.harness.experiments import run_delayed_visibility
from repro.harness.report import render_table

from .conftest import run_once


def test_fig10d_delayed_visibility(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: run_delayed_visibility(
        backends=("dummy", "server", "server_wan", "dynamo"),
        batch_size=max(100, bench_scale["batch_operations"] // 2),
        batches_per_epoch=8,
        num_blocks=bench_scale["oram_objects"],
    ))
    print()
    print(render_table(rows, title="Figure 10d — write buffering (ops/s, simulated), "
                                   "8 batches per epoch"))
    by = {(r.backend, r.mode): r.throughput_ops_per_s for r in rows}
    for backend in ("server", "server_wan", "dynamo"):
        speedup = by[(backend, "write_back")] / by[(backend, "normal")]
        assert speedup > 1.2, f"{backend}: {speedup:.2f}"
    # The effect is much smaller (and need not exceed ~1.6x) on dummy storage.
    dummy_speedup = by[("dummy", "write_back")] / by[("dummy", "normal")]
    assert dummy_speedup >= 1.0
