"""Benchmark suite regenerating the paper's evaluation figures.

This package marker makes ``benchmarks`` a real package so its modules can
import shared helpers (``from .conftest import run_once``) under a plain
``python -m pytest`` from the repository root — without it, pytest imports
the test modules as top-level files and the relative import dies with
``ImportError: attempted relative import with no known parent package``.
"""
