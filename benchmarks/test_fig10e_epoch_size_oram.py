"""Figure 10e: epoch size impact on the ORAM (relative throughput increase).

Larger epochs buffer more buckets at the proxy, serve more reads locally and
deduplicate more writes: the paper observes an almost logarithmic increase
in throughput as the number of batches per epoch grows from 2^1 to 2^7.
"""

from repro.harness.experiments import run_epoch_size_oram
from repro.harness.report import render_table

from .conftest import run_once


BATCH_COUNTS = (1, 2, 4, 8, 16, 32)


def test_fig10e_epoch_size_oram(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: run_epoch_size_oram(
        backends=("server", "server_wan", "dynamo"),
        batch_counts=BATCH_COUNTS,
        batch_size=max(64, bench_scale["batch_operations"] // 4),
        num_blocks=bench_scale["oram_objects"],
    ))
    print()
    print(render_table(rows, title="Figure 10e — relative throughput vs batches per epoch "
                                   "(simulated)",
                       columns=["backend", "batches_per_epoch", "throughput_ops_per_s",
                                "relative_increase"]))
    for backend in ("server", "server_wan", "dynamo"):
        series = sorted((r for r in rows if r.backend == backend),
                        key=lambda r: r.batches_per_epoch)
        assert series[0].relative_increase == 1.0
        assert series[-1].relative_increase > 1.2
        # Monotone non-decreasing within noise.
        for earlier, later in zip(series, series[1:]):
            assert later.relative_increase >= earlier.relative_increase * 0.95
