"""Audit overhead: what continuous integrity checking costs.

The streaming auditor (:mod:`repro.audit`) rides along as a passive engine
observer, so its entire cost is wall-clock CPU on the auditing host — it
must not move a single *simulated* number.  This benchmark runs the same
fixed-seed SmallBank closed-loop workload twice, bare and audited, and pins
three claims:

* **Zero simulated perturbation.**  The audited run's ``RunStats`` repr is
  byte-identical to the bare run's (the ``audit`` field is excluded from
  repr), so every figure stays valid with auditing enabled.
* **Bounded memory.**  The auditor's retained-node high-water mark stays
  far below the total history it certified — the epoch-fenced GC collapses
  the settled prefix into per-key frontiers.
* **Modest wall-clock overhead.**  Maintaining the DSG incrementally costs
  a bounded multiple of the bare run's wall time (a loose 2x bound; in
  practice it is a few percent).

The overhead is measured as the median ratio of three *interleaved*
bare/audited rounds after a discarded warm-up run — a single cold
``perf_counter`` sample per arm once put the *audited* arm ahead of the
bare one (overhead_ratio 0.83), which is physically meaningless: the bare
arm ran first and soaked up the process's import/allocator warm-up, and
host-speed drift between the two measurement windows did the rest.
The measured numbers are snapshotted to ``BENCH_audit.json`` in the repo
root for FIGURES.md, and both arms are appended to the cross-PR trajectory
ledger (``BENCH_trajectory.json``) via :mod:`repro.harness.perfbench`.
"""

import json
import os
import statistics
import time

from repro.api import EngineConfig, create_engine
from repro.audit import AuditingObserver
from repro.harness import perfbench
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload

from .conftest import SCALE, run_once

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SNAPSHOT = os.path.join(_REPO_ROOT, "BENCH_audit.json")


def _engine(num_accounts, clients, seed=11):
    config = (EngineConfig()
              .with_workload("smallbank")
              .with_backend("server")
              .with_oram(num_blocks=max(2048, 4 * num_accounts), z_real=8,
                         block_size=192)
              .with_batching(read_batches=3, read_batch_size=2 * clients,
                             write_batch_size=2 * clients)
              .with_durability(False)
              .with_encryption(False)
              .with_seed(seed))
    engine = create_engine("obladi", config)
    workload = SmallBankWorkload(SmallBankConfig(num_accounts=num_accounts,
                                                 seed=seed))
    engine.load_initial_data(workload.initial_data())
    return engine, workload


def test_audit_overhead(benchmark, bench_scale):
    """Bare vs audited run of the same fixed-seed workload."""
    transactions = bench_scale["transactions"]
    clients = bench_scale["clients"]
    num_accounts = max(200, int(10_000 * bench_scale["workload_scale"]))

    def arm(audited):
        engine, workload = _engine(num_accounts, clients)
        if audited:
            engine.attach_observer(AuditingObserver())
        started = time.perf_counter()
        stats = engine.run_closed_loop(workload.transaction_factory,
                                       total_transactions=transactions,
                                       clients=clients)
        return stats, time.perf_counter() - started

    def pair():
        # Discarded warm-up: the first run in a fresh process pays import,
        # allocator and cache warm-up that would otherwise land entirely in
        # whichever arm is timed first (it once made the *audited* arm look
        # 17% faster than bare).
        arm(False)
        # Three interleaved bare/audited rounds: back-to-back pairs share
        # whatever thermal/scheduling state the host is in, so the per-round
        # *ratio* is robust to the slow drift that independent medians of a
        # single cold sample are hostage to.
        rounds = [(arm(False), arm(True)) for _ in range(3)]
        walls = {False: statistics.median(b[1] for b, _ in rounds),
                 True: statistics.median(a[1] for _, a in rounds)}
        ratio = statistics.median(a[1] / max(b[1], 1e-9) for b, a in rounds)
        stats = {False: rounds[-1][0][0], True: rounds[-1][1][0]}
        return stats, walls, ratio

    stats, walls, overhead = run_once(benchmark, pair)
    bare, bare_wall = stats[False], walls[False]
    audited, audited_wall = stats[True], walls[True]

    # Claim 1: the simulation is untouched — byte-identical RunStats.
    assert bare.audit is None and audited.audit is not None
    assert repr(bare) == repr(audited)

    # Claim 2: the history is certified with bounded memory.
    report = audited.audit
    assert report.ok, report.violations[:1]
    assert report.txns_ingested == audited.committed
    assert report.txns_settled > report.txns_ingested / 2
    # Retention is bounded by the settle window (settle_lag + 1 waves of at
    # most ``clients`` transactions), independent of how long the run is.
    assert report.max_retained_nodes <= 3 * clients
    assert report.max_retained_nodes < report.txns_ingested

    # Claim 3: loose wall-clock bound (generous — CI machines are noisy).
    # ``overhead`` is the median of the per-round audited/bare ratios.
    assert overhead < 2.0, f"auditing cost {overhead:.2f}x wall clock"

    snapshot = {
        "workload": "smallbank-closed-loop",
        "transactions": transactions,
        "clients": clients,
        "committed": audited.committed,
        "throughput_tps_simulated": audited.throughput_tps,
        "bare_wall_s": round(bare_wall, 4),
        "audited_wall_s": round(audited_wall, 4),
        "overhead_ratio": round(overhead, 4),
        "audit_ok": report.ok,
        "txns_ingested": report.txns_ingested,
        "txns_settled": report.txns_settled,
        "max_retained_nodes": report.max_retained_nodes,
        "max_retained_edges": report.max_retained_edges,
        "watermark_ts": report.watermark_ts,
    }
    with open(_SNAPSHOT, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # Append both arms to the cross-PR trajectory ledger so the overhead
    # history survives re-runs instead of being clobbered.
    signature = perfbench.results_signature(bare)
    for bench, wall, stats in (("audit-overhead-bare", bare_wall, bare),
                               ("audit-overhead-audited", audited_wall, audited)):
        perfbench.append_entry(
            perfbench.DEFAULT_LEDGER, bench, wall, scale=SCALE, repeats=3,
            metrics={"committed": stats.committed,
                     "simulated_tps": round(stats.throughput_tps, 1),
                     "overhead_ratio": round(overhead, 4)},
            signature=signature)

    print(f"\n  bare {bare_wall * 1e3:8.1f} ms   audited {audited_wall * 1e3:8.1f} ms"
          f"   overhead {overhead:5.2f}x")
    print(f"  ingested {report.txns_ingested}   settled {report.txns_settled}"
          f"   retained high-water {report.max_retained_nodes} nodes"
          f" / {report.max_retained_edges} edges")
