"""Audit overhead: what continuous integrity checking costs.

The streaming auditor (:mod:`repro.audit`) rides along as a passive engine
observer, so its entire cost is wall-clock CPU on the auditing host — it
must not move a single *simulated* number.  This benchmark runs the same
fixed-seed SmallBank closed-loop workload twice, bare and audited, and pins
three claims:

* **Zero simulated perturbation.**  The audited run's ``RunStats`` repr is
  byte-identical to the bare run's (the ``audit`` field is excluded from
  repr), so every figure stays valid with auditing enabled.
* **Bounded memory.**  The auditor's retained-node high-water mark stays
  far below the total history it certified — the epoch-fenced GC collapses
  the settled prefix into per-key frontiers.
* **Modest wall-clock overhead.**  Maintaining the DSG incrementally costs
  a bounded multiple of the bare run's wall time (a loose 2x bound; in
  practice it is a few percent).

The measured numbers are snapshotted to ``BENCH_audit.json`` in the repo
root for FIGURES.md.
"""

import json
import os
import time

from repro.api import EngineConfig, create_engine
from repro.audit import AuditingObserver
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload

from .conftest import run_once

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SNAPSHOT = os.path.join(_REPO_ROOT, "BENCH_audit.json")


def _engine(num_accounts, clients, seed=11):
    config = (EngineConfig()
              .with_workload("smallbank")
              .with_backend("server")
              .with_oram(num_blocks=max(2048, 4 * num_accounts), z_real=8,
                         block_size=192)
              .with_batching(read_batches=3, read_batch_size=2 * clients,
                             write_batch_size=2 * clients)
              .with_durability(False)
              .with_encryption(False)
              .with_seed(seed))
    engine = create_engine("obladi", config)
    workload = SmallBankWorkload(SmallBankConfig(num_accounts=num_accounts,
                                                 seed=seed))
    engine.load_initial_data(workload.initial_data())
    return engine, workload


def test_audit_overhead(benchmark, bench_scale):
    """Bare vs audited run of the same fixed-seed workload."""
    transactions = bench_scale["transactions"]
    clients = bench_scale["clients"]
    num_accounts = max(200, int(10_000 * bench_scale["workload_scale"]))

    def pair():
        runs = {}
        for audited in (False, True):
            engine, workload = _engine(num_accounts, clients)
            if audited:
                engine.attach_observer(AuditingObserver())
            started = time.perf_counter()
            stats = engine.run_closed_loop(workload.transaction_factory,
                                           total_transactions=transactions,
                                           clients=clients)
            runs[audited] = (stats, time.perf_counter() - started)
        return runs

    runs = run_once(benchmark, pair)
    bare, bare_wall = runs[False]
    audited, audited_wall = runs[True]

    # Claim 1: the simulation is untouched — byte-identical RunStats.
    assert bare.audit is None and audited.audit is not None
    assert repr(bare) == repr(audited)

    # Claim 2: the history is certified with bounded memory.
    report = audited.audit
    assert report.ok, report.violations[:1]
    assert report.txns_ingested == audited.committed
    assert report.txns_settled > report.txns_ingested / 2
    # Retention is bounded by the settle window (settle_lag + 1 waves of at
    # most ``clients`` transactions), independent of how long the run is.
    assert report.max_retained_nodes <= 3 * clients
    assert report.max_retained_nodes < report.txns_ingested

    # Claim 3: loose wall-clock bound (generous — CI machines are noisy).
    overhead = audited_wall / max(bare_wall, 1e-9)
    assert overhead < 2.0, f"auditing cost {overhead:.2f}x wall clock"

    snapshot = {
        "workload": "smallbank-closed-loop",
        "transactions": transactions,
        "clients": clients,
        "committed": audited.committed,
        "throughput_tps_simulated": audited.throughput_tps,
        "bare_wall_s": round(bare_wall, 4),
        "audited_wall_s": round(audited_wall, 4),
        "overhead_ratio": round(overhead, 4),
        "audit_ok": report.ok,
        "txns_ingested": report.txns_ingested,
        "txns_settled": report.txns_settled,
        "max_retained_nodes": report.max_retained_nodes,
        "max_retained_edges": report.max_retained_edges,
        "watermark_ts": report.watermark_ts,
    }
    with open(_SNAPSHOT, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"\n  bare {bare_wall * 1e3:8.1f} ms   audited {audited_wall * 1e3:8.1f} ms"
          f"   overhead {overhead:5.2f}x")
    print(f"  ingested {report.txns_ingested}   settled {report.txns_settled}"
          f"   retained high-water {report.max_retained_nodes} nodes"
          f" / {report.max_retained_edges} edges")
