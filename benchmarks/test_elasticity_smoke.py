"""Elastic topologies under a flash crowd: autoscaled vs static.

A bounded admission queue in front of a bottom-rung topology sheds a flash
crowd as drops; the autoscaling control loop (:mod:`repro.elasticity`) sees
the same pressure, live-reshards up its ladder — an oblivious migration
window followed by an epoch-barrier cutover — and serves the remainder of
the spike at the larger topology.

This benchmark runs :func:`repro.harness.experiments.run_elasticity_comparison`
— the identical seeded flash-crowd arrival stream offered twice — and pins
the PR's acceptance bar:

* **The autoscaled engine drops strictly fewer arrivals** than the static
  bottom-rung engine, and sustains at least its achieved throughput.
* **Every row's history is serializable** — both runs carry the streaming
  auditor across their migration windows (``audit_ok``).
* **The control loop actually actuated** — at least one scale-up decision
  and one completed oblivious migration window.

The measured rows are snapshotted to ``BENCH_elasticity.json`` in the repo
root for FIGURES.md, and the sweep is appended to the cross-PR trajectory
ledger (``BENCH_trajectory.json``).
"""

import json
import os
import time

from repro.harness import perfbench
from repro.harness.experiments import run_elasticity_comparison

from .conftest import SCALE, run_once

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SNAPSHOT = os.path.join(_REPO_ROOT, "BENCH_elasticity.json")


def _print_rows(rows):
    print()
    print(f"  {'mode':10s} {'offered':>7s} {'dropped':>7s} {'committed':>9s} "
          f"{'tps':>7s} {'lat_ms':>7s} {'reshards':>8s} {'topology':>10s} "
          f"{'audit':>5s}")
    for row in rows:
        print(f"  {row.mode:10s} {row.offered:7d} {row.dropped:7d} "
              f"{row.committed:9d} {row.achieved_tps:7.1f} "
              f"{row.mean_total_latency_ms:7.1f} {row.reshards:8d} "
              f"{str(row.final_topology):>10s} {str(row.audit_ok):>5s}")


def test_autoscaler_beats_static_under_flash_crowd(benchmark, bench_scale):
    """Autoscaled drops strictly fewer and achieves >= static tps.

    The spike must outlast the controller's reaction (patience waves) plus
    the migration window for the larger rung to pay off — shorter spikes
    are exactly the regime where autoscaling cannot help, so the floor here
    keeps the run inside the claim's domain (longer only widens the gap).
    """
    transactions = max(900, 3 * bench_scale["transactions"])

    def sweep():
        started = time.perf_counter()
        rows = run_elasticity_comparison(transactions=transactions)
        return rows, time.perf_counter() - started

    rows, sweep_wall = run_once(benchmark, sweep)
    _print_rows(rows)

    by_mode = {row.mode: row for row in rows}
    assert set(by_mode) == {"static", "autoscaled"}
    static = by_mode["static"]
    autoscaled = by_mode["autoscaled"]

    # Both runs were offered the identical arrival stream.
    assert static.offered == autoscaled.offered

    # The headline claims: strictly fewer drops, no throughput sacrifice.
    assert autoscaled.dropped < static.dropped, (
        f"autoscaled dropped {autoscaled.dropped} >= static {static.dropped}")
    assert autoscaled.achieved_tps >= static.achieved_tps, (
        f"autoscaled {autoscaled.achieved_tps:.1f} tps "
        f"< static {static.achieved_tps:.1f} tps")

    # ... earned by actually resharding, not by luck.
    assert autoscaled.scale_ups >= 1
    assert autoscaled.reshards >= 1
    assert static.reshards == 0 and static.scale_ups == 0
    assert static.final_topology == (1, 1, 1)

    # Every row's history passed the streaming auditor, migration included.
    assert all(row.audit_ok for row in rows)

    snapshot = {
        "transactions": transactions,
        "rows": [
            {"mode": row.mode,
             "offered": row.offered,
             "dropped": row.dropped,
             "committed": row.committed,
             "achieved_tps": round(row.achieved_tps, 2),
             "mean_total_latency_ms": round(row.mean_total_latency_ms, 3),
             "p95_total_latency_ms": round(row.p95_total_latency_ms, 3),
             "max_queue_depth": row.max_queue_depth,
             "epochs": row.epochs,
             "reshards": row.reshards,
             "scale_ups": row.scale_ups,
             "scale_downs": row.scale_downs,
             "final_topology": list(row.final_topology),
             "audit_ok": row.audit_ok}
            for row in rows],
    }
    with open(_SNAPSHOT, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # Append the sweep to the cross-PR trajectory ledger.
    perfbench.append_entry(
        perfbench.DEFAULT_LEDGER, "elasticity-flash-crowd", sweep_wall,
        scale=SCALE, repeats=1,
        metrics={"autoscaled_dropped": autoscaled.dropped,
                 "static_dropped": static.dropped,
                 "autoscaled_tps": round(autoscaled.achieved_tps, 2),
                 "static_tps": round(static.achieved_tps, 2)},
        signature=perfbench.results_signature(snapshot["rows"]))
