"""Shared configuration for the benchmark suite.

Every file in this directory regenerates one figure or table of the paper's
evaluation (§11) using :mod:`repro.harness.experiments` and prints it as a
text table; pytest-benchmark additionally reports the wall-clock cost of
producing it.  All throughput/latency numbers inside the tables are
*simulated* time (see DESIGN.md); the pytest-benchmark column measures how
long the simulation itself took and has no counterpart in the paper.

Scale knobs are chosen so the full suite completes in a few minutes.  The
``REPRO_BENCH_SCALE`` environment variable (``small`` | ``paper``) bumps the
object counts and transaction counts for fuller runs.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Tag the tests in this directory with the ``benchmarks`` marker.

    The marker is registered in ``pyproject.toml``; it lets CI select or
    skip the figure regenerations (``-m benchmarks`` / ``-m "not
    benchmarks"``).  The hook sees the whole session's items, so filter by
    path — only this directory's tests get the marker.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR + os.sep):
            item.add_marker(pytest.mark.benchmarks)


@pytest.fixture(scope="session")
def bench_scale():
    """Scale parameters shared by the benchmark modules."""
    if SCALE == "paper":
        return {
            "oram_objects": 100_000,
            "batch_operations": 500,
            "transactions": 512,
            "clients": 96,
            "workload_scale": 0.5,
            "recovery_sizes": (10_000, 100_000),
        }
    return {
        "oram_objects": 20_000,
        "batch_operations": 200,
        "transactions": 160,
        "clients": 32,
        "workload_scale": 0.05,
        "recovery_sizes": (1_000, 5_000),
    }


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
