"""Open-loop saturation sweep: offered load vs latency and throughput.

The closed-loop benchmarks measure "N clients in lockstep"; this one
measures *offered load* — the axis the paper's Figure 9 latency/throughput
trade-off is actually about.  Seeded-Poisson arrivals are offered to each
engine at multiples of its measured closed-loop ceiling
(:func:`repro.harness.experiments.run_saturation_sweep`), and four claims
are pinned:

* **Below the knee latency is flat-ish.**  At a genuinely sparse offered
  rate (5% of the ceiling — arrivals usually find the system idle) the
  queue-inclusive open-loop latency stays within 1.5x of the closed-loop
  latency.
* **Past the knee latency grows monotonically.**  Offering 2x and then 4x
  the ceiling only deepens the admission queue: mean queue-inclusive
  latency strictly increases along the sweep.
* **Achieved throughput plateaus at the closed-loop ceiling.**  Offered
  load past the knee cannot buy throughput: the achieved rate at 2x and 4x
  stays at the same plateau (within 5% of each other), never meaningfully
  above the ceiling.
* **A fixed arrival seed is fully reproducible.**  Two runs at the same
  ``arrival_seed`` produce byte-identical ``RunStats`` (``repr`` equality —
  every latency sample, queue delay and counter).
"""

import pytest

from repro.harness.experiments import run_saturation_sweep

from .conftest import run_once

BELOW_KNEE = 0.05
PAST_KNEE = (2.0, 4.0)
MULTIPLIERS = (BELOW_KNEE, 0.5) + PAST_KNEE


def _print_rows(rows):
    print()
    print(f"  {'engine':8s} {'offered':>10s} {'achieved':>10s} {'ceiling':>10s} "
          f"{'mean lat':>9s} {'p95 lat':>9s} {'queue':>8s} {'maxq':>5s} {'drop':>5s}")
    for row in rows:
        print(f"  {row.engine:8s} {row.offered_tps:10.1f} {row.achieved_tps:10.1f} "
              f"{row.closed_loop_tps:10.1f} {row.mean_total_latency_ms:9.2f} "
              f"{row.p95_total_latency_ms:9.2f} {row.mean_queue_delay_ms:8.2f} "
              f"{row.max_queue_depth:5d} {row.dropped:5d}")


def test_openloop_saturation_knee(benchmark, bench_scale):
    """Latency knee + throughput plateau, per engine, on one sweep."""
    transactions = max(64, bench_scale["transactions"] // 2)

    rows = run_once(benchmark, lambda: run_saturation_sweep(
        kinds=("obladi", "nopriv"), rate_multipliers=MULTIPLIERS,
        transactions=transactions, clients=16))
    _print_rows(rows)

    for kind in ("obladi", "nopriv"):
        by_mult = {row.rate_multiplier: row for row in rows if row.engine == kind}
        assert set(by_mult) == set(MULTIPLIERS)
        ceiling = by_mult[BELOW_KNEE].closed_loop_tps
        assert ceiling > 0

        # Below the knee: open-loop latency within 1.5x of closed loop.
        below = by_mult[BELOW_KNEE]
        assert below.mean_total_latency_ms <= 1.5 * below.closed_loop_latency_ms, (
            f"{kind}: below-knee latency {below.mean_total_latency_ms:.2f} ms "
            f"vs closed-loop {below.closed_loop_latency_ms:.2f} ms")
        assert below.dropped == 0

        # Monotone latency growth along the sweep and past the knee.
        latencies = [by_mult[m].mean_total_latency_ms for m in MULTIPLIERS]
        assert latencies == sorted(latencies), f"{kind}: {latencies}"
        assert (by_mult[PAST_KNEE[1]].mean_total_latency_ms
                > by_mult[PAST_KNEE[0]].mean_total_latency_ms), kind
        assert (by_mult[PAST_KNEE[0]].mean_queue_delay_ms
                < by_mult[PAST_KNEE[1]].mean_queue_delay_ms), kind

        # Achieved throughput plateaus at the closed-loop ceiling.
        plateau = [by_mult[m].achieved_tps for m in PAST_KNEE]
        for achieved in plateau:
            assert achieved <= 1.10 * ceiling, f"{kind}: {achieved} vs {ceiling}"
            assert achieved >= 0.70 * ceiling, f"{kind}: {achieved} vs {ceiling}"
        assert plateau[1] <= 1.05 * plateau[0], f"{kind}: no plateau {plateau}"
        assert plateau[1] >= 0.95 * plateau[0], f"{kind}: no plateau {plateau}"
        # ... while the *configured* offered rate genuinely doubled (the
        # measured offered_tps is service-bound once a backlog forms, so it
        # plateaus right alongside the achieved rate).
        assert (by_mult[PAST_KNEE[1]].target_rate_tps
                == pytest.approx(2 * by_mult[PAST_KNEE[0]].target_rate_tps)), kind
        assert by_mult[PAST_KNEE[1]].target_rate_tps > ceiling


def test_openloop_fixed_seed_is_byte_identical(benchmark):
    """Two sweeps at the same ``arrival_seed`` agree sample-for-sample."""

    def pair():
        kwargs = dict(kinds=("obladi",), rate_multipliers=(2.0,),
                      transactions=64, clients=16, arrival_seed=23)
        return run_saturation_sweep(**kwargs), run_saturation_sweep(**kwargs)

    first, second = run_once(benchmark, pair)
    assert repr(first) == repr(second)
    print(f"\n  byte-identical across runs: {len(first)} row(s), "
          f"achieved {first[0].achieved_tps:.1f} txn/s")
