"""Figure 10a: sequential vs parallel ORAM throughput per storage backend.

The paper's observations: parallelising Ring ORAM *hurts* on the CPU-bound
``dummy`` backend (about 3x slower), while the speedup grows with storage
latency — 12x on the LAN server, 51x on DynamoDB, 510x on the WAN server for
a batch of 500 operations.
"""

from repro.harness.experiments import run_parallelism
from repro.harness.report import render_table

from .conftest import run_once


def test_fig10a_parallelism(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: run_parallelism(
        backends=("dummy", "server", "server_wan", "dynamo"),
        batch_size=bench_scale["batch_operations"],
        operations=bench_scale["batch_operations"],
        num_blocks=bench_scale["oram_objects"],
    ))
    print()
    print(render_table(rows, title="Figure 10a — ORAM throughput (ops/s, simulated), "
                                   f"batch size {bench_scale['batch_operations']}"))

    by = {(r.backend, r.mode): r.throughput_ops_per_s for r in rows}
    # Parallelism is a wash (or a loss) on the zero-latency backend...
    assert by[("dummy", "parallel_crypto")] < 2.0 * by[("dummy", "sequential")]
    # ...but a large win on every remote backend.
    for backend in ("server", "server_wan", "dynamo"):
        assert by[(backend, "parallel_crypto")] > 10 * by[(backend, "sequential")]
    # The speedup grows with the backend's latency (server < WAN).
    speedup_server = by[("server", "parallel_crypto")] / by[("server", "sequential")]
    speedup_wan = by[("server_wan", "parallel_crypto")] / by[("server_wan", "sequential")]
    assert speedup_wan > speedup_server
