"""Figure 9: end-to-end application performance.

Regenerates the throughput (9a) and latency (9b) bars for Obladi, NoPriv and
the MySQL-like baseline on TPC-C, FreeHealth and SmallBank, in both the LAN
(0.3 ms) and WAN (10 ms) settings.  The paper's headline numbers are that
Obladi stays within 5x-12x of NoPriv's throughput while paying roughly
20x-70x in latency; EXPERIMENTS.md records the ratios this reproduction
obtains.
"""

from repro.harness.experiments import run_end_to_end
from repro.harness.report import render_table

from .conftest import run_once


def _collect(bench_scale):
    return run_end_to_end(
        applications=("tpcc", "freehealth", "smallbank"),
        systems=("obladi", "nopriv", "mysql", "obladi_wan", "nopriv_wan"),
        transactions=bench_scale["transactions"],
        clients=bench_scale["clients"],
        scale=bench_scale["workload_scale"],
    )


def test_fig9a_throughput(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: _collect(bench_scale))
    print()
    print(render_table(rows, title="Figure 9a — application throughput (simulated)",
                       columns=["application", "system", "throughput_tps", "committed",
                                "aborted", "abort_rate"]))
    by = {(r.application, r.system): r for r in rows}
    for app in ("tpcc", "freehealth", "smallbank"):
        obladi = by[(app, "obladi")]
        nopriv = by[(app, "nopriv")]
        assert obladi.committed > 0
        # Obladi pays for obliviousness but stays within two orders of magnitude.
        assert nopriv.throughput_tps > obladi.throughput_tps
        assert nopriv.throughput_tps / max(obladi.throughput_tps, 1e-9) < 150


def test_fig9_smoke(benchmark):
    """Minimal-scale sanity pass over all three engines (the CI smoke target).

    Runs SmallBank through Obladi, NoPriv and the MySQL-like engine at the
    smallest useful scale so ``scripts/ci.sh`` can catch end-to-end
    regressions in seconds rather than re-rendering the full figure.
    """
    rows = run_once(benchmark, lambda: run_end_to_end(
        applications=("smallbank",), systems=("obladi", "nopriv", "mysql"),
        transactions=24, clients=8, scale=0.01))
    by = {r.system: r for r in rows}
    assert set(by) == {"obladi", "nopriv", "mysql"}
    for row in rows:
        assert row.committed > 0
    assert by["nopriv"].throughput_tps > by["obladi"].throughput_tps


def test_fig9b_latency(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: _collect(bench_scale))
    print()
    print(render_table(rows, title="Figure 9b — mean transaction latency (simulated ms)",
                       columns=["application", "system", "mean_latency_ms"]))
    by = {(r.application, r.system): r for r in rows}
    for app in ("tpcc", "freehealth", "smallbank"):
        assert by[(app, "obladi")].mean_latency_ms > by[(app, "nopriv")].mean_latency_ms
        # Latency stays in the hundreds of milliseconds even on the WAN.
        assert by[(app, "obladi_wan")].mean_latency_ms < 5000
