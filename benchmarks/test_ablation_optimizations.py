"""Ablation benchmarks for Obladi's individual design choices.

These do not correspond to a single numbered figure; they quantify the
optimisations DESIGN.md calls out (dummiless writes, stash-read caching,
request deduplication) by running the same workload with each optimisation
toggled off.  The paper discusses all three in §6.3 and §6.2.
"""

import random

from repro.core.client import Read, Write
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.proxy import ObladiProxy

from .conftest import run_once


def build_proxy(num_keys, *, dummiless=True, cache_stash=True, seed=5):
    config = ObladiConfig(
        oram=RingOramConfig(num_blocks=max(512, num_keys * 2), z_real=16, block_size=160),
        read_batches=3, read_batch_size=32, write_batch_size=32,
        backend="server", durability=False, encrypt=False, seed=seed,
        dummiless_writes=dummiless, cache_stash_reads=cache_stash,
    )
    proxy = ObladiProxy(config)
    proxy.load_initial_data({f"k{i}": f"v{i}".encode() for i in range(num_keys)})
    return proxy


def run_mixed_workload(proxy, transactions=120, clients=12, seed=3):
    rng = random.Random(seed)
    remaining = transactions
    while remaining > 0:
        for _ in range(min(clients, remaining)):
            key = f"k{rng.randrange(64)}"

            def program(key=key):
                value = yield Read(key)
                yield Write(key, (value or b"")[:8] + b"+")
                return value

            proxy.submit(program)
        remaining -= min(clients, remaining)
        proxy.run_epoch()
    return proxy


def test_ablation_dummiless_writes(benchmark, bench_scale):
    """Dummiless writes skip one path read per logical write."""

    def experiment():
        with_opt = run_mixed_workload(build_proxy(64, dummiless=True))
        without_opt = run_mixed_workload(build_proxy(64, dummiless=False))
        return with_opt, without_opt

    with_opt, without_opt = run_once(benchmark, experiment)
    reads_with = with_opt.executor.lifetime_stats.physical_reads
    reads_without = without_opt.executor.lifetime_stats.physical_reads
    print(f"\nAblation (dummiless writes): physical reads {reads_with} vs {reads_without} "
          f"({reads_without / max(reads_with, 1):.2f}x more without)")
    assert with_opt.stats_committed > 0 and without_opt.stats_committed > 0


def test_ablation_stash_read_caching(benchmark, bench_scale):
    """Serving logically-stashed blocks locally saves read-batch slots."""

    def experiment():
        with_opt = run_mixed_workload(build_proxy(32, cache_stash=True))
        without_opt = run_mixed_workload(build_proxy(32, cache_stash=False))
        return with_opt, without_opt

    with_opt, without_opt = run_once(benchmark, experiment)
    hits_with = with_opt.executor.lifetime_stats.stash_hits + \
        with_opt.data_handler.stats_reads_served_from_cache
    print(f"\nAblation (stash-read caching): locally served reads with={hits_with}, "
          f"clock {with_opt.clock.now_ms:.1f}ms vs {without_opt.clock.now_ms:.1f}ms without")
    assert with_opt.clock.now_ms <= without_opt.clock.now_ms * 1.25


def test_ablation_write_deduplication(benchmark, bench_scale):
    """Only the last version of each bucket is written back per epoch."""

    def experiment():
        proxy = build_proxy(64)
        run_mixed_workload(proxy, transactions=90, clients=15)
        return proxy

    proxy = run_once(benchmark, experiment)
    stats = proxy.executor.lifetime_stats
    print(f"\nAblation (write dedup): evictions={stats.evictions}, "
          f"bucket writes={stats.physical_writes}, "
          f"local buffer hits={stats.local_buffer_hits}")
    # Without deduplication every eviction would rewrite an entire path; the
    # deduplicated write-back must be strictly cheaper than that bound.
    slots_per_bucket = proxy.oram.params.slots_per_bucket
    naive_bound = stats.evictions * (proxy.oram.params.depth + 1) * slots_per_bucket
    assert stats.physical_writes < naive_bound
