"""Figure 10f: epoch size impact on application throughput at the proxy.

Epoch length is a real tuning knob: epochs too short abort transactions that
need more read rounds than the epoch provides; epochs too long leave the
proxy idle.  The paper sweeps epoch sizes from 0 to 150 ms for SmallBank,
FreeHealth and TPC-C.
"""

from repro.harness.experiments import run_epoch_size_proxy
from repro.harness.report import render_table

from .conftest import run_once


EPOCH_SIZES_MS = (25, 50, 75, 100, 125, 150)


def test_fig10f_epoch_size_proxy(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: run_epoch_size_proxy(
        applications=("smallbank", "freehealth", "tpcc"),
        epoch_sizes_ms=EPOCH_SIZES_MS,
        batch_interval_ms=25.0,
        transactions=max(48, bench_scale["transactions"] // 3),
        clients=max(8, bench_scale["clients"] // 3),
        scale=bench_scale["workload_scale"],
    ))
    print()
    print(render_table(rows, title="Figure 10f — application throughput vs epoch size "
                                   "(simulated)",
                       columns=["application", "epoch_ms", "read_batches", "throughput_tps",
                                "abort_rate"]))
    for app in ("smallbank", "freehealth", "tpcc"):
        series = sorted((r for r in rows if r.application == app), key=lambda r: r.epoch_ms)
        assert all(r.throughput_tps >= 0 for r in series)
        # Applications with multi-round transactions abort heavily when the
        # epoch is too short to fit their dependent reads.
        if app == "tpcc":
            assert series[0].abort_rate >= series[-1].abort_rate
