"""Figures 10b/10c: throughput and latency as a function of batch size.

The paper sweeps batch sizes from 1 to 10,000: throughput rises with batch
size until a backend-specific ceiling (DynamoDB tops out around 1,750 ops/s
because of its blocking HTTP client), while per-batch latency grows roughly
linearly.
"""

from repro.harness.experiments import run_batch_size_sweep
from repro.harness.report import render_table

from .conftest import run_once


BATCH_SIZES = (1, 10, 100, 500, 1000)


def _collect(bench_scale):
    return run_batch_size_sweep(
        backends=("dummy", "server", "server_wan", "dynamo"),
        batch_sizes=BATCH_SIZES,
        num_blocks=bench_scale["oram_objects"],
        min_operations=max(600, bench_scale["batch_operations"]),
    )


def test_fig10b_throughput(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: _collect(bench_scale))
    print()
    print(render_table(rows, title="Figure 10b — throughput vs batch size (ops/s, simulated)",
                       columns=["backend", "batch_size", "throughput_ops_per_s"]))
    by = {(r.backend, r.batch_size): r for r in rows}
    for backend in ("server", "server_wan", "dynamo"):
        assert by[(backend, 1000)].throughput_ops_per_s > by[(backend, 1)].throughput_ops_per_s
    # DynamoDB saturates earliest / lowest among the remote backends.
    assert by[("dynamo", 1000)].throughput_ops_per_s < by[("server", 1000)].throughput_ops_per_s


def test_fig10c_latency(benchmark, bench_scale):
    rows = run_once(benchmark, lambda: _collect(bench_scale))
    print()
    print(render_table(rows, title="Figure 10c — batch latency vs batch size (ms, simulated)",
                       columns=["backend", "batch_size", "latency_ms"]))
    by = {(r.backend, r.batch_size): r for r in rows}
    for backend in ("server", "server_wan", "dynamo"):
        assert by[(backend, 1000)].latency_ms > by[(backend, 10)].latency_ms
    # Small batches on the WAN still pay at least one 10 ms round trip.
    assert by[("server_wan", 1)].latency_ms >= 10.0
