"""Repository-level pytest configuration.

Adds ``src/`` to ``sys.path`` so the test and benchmark suites run even when
the package has not been installed (e.g. in offline CI containers where
editable installs are awkward).  When ``repro`` is already installed this is
a no-op: the installed package wins only if it appears earlier on the path,
and inserting ``src`` first keeps the working tree authoritative.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
