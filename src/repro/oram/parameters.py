"""Ring ORAM parameterisation.

Ring ORAM has four interacting parameters (paper Table 1):

* ``Z`` — real slots per bucket,
* ``S`` — dummy slots per bucket,
* ``A`` — accesses between evict-path operations,
* ``L`` — tree depth (number of non-root levels).

Ren et al. give an analytical model relating them; the Obladi paper reports
using ``Z = 100, S = 196, A = 168`` for its EC2 evaluation and choosing
``S`` and ``A`` "optimally" for a given ``Z``.  This module reproduces the
published parameter pairs and derives the tree depth from the object count.
The exact analytic optimisation is not re-derived (it has no effect on the
shape of the evaluation); instead we interpolate between the published
(Z, A, S) triples, which is what practitioners do when configuring Ring ORAM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple


#: (A, S) pairs published in the Ring ORAM paper / used by Obladi, keyed by Z.
PUBLISHED_PARAMETERS: Dict[int, Tuple[int, int]] = {
    4: (3, 6),
    8: (8, 12),
    16: (20, 25),
    32: (46, 53),
    50: (75, 87),
    100: (168, 196),
}


@dataclass(frozen=True)
class RingOramParameters:
    """Concrete Ring ORAM configuration.

    ``num_leaves == 2**depth`` and the tree can hold at most
    ``Z * (2**(depth+1) - 1)`` real blocks; the standard provisioning rule is
    ``N <= Z * 2**depth`` so that roughly half the capacity is headroom.
    """

    num_blocks: int
    z_real: int
    s_dummies: int
    evict_rate: int
    depth: int
    block_size: int = 64
    max_stash_blocks: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("ORAM must hold at least one block")
        if self.z_real < 1:
            raise ValueError("Z must be at least 1")
        if self.s_dummies < 1:
            raise ValueError("S must be at least 1")
        if self.evict_rate < 1:
            raise ValueError("A must be at least 1")
        if self.depth < 0:
            raise ValueError("depth must be non-negative")
        if self.block_size < 1:
            raise ValueError("block size must be positive")

    @property
    def num_leaves(self) -> int:
        return 1 << self.depth

    @property
    def num_buckets(self) -> int:
        return (1 << (self.depth + 1)) - 1

    @property
    def slots_per_bucket(self) -> int:
        return self.z_real + self.s_dummies

    @property
    def stash_bound(self) -> int:
        """Padding bound used when checkpointing the stash.

        Ring ORAM's stash is O(Z) with overwhelming probability; the
        reproduction pads checkpoints to ``max_stash_blocks`` if configured,
        otherwise to a conservative multiple of Z (matching the paper's
        requirement that the checkpointed stash never reveal skew).
        """
        if self.max_stash_blocks > 0:
            return self.max_stash_blocks
        return max(4 * self.z_real, 32)

    def physical_reads_per_access(self) -> int:
        """Slot reads per logical access (one per bucket on the path)."""
        return self.depth + 1

    def amortized_eviction_reads(self) -> float:
        """Average slot reads per access attributable to evictions."""
        return (self.depth + 1) * self.z_real / self.evict_rate

    def describe(self) -> str:
        """Human-readable one-line summary (used by the harness reports)."""
        return (
            f"RingORAM(N={self.num_blocks}, Z={self.z_real}, S={self.s_dummies}, "
            f"A={self.evict_rate}, L={self.depth}, block={self.block_size}B)"
        )


def partition_block_count(num_blocks: int, shards: int) -> int:
    """Blocks each of ``shards`` partitions must be able to hold.

    A partitioned data layer hashes the keyspace across independent ORAM
    trees; each tree is provisioned for its share of the objects (rounded
    up, so the union of the partitions always covers the full keyspace even
    under worst-case hash skew of one extra object per partition).  Smaller
    per-partition trees are shallower, which is where part of the sharded
    speedup comes from: each path read touches fewer buckets.
    """
    if num_blocks < 1:
        raise ValueError("num_blocks must be positive")
    if shards < 1:
        raise ValueError("need at least one partition")
    return max(1, math.ceil(num_blocks / shards))


def depth_for_blocks(num_blocks: int, z_real: int) -> int:
    """Smallest depth such that ``Z * 2**depth >= num_blocks``."""
    if num_blocks < 1:
        raise ValueError("num_blocks must be positive")
    if z_real < 1:
        raise ValueError("Z must be positive")
    leaves_needed = max(1, math.ceil(num_blocks / z_real))
    depth = max(1, math.ceil(math.log2(leaves_needed)))
    return depth


def published_a_s(z_real: int) -> Tuple[int, int]:
    """Return (A, S) for ``Z`` from the published table, interpolating if needed.

    For values of Z between published points we scale linearly from the
    nearest published Z below; this preserves the invariant ``A <= 2Z`` (the
    theoretical requirement for the stash bound) and ``S >= A`` (so a bucket
    survives A accesses between reshuffles).
    """
    if z_real in PUBLISHED_PARAMETERS:
        return PUBLISHED_PARAMETERS[z_real]
    known = sorted(PUBLISHED_PARAMETERS)
    base = known[0]
    for candidate in known:
        if candidate <= z_real:
            base = candidate
        else:
            break
    base_a, base_s = PUBLISHED_PARAMETERS[base]
    scale = z_real / base
    a = max(1, int(round(base_a * scale)))
    s = max(a, int(round(base_s * scale)))
    a = min(a, 2 * z_real)
    return a, s


def derive_parameters(num_blocks: int, z_real: int = 16, block_size: int = 64,
                      evict_rate: int = 0, s_dummies: int = 0,
                      max_stash_blocks: int = 0) -> RingOramParameters:
    """Build a full parameter set from an object count and bucket size.

    ``evict_rate`` and ``s_dummies`` default to the published optima for the
    chosen ``Z``; pass explicit values to override (tests use tiny trees with
    hand-picked parameters).
    """
    a, s = published_a_s(z_real)
    if evict_rate > 0:
        a = evict_rate
    if s_dummies > 0:
        s = s_dummies
    depth = depth_for_blocks(num_blocks, z_real)
    return RingOramParameters(
        num_blocks=num_blocks,
        z_real=z_real,
        s_dummies=s,
        evict_rate=a,
        depth=depth,
        block_size=block_size,
        max_stash_blocks=max_stash_blocks,
    )
