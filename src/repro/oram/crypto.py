"""Block encryption, authentication and padding.

The Java prototype uses Bouncy Castle AES; the reproduction substitutes a
keyed XOR keystream (SHA-256 in counter mode) plus an HMAC-SHA256 tag.  The
substitution is documented in DESIGN.md: nothing in the evaluation depends on
cryptographic strength — what matters is that

* every slot stored on the server is a fixed-size, freshly randomised
  ciphertext (so the adversary cannot distinguish real blocks from dummies or
  correlate rewrites), and
* integrity tags bind a ciphertext to its storage position and freshness
  counter (Appendix A's malicious-server extension).

Encryption cost is charged to the simulated clock by the executor via
:class:`repro.sim.latency.CpuCostModel`, not here; these functions stay pure.

Hot path
--------
A bucket rewrite seals ``Z + S`` slots and an epoch rewrites hundreds of
buckets, so this module is the single hottest Python code in the tier-1
closed loop (see ``scripts/profile_hotpath.py``).  Three things keep it fast
without changing a single output byte:

* the SHA-256 counter keystream reuses a *midstate*: the hash object over
  ``key`` (and, per ciphertext, ``key + nonce``) is built once and
  ``.copy()``-ed per 32-byte chunk instead of re-hashing the prefix from
  scratch for every chunk;
* the keystream XOR runs over whole blocks at once — via numpy when it is
  importable, via big-integer XOR otherwise — never byte-by-byte;
* the HMAC tags reuse precomputed inner/outer pad midstates, and the
  ``*_many`` batch entry points (:meth:`CipherSuite.encrypt_many`,
  :meth:`CipherSuite.seal_blocks`, …) amortise per-call overhead across a
  padded batch so callers make one vectorised call per batch, not one call
  per slot.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

try:                                    # optional fast path; never required
    import numpy as _np
except ImportError:                     # pragma: no cover - numpy is baked in
    _np = None

#: Blocks at least this long XOR through numpy when it is available; below
#: it the big-integer path wins (array setup costs more than it saves).
_NUMPY_XOR_MIN_BYTES = 1 << 20


class IntegrityError(Exception):
    """Raised when a ciphertext fails authentication or freshness checks."""


def _xor_bytes(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length byte strings (whole-block, not per byte)."""
    if _np is not None and len(data) >= _NUMPY_XOR_MIN_BYTES:
        out = _np.frombuffer(data, dtype=_np.uint8) ^ _np.frombuffer(
            stream, dtype=_np.uint8)
        return out.tobytes()
    return (int.from_bytes(data, "little")
            ^ int.from_bytes(stream, "little")).to_bytes(len(data), "little")


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream of ``length`` bytes from (key, nonce).

    Byte-compatible with the original per-chunk construction
    ``sha256(key + nonce + counter_be64)``; the midstate over ``key + nonce``
    is hashed once and copied per chunk.
    """
    return _keystream_from_midstate(_midstate(key, nonce), length)


def _midstate(key: bytes, nonce: bytes) -> "hashlib._Hash":
    """SHA-256 state primed with ``key + nonce``, ready to copy per chunk."""
    state = hashlib.sha256(key)
    state.update(nonce)
    return state


def _keystream_from_midstate(midstate: "hashlib._Hash", length: int) -> bytes:
    """Expand a primed midstate into ``length`` keystream bytes."""
    chunks: List[bytes] = []
    produced = 0
    counter = 0
    pack = struct.pack
    while produced < length:
        chunk = midstate.copy()
        chunk.update(pack(">Q", counter))
        chunks.append(chunk.digest())
        produced += 32
        counter += 1
    return b"".join(chunks)[:length]


@dataclass
class CipherSuite:
    """Encrypts, authenticates and pads ORAM blocks.

    Parameters
    ----------
    key:
        Secret key held by the proxy.  Generated randomly if omitted.
    block_size:
        Plaintext payload size every block is padded to.  Fixed-size
        ciphertexts are what make real and dummy slots indistinguishable.
    authenticated:
        Attach and verify MAC tags binding position and freshness (the
        Appendix A extension).  The honest-but-curious evaluation setting can
        disable this to skip the tag bytes.
    enabled:
        When ``False`` payloads are only padded, not encrypted.  Large
        benchmark sweeps use this to keep Python-side costs manageable; the
        simulated crypto *cost* is still charged by the executor.
    """

    key: bytes = b""
    block_size: int = 64
    authenticated: bool = True
    enabled: bool = True
    _mac_len: int = 16
    _nonce_len: int = 12

    def __post_init__(self) -> None:
        if not self.key:
            self.key = os.urandom(32)
        if self.block_size < 1:
            raise ValueError("block_size must be positive")
        # Midstate caches (not dataclass fields: they derive from ``key``).
        # ``_key_state`` is the SHA-256 state over the key alone; per
        # ciphertext it is copied and extended with the nonce, and that
        # per-ciphertext midstate is copied per 32-byte chunk.
        self._key_state = hashlib.sha256(self.key)
        # HMAC-SHA256 midstates: hash the inner/outer key pads once instead
        # of rebuilding the whole HMAC object per tag.  Matches RFC 2104
        # (and :func:`hmac.new` with sha256) exactly.
        mac_key = self.key if len(self.key) <= 64 else hashlib.sha256(self.key).digest()
        mac_key = mac_key.ljust(64, b"\x00")
        self._hmac_inner = hashlib.sha256(_xor_bytes(mac_key, b"\x36" * 64))
        self._hmac_outer = hashlib.sha256(_xor_bytes(mac_key, b"\x5c" * 64))

    def _mac(self, data: bytes) -> bytes:
        """HMAC-SHA256 tag over ``data`` (truncated), via cached midstates."""
        inner = self._hmac_inner.copy()
        inner.update(data)
        outer = self._hmac_outer.copy()
        outer.update(inner.digest())
        return outer.digest()[: self._mac_len]

    # ------------------------------------------------------------------ #
    # Padding
    # ------------------------------------------------------------------ #
    def pad(self, plaintext: bytes) -> bytes:
        """Length-prefix and pad ``plaintext`` to exactly ``block_size`` bytes."""
        if len(plaintext) > self.block_size - 4:
            raise ValueError(
                f"plaintext of {len(plaintext)} bytes exceeds block capacity "
                f"{self.block_size - 4}"
            )
        header = struct.pack(">I", len(plaintext))
        padded = header + plaintext
        return padded + b"\x00" * (self.block_size - len(padded))

    def unpad(self, padded: bytes) -> bytes:
        """Inverse of :meth:`pad`; rejects blocks with a corrupt tail.

        A well-formed block is ``len || plaintext || zeros``: the header must
        be in range *and* every byte past the payload must be zero.  Garbage
        trailing bytes mean the block was not produced by :meth:`pad` (a
        truncated or spliced ciphertext decrypting to junk), so they raise
        :class:`IntegrityError` instead of being silently dropped.
        """
        if len(padded) != self.block_size:
            raise ValueError(
                f"padded block has {len(padded)} bytes, expected {self.block_size}"
            )
        (length,) = struct.unpack(">I", padded[:4])
        if length > self.block_size - 4:
            raise IntegrityError("corrupt padding header")
        tail = padded[4 + length:]
        if tail.count(0) != len(tail):
            raise IntegrityError("corrupt padding tail: non-zero pad bytes")
        return padded[4:4 + length]

    # ------------------------------------------------------------------ #
    # Encryption
    # ------------------------------------------------------------------ #
    @property
    def ciphertext_size(self) -> int:
        """Size in bytes of every ciphertext this suite produces."""
        if not self.enabled:
            return self.block_size
        size = self._nonce_len + self.block_size
        if self.authenticated:
            size += self._mac_len
        return size

    def _encrypt_padded(self, padded: bytes, context: bytes, nonce: bytes) -> bytes:
        """Seal one already-padded block under a caller-supplied nonce."""
        midstate = self._key_state.copy()
        midstate.update(nonce)
        stream = _keystream_from_midstate(midstate, len(padded))
        blob = nonce + _xor_bytes(padded, stream)
        if self.authenticated:
            blob += self._mac(blob + context)
        return blob

    def encrypt(self, plaintext: bytes, context: bytes = b"") -> bytes:
        """Encrypt (and authenticate) a padded-to-block-size plaintext.

        ``context`` is authenticated but not encrypted; Obladi binds the
        storage position and the epoch/batch freshness counter here so a
        malicious server cannot replay stale or relocated blocks.
        """
        padded = self.pad(plaintext)
        if not self.enabled:
            return padded
        return self._encrypt_padded(padded, context, os.urandom(self._nonce_len))

    def decrypt(self, blob: bytes, context: bytes = b"") -> bytes:
        """Decrypt and verify a ciphertext produced by :meth:`encrypt`."""
        if not self.enabled:
            return self.unpad(blob)
        expected = self.ciphertext_size
        if len(blob) != expected:
            raise IntegrityError(f"ciphertext has {len(blob)} bytes, expected {expected}")
        if self.authenticated:
            body, tag = blob[: -self._mac_len], blob[-self._mac_len:]
            if not hmac.compare_digest(tag, self._mac(body + context)):
                raise IntegrityError("MAC verification failed")
        else:
            body = blob
        nonce, ciphertext = body[: self._nonce_len], body[self._nonce_len:]
        midstate = self._key_state.copy()
        midstate.update(nonce)
        stream = _keystream_from_midstate(midstate, len(ciphertext))
        return self.unpad(_xor_bytes(ciphertext, stream))

    # ------------------------------------------------------------------ #
    # Batched encryption (one call per padded batch, not one per slot)
    # ------------------------------------------------------------------ #
    def encrypt_many(self, plaintexts: Sequence[bytes],
                     contexts: Optional[Sequence[bytes]] = None) -> List[bytes]:
        """Encrypt a batch of plaintexts; equivalent to per-slot :meth:`encrypt`.

        ``contexts`` (optional) supplies one authenticated context per
        plaintext.  Nonces for the whole batch are drawn with a single
        ``os.urandom`` call and the padded batch is XORed as one flat
        buffer, so the per-block Python cost is a handful of hash-object
        copies instead of a per-byte loop.
        """
        n = len(plaintexts)
        if contexts is not None and len(contexts) != n:
            raise ValueError(f"{len(contexts)} contexts for {n} plaintexts")
        padded = [self.pad(p) for p in plaintexts]
        if not self.enabled or n == 0:
            return padded

        nonce_len = self._nonce_len
        nonces = os.urandom(nonce_len * n)
        key_state = self._key_state
        streams: List[bytes] = []
        for i in range(n):
            midstate = key_state.copy()
            midstate.update(nonces[i * nonce_len:(i + 1) * nonce_len])
            streams.append(_keystream_from_midstate(midstate, self.block_size))

        bodies = _xor_bytes(b"".join(padded), b"".join(streams))
        size = self.block_size
        out: List[bytes] = []
        for i in range(n):
            blob = (nonces[i * nonce_len:(i + 1) * nonce_len]
                    + bodies[i * size:(i + 1) * size])
            if self.authenticated:
                context = contexts[i] if contexts is not None else b""
                blob += self._mac(blob + context)
            out.append(blob)
        return out

    def decrypt_many(self, blobs: Sequence[bytes],
                     contexts: Optional[Sequence[bytes]] = None) -> List[bytes]:
        """Decrypt a batch of ciphertexts; equivalent to per-slot :meth:`decrypt`.

        Verification failures raise exactly as :meth:`decrypt` does, at the
        first offending blob.
        """
        n = len(blobs)
        if contexts is not None and len(contexts) != n:
            raise ValueError(f"{len(contexts)} contexts for {n} blobs")
        if not self.enabled:
            return [self.unpad(blob) for blob in blobs]
        if n == 0:
            return []

        expected = self.ciphertext_size
        nonce_len, mac_len = self._nonce_len, self._mac_len
        bodies: List[bytes] = []
        streams: List[bytes] = []
        key_state = self._key_state
        for i, blob in enumerate(blobs):
            if len(blob) != expected:
                raise IntegrityError(
                    f"ciphertext has {len(blob)} bytes, expected {expected}")
            if self.authenticated:
                body, tag = blob[:-mac_len], blob[-mac_len:]
                context = contexts[i] if contexts is not None else b""
                if not hmac.compare_digest(tag, self._mac(body + context)):
                    raise IntegrityError("MAC verification failed")
            else:
                body = blob
            midstate = key_state.copy()
            midstate.update(body[:nonce_len])
            streams.append(_keystream_from_midstate(midstate, self.block_size))
            bodies.append(body[nonce_len:])

        padded = _xor_bytes(b"".join(bodies), b"".join(streams))
        size = self.block_size
        return [self.unpad(padded[i * size:(i + 1) * size]) for i in range(n)]

    # ------------------------------------------------------------------ #
    # Block serialisation helpers
    # ------------------------------------------------------------------ #
    def seal_block(self, block_id: Optional[int], value: bytes, context: bytes = b"") -> bytes:
        """Serialise and encrypt a (block id, value) pair; ``None`` id = dummy."""
        bid = block_id if block_id is not None else 0xFFFFFFFF
        payload = struct.pack(">I", bid) + value
        return self.encrypt(payload, context)

    def seal_blocks(self, entries: Sequence[Tuple[Optional[int], bytes, bytes]]
                    ) -> List[bytes]:
        """Seal a batch of ``(block_id_or_None, value, context)`` entries.

        One vectorised call per bucket rewrite (or padded batch) replacing a
        :meth:`seal_block` call per slot; the outputs are byte-equivalent.
        """
        payloads = [
            struct.pack(">I", bid if bid is not None else 0xFFFFFFFF) + value
            for bid, value, _ in entries]
        return self.encrypt_many(payloads, [context for _, _, context in entries])

    def open_block(self, blob: bytes, context: bytes = b"") -> Tuple[Optional[int], bytes]:
        """Inverse of :meth:`seal_block`; returns ``(block_id_or_None, value)``."""
        return self._split_payload(self.decrypt(blob, context))

    def open_blocks(self, blobs: Sequence[bytes], contexts: Sequence[bytes]
                    ) -> List[Tuple[Optional[int], bytes]]:
        """Inverse of :meth:`seal_blocks` for a batch of ciphertexts."""
        return [self._split_payload(payload)
                for payload in self.decrypt_many(blobs, contexts)]

    @staticmethod
    def _split_payload(payload: bytes) -> Tuple[Optional[int], bytes]:
        """Split a decrypted slot payload into ``(block_id_or_None, value)``."""
        if len(payload) < 4:
            raise IntegrityError("sealed block too short")
        (bid,) = struct.unpack(">I", payload[:4])
        block_id = None if bid == 0xFFFFFFFF else bid
        return block_id, payload[4:]

    def dummy_block(self, context: bytes = b"") -> bytes:
        """A fresh ciphertext indistinguishable from a real sealed block."""
        return self.seal_block(None, b"", context)


def freshness_context(bucket: int, version: int, slot: int = -1) -> bytes:
    """Canonical authenticated context binding position and freshness.

    Appendix A requires every stored value to be bound to the pair
    (location, write counter); slots additionally bind their index.
    """
    return struct.pack(">qqq", bucket, version, slot)
