"""Block encryption, authentication and padding.

The Java prototype uses Bouncy Castle AES; the reproduction substitutes a
keyed XOR keystream (SHA-256 in counter mode) plus an HMAC-SHA256 tag.  The
substitution is documented in DESIGN.md: nothing in the evaluation depends on
cryptographic strength — what matters is that

* every slot stored on the server is a fixed-size, freshly randomised
  ciphertext (so the adversary cannot distinguish real blocks from dummies or
  correlate rewrites), and
* integrity tags bind a ciphertext to its storage position and freshness
  counter (Appendix A's malicious-server extension).

Encryption cost is charged to the simulated clock by the executor via
:class:`repro.sim.latency.CpuCostModel`, not here; these functions stay pure.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import struct
from dataclasses import dataclass
from typing import Optional, Tuple


class IntegrityError(Exception):
    """Raised when a ciphertext fails authentication or freshness checks."""


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream of ``length`` bytes from (key, nonce)."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(key + nonce + struct.pack(">Q", counter)).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


@dataclass
class CipherSuite:
    """Encrypts, authenticates and pads ORAM blocks.

    Parameters
    ----------
    key:
        Secret key held by the proxy.  Generated randomly if omitted.
    block_size:
        Plaintext payload size every block is padded to.  Fixed-size
        ciphertexts are what make real and dummy slots indistinguishable.
    authenticated:
        Attach and verify MAC tags binding position and freshness (the
        Appendix A extension).  The honest-but-curious evaluation setting can
        disable this to skip the tag bytes.
    enabled:
        When ``False`` payloads are only padded, not encrypted.  Large
        benchmark sweeps use this to keep Python-side costs manageable; the
        simulated crypto *cost* is still charged by the executor.
    """

    key: bytes = b""
    block_size: int = 64
    authenticated: bool = True
    enabled: bool = True
    _mac_len: int = 16
    _nonce_len: int = 12

    def __post_init__(self) -> None:
        if not self.key:
            self.key = os.urandom(32)
        if self.block_size < 1:
            raise ValueError("block_size must be positive")

    # ------------------------------------------------------------------ #
    # Padding
    # ------------------------------------------------------------------ #
    def pad(self, plaintext: bytes) -> bytes:
        """Length-prefix and pad ``plaintext`` to exactly ``block_size`` bytes."""
        if len(plaintext) > self.block_size - 4:
            raise ValueError(
                f"plaintext of {len(plaintext)} bytes exceeds block capacity "
                f"{self.block_size - 4}"
            )
        header = struct.pack(">I", len(plaintext))
        padded = header + plaintext
        return padded + b"\x00" * (self.block_size - len(padded))

    def unpad(self, padded: bytes) -> bytes:
        """Inverse of :meth:`pad`."""
        if len(padded) != self.block_size:
            raise ValueError(
                f"padded block has {len(padded)} bytes, expected {self.block_size}"
            )
        (length,) = struct.unpack(">I", padded[:4])
        if length > self.block_size - 4:
            raise IntegrityError("corrupt padding header")
        return padded[4:4 + length]

    # ------------------------------------------------------------------ #
    # Encryption
    # ------------------------------------------------------------------ #
    @property
    def ciphertext_size(self) -> int:
        """Size in bytes of every ciphertext this suite produces."""
        if not self.enabled:
            return self.block_size
        size = self._nonce_len + self.block_size
        if self.authenticated:
            size += self._mac_len
        return size

    def encrypt(self, plaintext: bytes, context: bytes = b"") -> bytes:
        """Encrypt (and authenticate) a padded-to-block-size plaintext.

        ``context`` is authenticated but not encrypted; Obladi binds the
        storage position and the epoch/batch freshness counter here so a
        malicious server cannot replay stale or relocated blocks.
        """
        padded = self.pad(plaintext)
        if not self.enabled:
            return padded
        nonce = os.urandom(self._nonce_len)
        stream = _keystream(self.key, nonce, len(padded))
        body = bytes(a ^ b for a, b in zip(padded, stream))
        blob = nonce + body
        if self.authenticated:
            tag = hmac.new(self.key, blob + context, hashlib.sha256).digest()[: self._mac_len]
            blob += tag
        return blob

    def decrypt(self, blob: bytes, context: bytes = b"") -> bytes:
        """Decrypt and verify a ciphertext produced by :meth:`encrypt`."""
        if not self.enabled:
            return self.unpad(blob)
        expected = self.ciphertext_size
        if len(blob) != expected:
            raise IntegrityError(f"ciphertext has {len(blob)} bytes, expected {expected}")
        if self.authenticated:
            body, tag = blob[: -self._mac_len], blob[-self._mac_len:]
            want = hmac.new(self.key, body + context, hashlib.sha256).digest()[: self._mac_len]
            if not hmac.compare_digest(tag, want):
                raise IntegrityError("MAC verification failed")
        else:
            body = blob
        nonce, ciphertext = body[: self._nonce_len], body[self._nonce_len:]
        stream = _keystream(self.key, nonce, len(ciphertext))
        padded = bytes(a ^ b for a, b in zip(ciphertext, stream))
        return self.unpad(padded)

    # ------------------------------------------------------------------ #
    # Block serialisation helpers
    # ------------------------------------------------------------------ #
    def seal_block(self, block_id: Optional[int], value: bytes, context: bytes = b"") -> bytes:
        """Serialise and encrypt a (block id, value) pair; ``None`` id = dummy."""
        bid = block_id if block_id is not None else 0xFFFFFFFF
        payload = struct.pack(">I", bid) + value
        return self.encrypt(payload, context)

    def open_block(self, blob: bytes, context: bytes = b"") -> Tuple[Optional[int], bytes]:
        """Inverse of :meth:`seal_block`; returns ``(block_id_or_None, value)``."""
        payload = self.decrypt(blob, context)
        if len(payload) < 4:
            raise IntegrityError("sealed block too short")
        (bid,) = struct.unpack(">I", payload[:4])
        block_id = None if bid == 0xFFFFFFFF else bid
        return block_id, payload[4:]

    def dummy_block(self, context: bytes = b"") -> bytes:
        """A fresh ciphertext indistinguishable from a real sealed block."""
        return self.seal_block(None, b"", context)


def freshness_context(bucket: int, version: int, slot: int = -1) -> bytes:
    """Canonical authenticated context binding position and freshness.

    Appendix A requires every stored value to be bound to the pair
    (location, write counter); slots additionally bind their index.
    """
    return struct.pack(">qqq", bucket, version, slot)
