"""Tree geometry and the deterministic eviction schedule.

Buckets are numbered heap-style: bucket 0 is the root; the bucket at level
``l`` (root is level 0) with in-level index ``i`` has id ``2**l - 1 + i``.
A *path* is identified by its leaf index in ``[0, 2**L)`` where ``L`` is the
number of non-root levels (so the tree has ``L + 1`` levels and ``2**L``
leaves).

Ring ORAM's evict-path schedule visits paths in *reverse-lexicographic*
order: the g-th eviction targets the leaf whose index is the bit-reversal of
``g mod 2**L``.  This ordering guarantees that a bucket at level ``l`` is
rewritten exactly once every ``2**l`` evictions, which Obladi exploits for
shadow-paging recovery: the number of times any bucket has been written is a
closed-form function of the global eviction counter (plus logged early
reshuffles).
"""

from __future__ import annotations

from typing import List, Sequence, Union

try:                                    # optional fast path; never required
    import numpy as _np
except ImportError:                     # pragma: no cover - numpy is baked in
    _np = None

#: Array-shaped results: a numpy array when numpy is importable, else nested
#: lists with identical values — callers treat both as sequences.
ArrayLike = Union["_np.ndarray", List]


def tree_levels(num_leaves: int) -> int:
    """Number of non-root levels ``L`` for a tree with ``num_leaves`` leaves."""
    if num_leaves < 1 or num_leaves & (num_leaves - 1):
        raise ValueError(f"num_leaves must be a positive power of two, got {num_leaves}")
    return num_leaves.bit_length() - 1


def num_buckets(depth: int) -> int:
    """Total buckets in a tree of depth ``depth`` (levels 0..depth)."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    return (1 << (depth + 1)) - 1


def bucket_id(level: int, index: int) -> int:
    """Heap-style id of the bucket at ``level`` with in-level ``index``."""
    if level < 0:
        raise ValueError("level must be non-negative")
    if not 0 <= index < (1 << level):
        raise ValueError(f"index {index} out of range for level {level}")
    return (1 << level) - 1 + index


def bucket_level(bid: int) -> int:
    """Level of bucket ``bid`` (root is level 0)."""
    if bid < 0:
        raise ValueError("bucket id must be non-negative")
    return (bid + 1).bit_length() - 1


def bucket_index_in_level(bid: int) -> int:
    """In-level index of bucket ``bid``."""
    level = bucket_level(bid)
    return bid - ((1 << level) - 1)


def path_buckets(leaf: int, depth: int) -> List[int]:
    """Bucket ids on the path from the root to ``leaf`` (root first).

    ``depth`` is the number of non-root levels; ``leaf`` must be in
    ``[0, 2**depth)``.
    """
    if not 0 <= leaf < (1 << depth):
        raise ValueError(f"leaf {leaf} out of range for depth {depth}")
    buckets = []
    for level in range(depth + 1):
        index = leaf >> (depth - level)
        buckets.append(bucket_id(level, index))
    return buckets


def bucket_on_path(bid: int, leaf: int, depth: int) -> bool:
    """Whether bucket ``bid`` lies on the path to ``leaf``."""
    level = bucket_level(bid)
    if level > depth:
        return False
    return bucket_index_in_level(bid) == (leaf >> (depth - level))


def path_buckets_many(leaves: Sequence[int], depth: int) -> ArrayLike:
    """Bucket ids on the root-to-leaf path of *every* leaf in ``leaves``.

    The batched form of :func:`path_buckets`: row ``i`` holds the
    ``depth + 1`` bucket ids (root first) of ``leaves[i]``'s path.  Returns
    a ``(len(leaves), depth + 1)`` numpy array when numpy is importable and
    an equal-valued list of lists otherwise — the pure-python fallback sits
    behind the same API.
    """
    if _np is not None:
        arr = _np.asarray(list(leaves), dtype=_np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= (1 << depth)):
            bad = int(arr[(arr < 0) | (arr >= (1 << depth))][0])
            raise ValueError(f"leaf {bad} out of range for depth {depth}")
        levels = _np.arange(depth + 1, dtype=_np.int64)
        # bucket id at level l = 2**l - 1 + (leaf >> (depth - l))
        return ((1 << levels) - 1) + (arr[:, None] >> (depth - levels)[None, :])
    return [path_buckets(leaf, depth) for leaf in leaves]


def buckets_on_path(bids: Sequence[int], leaf: int, depth: int) -> ArrayLike:
    """Whether each bucket in ``bids`` lies on the path to ``leaf``.

    The batched form of :func:`bucket_on_path`; returns a boolean array
    (numpy) or list (fallback) aligned with ``bids``.
    """
    if _np is not None:
        arr = _np.asarray(list(bids), dtype=_np.int64)
        if arr.size and arr.min() < 0:
            raise ValueError("bucket id must be non-negative")
        # level = bit_length(bid + 1) - 1, vectorised as floor(log2(bid + 1));
        # exact for the int64 range because frexp works on the significand.
        _, exponents = _np.frexp((arr + 1).astype(_np.float64))
        levels = exponents.astype(_np.int64) - 1
        index_in_level = arr - ((1 << _np.minimum(levels, 62)) - 1)
        on_path = index_in_level == (leaf >> _np.maximum(depth - levels, 0))
        return _np.where(levels <= depth, on_path, False)
    return [bucket_on_path(bid, leaf, depth) for bid in bids]


def deepest_common_levels(leaves: Sequence[int], leaf: int, depth: int) -> ArrayLike:
    """Deepest shared level of each path in ``leaves`` with the path to ``leaf``.

    The batched form of :func:`deepest_common_level`, used by the eviction
    write phase to place a whole stash against the target path in one pass.
    """
    if _np is not None:
        arr = _np.asarray(list(leaves), dtype=_np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= (1 << depth)):
            bad = int(arr[(arr < 0) | (arr >= (1 << depth))][0])
            raise ValueError(f"leaf {bad} out of range for depth {depth}")
        if not 0 <= leaf < (1 << depth):
            raise ValueError(f"leaf {leaf} out of range for depth {depth}")
        diff = arr ^ leaf
        # Common prefix length of the ``depth``-bit leaf indices: the level
        # equals depth - bit_length(diff) (diff == 0 -> the full depth).
        _, exponents = _np.frexp(diff.astype(_np.float64))
        return depth - _np.where(diff == 0, 0, exponents.astype(_np.int64))
    return [deepest_common_level(leaf_b, leaf, depth) for leaf_b in leaves]


def eviction_paths(start: int, count: int, depth: int) -> ArrayLike:
    """Leaves targeted by evictions ``start .. start + count - 1``.

    The batched form of :func:`eviction_path`: one bit-reversal sweep over a
    run of the reverse-lexicographic schedule.
    """
    if start < 0:
        raise ValueError("eviction counter must be non-negative")
    if count < 0:
        raise ValueError("count must be non-negative")
    if _np is not None:
        values = _np.arange(start, start + count, dtype=_np.int64) % (1 << depth)
        result = _np.zeros(count, dtype=_np.int64)
        for _ in range(depth):
            result = (result << 1) | (values & 1)
            values >>= 1
        return result
    return [eviction_path(g, depth) for g in range(start, start + count)]


def deepest_common_level(leaf_a: int, leaf_b: int, depth: int) -> int:
    """Deepest level at which the paths to ``leaf_a`` and ``leaf_b`` intersect.

    Two paths always intersect at the root (level 0); they share levels
    ``0..k`` where ``k`` is the length of their common leaf-index prefix.
    """
    for leaf in (leaf_a, leaf_b):
        if not 0 <= leaf < (1 << depth):
            raise ValueError(f"leaf {leaf} out of range for depth {depth}")
    level = depth
    while level > 0 and (leaf_a >> (depth - level)) != (leaf_b >> (depth - level)):
        level -= 1
    return level


def reverse_bits(value: int, width: int) -> int:
    """Reverse the ``width`` low-order bits of ``value``."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def eviction_path(g: int, depth: int) -> int:
    """Leaf targeted by the ``g``-th evict-path (reverse-lexicographic order)."""
    if g < 0:
        raise ValueError("eviction counter must be non-negative")
    if depth == 0:
        return 0
    return reverse_bits(g % (1 << depth), depth)


def eviction_count_for_bucket(bid: int, g: int, depth: int) -> int:
    """How many of the first ``g`` evictions rewrote bucket ``bid``.

    Bucket ``(l, i)`` is on the ``g``-th eviction path iff
    ``g mod 2**l == reverse_bits(i, l)``; counting solutions in ``[0, g)``
    gives a closed form.  Obladi's recovery relies on this determinism: the
    version of every bucket can be reconstructed from the eviction counter
    alone (early reshuffles, which are data-dependent, are WAL-logged
    separately).
    """
    if g < 0:
        raise ValueError("eviction counter must be non-negative")
    level = bucket_level(bid)
    if level > depth:
        raise ValueError(f"bucket {bid} is below the tree depth {depth}")
    if level == 0:
        return g
    period = 1 << level
    residue = reverse_bits(bucket_index_in_level(bid), level)
    if g <= residue:
        return 0
    return (g - residue - 1) // period + 1
