"""Client-side position map.

The position map records, for every logical block id, the tree leaf (path)
the block is currently mapped to.  Every access remaps the block to a fresh
uniformly random leaf — the *path invariant* that makes repeated accesses to
the same block look independent to the server.

For durability, Obladi checkpoints the map each epoch; to keep checkpoints
small it writes *deltas* (entries changed since the last full checkpoint)
padded to the maximum number of entries an epoch could have changed, so the
delta size never reveals how many real (non-padded) requests ran.
"""

from __future__ import annotations

import json
import random
from typing import Dict, Iterator, List, Optional, Set, Tuple


class PositionMap:
    """Mapping from block id to leaf, with delta tracking for checkpoints."""

    def __init__(self, num_leaves: int, rng: Optional[random.Random] = None) -> None:
        if num_leaves < 1:
            raise ValueError("num_leaves must be positive")
        self.num_leaves = num_leaves
        self._rng = rng if rng is not None else random.Random()
        self._positions: Dict[int, int] = {}
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Core mapping operations
    # ------------------------------------------------------------------ #
    def lookup(self, block_id: int) -> Optional[int]:
        """Leaf the block is mapped to, or ``None`` if never seen."""
        return self._positions.get(block_id)

    def lookup_or_assign(self, block_id: int) -> int:
        """Leaf for the block, assigning a fresh random leaf on first touch."""
        leaf = self._positions.get(block_id)
        if leaf is None:
            leaf = self._rng.randrange(self.num_leaves)
            self._positions[block_id] = leaf
            self._dirty.add(block_id)
        return leaf

    def remap(self, block_id: int) -> int:
        """Assign a fresh uniformly random leaf and return it."""
        leaf = self._rng.randrange(self.num_leaves)
        self._positions[block_id] = leaf
        self._dirty.add(block_id)
        return leaf

    def set(self, block_id: int, leaf: int) -> None:
        """Force a specific mapping (used by recovery when replaying a delta)."""
        if not 0 <= leaf < self.num_leaves:
            raise ValueError(f"leaf {leaf} out of range [0, {self.num_leaves})")
        self._positions[block_id] = leaf
        self._dirty.add(block_id)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._positions.items())

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #
    def dirty_entries(self) -> Dict[int, int]:
        """Entries modified since the last :meth:`clear_dirty` call."""
        return {bid: self._positions[bid] for bid in self._dirty if bid in self._positions}

    def clear_dirty(self) -> None:
        """Mark all entries clean (called after a successful checkpoint)."""
        self._dirty.clear()

    def serialize_full(self) -> bytes:
        """Full-map serialisation for periodic full checkpoints."""
        payload = {"num_leaves": self.num_leaves,
                   "positions": {str(k): v for k, v in self._positions.items()}}
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    def serialize_delta(self, pad_to_entries: int = 0) -> bytes:
        """Delta serialisation padded to ``pad_to_entries`` entries.

        Padding entries use the sentinel block id ``-1`` so that the byte
        length of the delta depends only on ``pad_to_entries`` — the paper's
        requirement that the delta size not reveal how many real requests an
        epoch contained.
        """
        entries: List[Tuple[int, int]] = sorted(self.dirty_entries().items())
        if pad_to_entries and len(entries) > pad_to_entries:
            raise ValueError(
                f"delta has {len(entries)} entries but pad bound is {pad_to_entries}"
            )
        while pad_to_entries and len(entries) < pad_to_entries:
            entries.append((-1, 0))
        payload = {"delta": entries}
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @classmethod
    def deserialize_full(cls, blob: bytes, rng: Optional[random.Random] = None) -> "PositionMap":
        """Rebuild a map from :meth:`serialize_full` output."""
        payload = json.loads(blob.decode("utf-8"))
        pmap = cls(payload["num_leaves"], rng=rng)
        for key, leaf in payload["positions"].items():
            pmap._positions[int(key)] = int(leaf)
        pmap.clear_dirty()
        return pmap

    def apply_delta(self, blob: bytes) -> int:
        """Apply a serialised delta; returns the number of real entries applied."""
        payload = json.loads(blob.decode("utf-8"))
        applied = 0
        for block_id, leaf in payload["delta"]:
            if block_id < 0:
                continue
            self._positions[int(block_id)] = int(leaf)
            applied += 1
        return applied
