"""Ring ORAM substrate and the Obladi parallel batch executor.

Ring ORAM (Ren et al., 2015) is the tree-based ORAM Obladi builds on: a
binary tree of buckets, each holding ``Z`` real and ``S`` dummy slots behind
a per-bucket random permutation, a client-side stash, a position map, and a
fully deterministic reverse-lexicographic eviction schedule (one ``evict
path`` every ``A`` accesses).

The package is split between *pure metadata logic* (planning which physical
slots to touch) and *execution* (actually issuing storage requests), so that
the sequential ORAM (:class:`~repro.oram.ring_oram.RingOram`) and Obladi's
epoch-based parallel executor
(:class:`~repro.oram.batch_executor.EpochBatchExecutor`) share one
implementation of the algorithm — the parallel schedule must be a
deterministic function of the sequential one (paper Lemma 2).
"""

from repro.oram.parameters import RingOramParameters, derive_parameters
from repro.oram.ring_oram import RingOram, OramAccess
from repro.oram.batch_executor import EpochBatchExecutor
from repro.oram.crypto import CipherSuite

__all__ = [
    "RingOramParameters",
    "derive_parameters",
    "RingOram",
    "OramAccess",
    "EpochBatchExecutor",
    "CipherSuite",
]
