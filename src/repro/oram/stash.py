"""Client-side stash.

The stash temporarily holds blocks that have been logically accessed (and
remapped) but not yet flushed back to the tree by an evict-path.  Unlike a
cache it is *essential to security*: flushing a block immediately would
reveal its new path.

Obladi draws a distinction the sequential Ring ORAM does not need (paper
§6.3): blocks sitting in the stash because of a *logical access* are mapped
to fresh uniformly random leaves, so serving them locally (without a dummy
path read) does not skew the distribution of paths the server observes;
blocks left behind by an eviction that could not place them (*eviction
residue*) are biased towards paths far from the last evicted path, so they
must still trigger a dummy read.  Every entry therefore carries a provenance
flag.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.oram import path_math


class StashReason(enum.Enum):
    """Why a block currently resides in the stash."""

    LOGICAL_ACCESS = "logical"
    EVICTION_RESIDUE = "residue"


@dataclass
class StashEntry:
    """A block buffered at the proxy awaiting eviction."""

    block_id: int
    leaf: int
    value: bytes
    reason: StashReason = StashReason.LOGICAL_ACCESS


class StashOverflowError(Exception):
    """Raised when the stash exceeds its configured bound.

    Ring ORAM guarantees a constant stash bound with overwhelming
    probability; exceeding it indicates a mis-parameterised tree (A too large
    relative to Z) rather than bad luck, so we fail loudly.
    """


class Stash:
    """Bounded collection of :class:`StashEntry`, keyed by block id."""

    def __init__(self, capacity: int = 0) -> None:
        self.capacity = capacity
        self._entries: Dict[int, StashEntry] = {}
        self.peak_size = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._entries

    def get(self, block_id: int) -> Optional[StashEntry]:
        return self._entries.get(block_id)

    def put(self, block_id: int, leaf: int, value: bytes,
            reason: StashReason = StashReason.LOGICAL_ACCESS) -> StashEntry:
        """Insert or replace a block.  Replacement updates leaf, value, reason."""
        entry = StashEntry(block_id=block_id, leaf=leaf, value=value, reason=reason)
        self._entries[block_id] = entry
        if len(self._entries) > self.peak_size:
            self.peak_size = len(self._entries)
        if self.capacity and len(self._entries) > self.capacity:
            raise StashOverflowError(
                f"stash holds {len(self._entries)} blocks, bound is {self.capacity}"
            )
        return entry

    def remove(self, block_id: int) -> Optional[StashEntry]:
        """Remove and return an entry, or ``None`` if absent."""
        return self._entries.pop(block_id, None)

    def entries(self) -> List[StashEntry]:
        """All entries (stable order by block id, for determinism)."""
        return [self._entries[bid] for bid in sorted(self._entries)]

    def entries_for_path(self, leaf: int, depth: int) -> List[StashEntry]:
        """Entries whose assigned path intersects the path to ``leaf``.

        Every path intersects at the root, so strictly speaking all entries
        qualify; eviction uses :func:`repro.oram.path_math.deepest_common_level`
        to decide how deep each block can be placed.  This helper simply
        returns all entries — it exists so callers express intent clearly.
        """
        del leaf, depth
        return self.entries()

    def entries_with_common_levels(self, leaf: int, depth: int
                                   ) -> List[Tuple[StashEntry, int]]:
        """Every entry paired with its deepest common level with ``leaf``'s path.

        The eviction write phase needs, for each stashed block, the deepest
        bucket on the evicted path that still lies on the block's own path.
        Scanning the stash entry-by-entry with a bit walk per entry was the
        hot loop; this batches the whole scan through
        :func:`repro.oram.path_math.deepest_common_levels` (vectorised under
        numpy, same values without it).  Order matches :meth:`entries`.
        """
        entries = self.entries()
        if not entries:
            return []
        levels = path_math.deepest_common_levels(
            [entry.leaf for entry in entries], leaf, depth)
        return [(entry, int(level)) for entry, level in zip(entries, levels)]

    def mark_residue(self, block_id: int) -> None:
        """Flag a block as eviction residue (could not be flushed)."""
        entry = self._entries.get(block_id)
        if entry is not None:
            entry.reason = StashReason.EVICTION_RESIDUE

    def clear(self) -> None:
        self._entries.clear()

    def iter_ids(self) -> Iterator[int]:
        return iter(sorted(self._entries))

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #
    def serialize(self, pad_to_blocks: int, block_size: int) -> bytes:
        """Serialise the stash padded to ``pad_to_blocks`` entries.

        The checkpointed stash must be padded to its maximum size so its
        length reveals nothing about workload skew (paper §8).  Each entry is
        encoded as (block id, leaf, reason, hex value); padding entries use
        block id ``-1`` and a zero value of ``block_size`` bytes so real and
        padded entries have identical encoded sizes.
        """
        if pad_to_blocks < len(self._entries):
            raise StashOverflowError(
                f"cannot pad stash of {len(self._entries)} blocks to {pad_to_blocks}"
            )
        rows: List[Tuple[int, int, str, int, str]] = []
        for entry in self.entries():
            if len(entry.value) > block_size:
                raise ValueError(
                    f"stash value for block {entry.block_id} exceeds block size {block_size}"
                )
            value_hex = entry.value.ljust(block_size, b"\x00").hex()
            rows.append((entry.block_id, entry.leaf, entry.reason.value,
                         len(entry.value), value_hex))
        filler = (b"\x00" * block_size).hex()
        while len(rows) < pad_to_blocks:
            rows.append((-1, 0, StashReason.LOGICAL_ACCESS.value, 0, filler))
        return json.dumps({"stash": rows}).encode("utf-8")

    @classmethod
    def deserialize(cls, blob: bytes, capacity: int = 0) -> "Stash":
        """Rebuild a stash from :meth:`serialize` output, dropping padding."""
        payload = json.loads(blob.decode("utf-8"))
        stash = cls(capacity=capacity)
        for block_id, leaf, reason, length, value_hex in payload["stash"]:
            if block_id < 0:
                continue
            value = bytes.fromhex(value_hex)[: int(length)]
            stash.put(int(block_id), int(leaf), value, StashReason(reason))
        return stash
