"""Obladi's epoch-based parallel ORAM executor.

The executor wraps a :class:`~repro.oram.ring_oram.RingOram` planner and
executes logical requests the way Section 7 of the paper describes:

* logical reads arrive in fixed-size *read batches*; the physical slot reads
  they require are deduplicated within the epoch and executed as one parallel
  batch whose simulated duration is computed from the bucket-metadata
  dependency DAG;
* logical writes are *dummiless*: they go straight to the stash and only
  advance the eviction schedule;
* evict-path and early-reshuffle operations triggered inside the epoch run
  their read phase immediately (it is workload-independent) but their bucket
  rewrites are buffered;
* at the end of the epoch the buffered rewrites are deduplicated (only the
  last version of each bucket is written) and flushed as one parallel write
  batch; reads that targeted an intermediate buffered version were served
  locally from the buffer.

Setting ``buffer_writes=False`` disables the delayed-visibility optimisation
(every eviction's write phase executes immediately); Figure 10d measures the
difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.oram.crypto import freshness_context
from repro.oram.dependency import (PhysicalRead, simulate_parallel_read_batch,
                                   simulate_parallel_write_batch)
from repro.oram import path_math
from repro.oram.ring_oram import (BucketRewrite, EvictionPlan, PathReadPlan, RingOram,
                                  SlotRead)
from repro.oram.stash import StashReason
from repro.sim.latency import CpuCostModel, LatencyModel, get_latency_model


@dataclass
class EpochStats:
    """Counters describing one epoch's physical work."""

    logical_reads: int = 0
    logical_writes: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    buffered_bucket_writes_saved: int = 0
    local_buffer_hits: int = 0
    stash_hits: int = 0
    evictions: int = 0
    early_reshuffles: int = 0
    read_time_ms: float = 0.0
    write_time_ms: float = 0.0


class EpochBatchExecutor:
    """Executes read/write batches for one Obladi proxy over one ORAM tree."""

    def __init__(self, oram: RingOram, latency="server", parallelism: int = 64,
                 cost_model: Optional[CpuCostModel] = None,
                 buffer_writes: bool = True,
                 charge_crypto: Optional[bool] = None,
                 advance_clock: bool = True) -> None:
        self.oram = oram
        self.latency: LatencyModel = get_latency_model(latency)
        self.parallelism = max(1, parallelism)
        self.cost_model = cost_model if cost_model is not None else oram.cost_model
        self.buffer_writes = buffer_writes
        # When set, overrides whether the *simulated* per-block crypto cost is
        # charged, independently of whether the cipher actually encrypts.
        # Benchmarks use this to model encryption costs without paying for
        # real Python-side encryption at 100K-object scale.
        self.charge_crypto = charge_crypto
        # With ``advance_clock=False`` simulated batch durations accumulate in
        # ``deferred_ms`` instead of advancing the shared clock.  A partitioned
        # data layer runs one executor per partition this way and advances the
        # clock once by the *maximum* across partitions — partition batches are
        # parallel work, not serial work.
        self.advance_clock = advance_clock
        self.deferred_ms = 0.0

        # Epoch-scoped state
        self._read_cache: Dict[str, Optional[bytes]] = {}
        self._buffered_rewrites: Dict[int, BucketRewrite] = {}
        self._buffered_versions: Dict[Tuple[int, int], BucketRewrite] = {}
        self._rewrites_buffered_total = 0
        self.stats = EpochStats()
        self.lifetime_stats = EpochStats()

    def _crypto_charged(self) -> bool:
        """Whether the simulated per-block crypto cost applies."""
        if self.charge_crypto is not None:
            return self.charge_crypto
        return self.oram.cipher.enabled

    def _charge_time(self, elapsed_ms: float) -> None:
        """Advance the clock, or accumulate when the clock is deferred."""
        if self.advance_clock:
            self.oram.clock.advance(elapsed_ms)
        else:
            self.deferred_ms += elapsed_ms

    def take_deferred_ms(self) -> float:
        """Return and reset the accumulated deferred duration."""
        elapsed, self.deferred_ms = self.deferred_ms, 0.0
        return elapsed

    # ------------------------------------------------------------------ #
    # Epoch lifecycle
    # ------------------------------------------------------------------ #
    def begin_epoch(self) -> None:
        """Reset per-epoch state.  Buffered writes must have been flushed."""
        if self._buffered_rewrites:
            raise RuntimeError("previous epoch's buffered writes were never flushed")
        self._read_cache.clear()
        self._buffered_versions.clear()
        self._rewrites_buffered_total = 0
        self.stats = EpochStats()

    def abort_epoch(self) -> None:
        """Drop all buffered writes (used on crash simulation / epoch abort)."""
        self._buffered_rewrites.clear()
        self._buffered_versions.clear()
        self._read_cache.clear()
        self._rewrites_buffered_total = 0

    # ------------------------------------------------------------------ #
    # Physical fetch helpers
    # ------------------------------------------------------------------ #
    def _fetch_slots(self, slot_reads: Sequence[SlotRead],
                     physical: List[PhysicalRead]) -> Dict[int, bytes]:
        """Fetch a plan's slots with one storage batch and one decrypt batch.

        Each slot's sealed payload comes from the epoch write buffer, the
        epoch read cache, or the server; all server misses of the plan are
        issued as a *single* ``read_batch`` and all recovered real blocks are
        opened with a *single*
        :meth:`~repro.oram.crypto.CipherSuite.open_blocks` call — the
        per-slot bookkeeping (cache fills, :class:`PhysicalRead` descriptors,
        stats) is unchanged from the historical one-call-per-slot form.
        Returns ``{block_id: value}`` for the real blocks recovered.
        """
        cache = self._read_cache
        missing: List[SlotRead] = []
        for slot in slot_reads:
            if (slot.bucket_id, slot.version) in self._buffered_versions:
                continue
            key = slot.storage_key
            if key not in cache:
                cache[key] = None           # placeholder; filled below
                missing.append(slot)
        if missing:
            keys = [slot.storage_key for slot in missing]
            result = self.oram.storage.read_batch(keys, parallelism=1,
                                                  record_batch=False)
            for slot, key in zip(missing, keys):
                cache[key] = result.values.get(key)
                physical.append(PhysicalRead(
                    key=key, bucket_id=slot.bucket_id,
                    level=path_math.bucket_level(slot.bucket_id)))
            self.stats.physical_reads += len(missing)
            self.lifetime_stats.physical_reads += len(missing)

        fetched: Dict[int, bytes] = {}
        to_open: List[bytes] = []
        to_open_contexts: List[bytes] = []
        for slot in slot_reads:
            buffered = self._buffered_versions.get((slot.bucket_id, slot.version))
            if buffered is not None:
                self.stats.local_buffer_hits += 1
                if slot.expected_block is not None:
                    value = buffered.plain_contents.get(slot.expected_block)
                    if value is not None:
                        fetched[slot.expected_block] = value
                continue
            if slot.expected_block is None:
                continue
            blob = cache.get(slot.storage_key)
            if blob is None:
                continue
            to_open.append(blob)
            to_open_contexts.append(freshness_context(
                slot.bucket_id, slot.version, slot.slot_index))
        for block_id, value in self.oram.cipher.open_blocks(to_open,
                                                            to_open_contexts):
            if block_id is not None:
                fetched[block_id] = value
        return fetched

    def _drain_plan(self, plan: EvictionPlan, physical: List[PhysicalRead]) -> Dict[int, bytes]:
        """Fetch every slot of an eviction/reshuffle read phase."""
        return self._fetch_slots(plan.slot_reads, physical)

    def _buffer_rewrites(self, rewrites: Sequence[BucketRewrite],
                         physical: List[PhysicalRead]) -> None:
        """Buffer (or, if buffering is off, immediately apply) bucket rewrites."""
        del physical
        if self.buffer_writes:
            for rewrite in rewrites:
                if rewrite.bucket_id in self._buffered_rewrites:
                    self.stats.buffered_bucket_writes_saved += 1
                self._buffered_rewrites[rewrite.bucket_id] = rewrite
                self._buffered_versions[(rewrite.bucket_id, rewrite.version)] = rewrite
                self._rewrites_buffered_total += 1
            return
        # Immediate write-back (delayed visibility disabled).
        items: Dict[str, bytes] = {}
        slot_counts: Dict[int, int] = {}
        for rewrite in rewrites:
            items.update(rewrite.storage_items())
            slot_counts[rewrite.bucket_id] = len(rewrite.slot_payloads)
        if not items:
            return
        self.oram.storage.write_batch(items, parallelism=self.parallelism, record_batch=False)
        self.stats.physical_writes += len(items)
        self.lifetime_stats.physical_writes += len(items)
        schedule = simulate_parallel_write_batch(slot_counts, self.latency, self.parallelism,
                                                 self.cost_model,
                                                 encrypted=self._crypto_charged())
        self._charge_time(schedule.makespan_ms)
        self.stats.write_time_ms += schedule.makespan_ms

    def _run_maintenance(self, touched_buckets: Sequence[int],
                         physical: List[PhysicalRead]) -> None:
        """Early reshuffles for over-read buckets plus any due evict-path."""
        for bid in self.oram.buckets_needing_reshuffle(touched_buckets):
            plan = self.oram.plan_early_reshuffle(bid)
            fetched = self._drain_plan(plan, physical)
            rewrites = self.oram.complete_eviction(plan, fetched)
            self._buffer_rewrites(rewrites, physical)
            self.stats.early_reshuffles += 1
            self.lifetime_stats.early_reshuffles += 1

        while self.oram.access_count % self.oram.params.evict_rate == 0 and \
                self.oram.access_count > self.oram.eviction_count * self.oram.params.evict_rate:
            plan = self.oram.plan_eviction()
            fetched = self._drain_plan(plan, physical)
            rewrites = self.oram.complete_eviction(plan, fetched)
            self._buffer_rewrites(rewrites, physical)
            self.stats.evictions += 1
            self.lifetime_stats.evictions += 1

    # ------------------------------------------------------------------ #
    # Logical batch execution
    # ------------------------------------------------------------------ #
    def execute_read_batch(self, block_ids: Sequence[Optional[int]],
                           batch_size: Optional[int] = None) -> Dict[int, Optional[bytes]]:
        """Execute one fixed-size read batch.

        ``block_ids`` holds the logical block ids to read; ``None`` entries
        are padding (dummy path reads).  The list is padded (or validated)
        to ``batch_size``.  Returns the values for all real block ids.
        """
        requests: List[Optional[int]] = list(block_ids)
        if batch_size is not None:
            if len(requests) > batch_size:
                raise ValueError(
                    f"read batch of {len(requests)} exceeds configured size {batch_size}")
            requests.extend([None] * (batch_size - len(requests)))

        physical: List[PhysicalRead] = []
        results: Dict[int, Optional[bytes]] = {}
        trace = getattr(self.oram.storage, "trace", None)
        if trace is not None:
            trace.begin_batch("read", self.oram.clock.now_ms, len(requests))

        for block_id in requests:
            self.oram.access_count += 1
            self.stats.logical_reads += 1
            self.lifetime_stats.logical_reads += 1

            stash_entry = self.oram.stash.get(block_id) if block_id is not None else None
            if (stash_entry is not None
                    and stash_entry.reason is StashReason.LOGICAL_ACCESS):
                # Obladi §6.3: blocks in the stash due to a logical access are
                # mapped to independent uniform paths; serving them locally
                # does not skew the adversary-visible path distribution.
                results[block_id] = stash_entry.value
                self.stats.stash_hits += 1
                self.lifetime_stats.stash_hits += 1
                self._run_maintenance([], physical)
                continue

            plan: PathReadPlan = self.oram.plan_path_read(block_id)
            fetched = self._fetch_slots(plan.slot_reads, physical)

            if block_id is not None:
                if block_id in fetched:
                    value: Optional[bytes] = fetched.pop(block_id)
                elif stash_entry is not None:
                    value = stash_entry.value
                    self.stats.stash_hits += 1
                else:
                    value = None
                results[block_id] = value
                if value is not None and plan.new_leaf is not None:
                    self.oram.stash.put(block_id, plan.new_leaf, value,
                                        StashReason.LOGICAL_ACCESS)

            # Stray real blocks recovered from shared slots rejoin the stash.
            for bid, val in fetched.items():
                if bid not in self.oram.stash:
                    leaf = self.oram.position_map.lookup_or_assign(bid)
                    self.oram.stash.put(bid, leaf, val, StashReason.EVICTION_RESIDUE)

            touched = [s.bucket_id for s in plan.slot_reads]
            self._run_maintenance(touched, physical)

        schedule = simulate_parallel_read_batch(physical, self.latency, self.parallelism,
                                                self.cost_model,
                                                encrypted=self._crypto_charged())
        self._charge_time(schedule.makespan_ms)
        self.stats.read_time_ms += schedule.makespan_ms
        return results

    def execute_write_batch(self, items: Dict[int, bytes],
                            batch_size: Optional[int] = None) -> None:
        """Register the epoch's logical writes (dummiless) and run maintenance.

        The values land in the stash mapped to fresh random leaves; only the
        evictions they trigger produce physical traffic, and that traffic is
        buffered until :meth:`flush_epoch`.
        """
        physical: List[PhysicalRead] = []
        count = 0
        for block_id in sorted(items):
            value = items[block_id]
            self.oram.access_count += 1
            count += 1
            self.stats.logical_writes += 1
            self.lifetime_stats.logical_writes += 1
            self.oram.forget_tree_copy(block_id)
            new_leaf = self.oram.position_map.remap(block_id)
            self.oram.stash.put(block_id, new_leaf, value, StashReason.LOGICAL_ACCESS)
            self._run_maintenance([], physical)

        # Padding writes only advance the eviction schedule.
        if batch_size is not None and count < batch_size:
            for _ in range(batch_size - count):
                self.oram.access_count += 1
                self._run_maintenance([], physical)

        if physical:
            schedule = simulate_parallel_read_batch(physical, self.latency, self.parallelism,
                                                    self.cost_model,
                                                    encrypted=self._crypto_charged())
            self._charge_time(schedule.makespan_ms)
            self.stats.read_time_ms += schedule.makespan_ms

    # ------------------------------------------------------------------ #
    # Epoch flush
    # ------------------------------------------------------------------ #
    def pending_bucket_writes(self) -> int:
        """Number of distinct buckets waiting to be written back."""
        return len(self._buffered_rewrites)

    def flush_epoch(self) -> float:
        """Write all buffered bucket rewrites as one parallel batch.

        Returns the simulated duration of the write-back.  Only the latest
        buffered version of each bucket is written (write deduplication);
        intermediate versions were never sent to the server.
        """
        if not self._buffered_rewrites:
            self._read_cache.clear()
            self._buffered_versions.clear()
            return 0.0

        items: Dict[str, bytes] = {}
        slot_counts: Dict[int, int] = {}
        for bucket_id, rewrite in sorted(self._buffered_rewrites.items()):
            items.update(rewrite.storage_items())
            slot_counts[bucket_id] = len(rewrite.slot_payloads)

        trace = getattr(self.oram.storage, "trace", None)
        if trace is not None:
            trace.begin_batch("write", self.oram.clock.now_ms, len(items))
        self.oram.storage.write_batch(items, parallelism=self.parallelism, record_batch=False)
        self.stats.physical_writes += len(items)
        self.lifetime_stats.physical_writes += len(items)

        schedule = simulate_parallel_write_batch(slot_counts, self.latency, self.parallelism,
                                                 self.cost_model,
                                                 encrypted=self._crypto_charged())
        self._charge_time(schedule.makespan_ms)
        self.stats.write_time_ms += schedule.makespan_ms

        self._buffered_rewrites.clear()
        self._buffered_versions.clear()
        self._read_cache.clear()
        return schedule.makespan_ms
