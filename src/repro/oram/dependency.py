"""Dependency analysis for the parallel ORAM executor.

Section 7 of the paper parallelises Ring ORAM using multilevel
serializability: two physical operations must be ordered only if they
conflict, and conflicts are narrow —

* reads to the *same bucket* between reshuffles always touch distinct
  physical slots, so their data accesses never conflict; only their updates
  to the bucket's metadata (access counter, valid map) must be serialised;
* every path read touches the root, so metadata updates near the top of the
  tree form the dependency chains that ultimately bound parallel speedup
  (Figures 10a/10b);
* evictions conflict with reads on the buckets of the evicted path.

The reproduction models the metadata serialisation explicitly: for each
bucket we chain the metadata sub-operations of every physical access that
touches it, while the (much more expensive) network fetches of distinct
slots proceed in parallel.  The resulting DAG is handed to
:class:`repro.sim.scheduler.ParallelScheduler` to obtain the simulated
makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.latency import CpuCostModel, LatencyModel
from repro.sim.scheduler import ParallelScheduler, ScheduledOp, ScheduleResult


@dataclass
class PhysicalRead:
    """One physical slot fetch, tagged with the buckets whose metadata it touches."""

    key: str
    bucket_id: int
    level: int


@dataclass
class DependencyGraphBuilder:
    """Builds the (metadata-chain + fetch) DAG for one physical read batch.

    For every physical read we create two scheduler operations:

    1. a *metadata* op (small CPU cost) chained after the previous metadata
       op on the same bucket — this is the per-bucket serialisation required
       by multilevel serializability;
    2. a *fetch* op (one storage round trip) depending only on its own
       metadata op — fetches to different slots never conflict.

    Writes are not modelled here: Obladi defers all bucket writes to the end
    of the epoch, where they form a single deduplicated parallel write batch.
    """

    latency: LatencyModel
    cost_model: CpuCostModel = field(default_factory=CpuCostModel)
    sequential_metadata: bool = True

    def build_read_ops(self, reads: Sequence[PhysicalRead],
                       encrypted: bool = True) -> List[ScheduledOp]:
        ops: List[ScheduledOp] = []
        last_meta_for_bucket: Dict[int, int] = {}
        next_id = 0
        meta_cost = (self.cost_model.metadata_per_block_ms
                     + self.cost_model.coordination_per_block_ms)
        fetch_cost = self.latency.read_rtt_ms + self.latency.per_request_server_ms
        crypto_cost = self.cost_model.crypto_per_block_ms if encrypted else 0.0

        for read in reads:
            deps: Tuple[int, ...] = ()
            if self.sequential_metadata and read.bucket_id in last_meta_for_bucket:
                deps = (last_meta_for_bucket[read.bucket_id],)
            meta_op = ScheduledOp(op_id=next_id, duration_ms=meta_cost, deps=deps,
                                  tag=f"meta:{read.bucket_id}")
            last_meta_for_bucket[read.bucket_id] = next_id
            next_id += 1
            fetch_op = ScheduledOp(op_id=next_id, duration_ms=fetch_cost + crypto_cost,
                                   deps=(meta_op.op_id,), tag=f"fetch:{read.key}")
            next_id += 1
            ops.extend([meta_op, fetch_op])
        return ops

    def build_write_ops(self, bucket_slot_counts: Dict[int, int],
                        encrypted: bool = True,
                        start_id: int = 0) -> List[ScheduledOp]:
        """Operations for the end-of-epoch write-back of deduplicated buckets.

        Each bucket write is one storage round trip carrying its slots, plus
        the CPU cost of re-encrypting every slot; different buckets are
        independent.
        """
        ops: List[ScheduledOp] = []
        next_id = start_id
        crypto_cost = self.cost_model.crypto_per_block_ms if encrypted else 0.0
        for bucket_id, slot_count in sorted(bucket_slot_counts.items()):
            duration = (self.latency.write_rtt_ms
                        + self.latency.per_request_server_ms * slot_count
                        + crypto_cost * slot_count
                        + self.cost_model.metadata_per_block_ms * slot_count)
            ops.append(ScheduledOp(op_id=next_id, duration_ms=duration,
                                   tag=f"write:{bucket_id}"))
            next_id += 1
        return ops


def simulate_parallel_read_batch(reads: Sequence[PhysicalRead], latency: LatencyModel,
                                 parallelism: int, cost_model: Optional[CpuCostModel] = None,
                                 encrypted: bool = True) -> ScheduleResult:
    """Simulated schedule of a parallel physical read batch.

    The makespan is the larger of

    * the list-scheduled DAG makespan (round trips overlapped up to the
      in-flight cap, per-bucket metadata serialised),
    * the *coordinator floor*: the per-block metadata, coordination and
      crypto work, which the proxy's coordination layer serialises — this is
      what makes parallel execution a net loss on the zero-latency ``dummy``
      backend (paper Figure 10a), and
    * the *dispatch floor*: the serial per-request cost of putting physical
      requests on the wire, which caps the achievable speedup on remote
      backends as batch sizes grow (Figure 10b).
    """
    cm = cost_model or CpuCostModel()
    builder = DependencyGraphBuilder(latency=latency, cost_model=cm)
    ops = builder.build_read_ops(reads, encrypted=encrypted)
    scheduler = ParallelScheduler(latency.effective_parallelism(parallelism))
    result = scheduler.schedule(ops)
    per_block_cpu = (cm.metadata_per_block_ms + cm.coordination_per_block_ms
                     + (cm.crypto_per_block_ms if encrypted else 0.0))
    cpu_floor = len(reads) * per_block_cpu
    dispatch_floor = len(reads) * latency.dispatch_ms_per_request
    result.makespan_ms = max(result.makespan_ms, cpu_floor, dispatch_floor)
    return result


def simulate_sequential_read_batch(reads: Sequence[PhysicalRead], latency: LatencyModel,
                                   cost_model: Optional[CpuCostModel] = None,
                                   encrypted: bool = True) -> float:
    """Simulated duration of the same batch executed strictly sequentially.

    Sequential Ring ORAM pays one round trip per slot and the per-block CPU
    costs, with no coordination overhead (Figure 10a's "Sequential" series).
    """
    cm = cost_model or CpuCostModel()
    per_block = (latency.read_rtt_ms + latency.per_request_server_ms
                 + cm.sequential_block_cost_ms(encrypted))
    return per_block * len(reads)


def simulate_parallel_write_batch(bucket_slot_counts: Dict[int, int], latency: LatencyModel,
                                  parallelism: int,
                                  cost_model: Optional[CpuCostModel] = None,
                                  encrypted: bool = True) -> ScheduleResult:
    """Simulated schedule of the end-of-epoch deduplicated bucket write-back.

    Bucket writes are mutually independent, so the DAG is flat; the same
    coordinator and dispatch floors as the read path apply (the slots of each
    bucket must be re-encrypted and the requests serialised onto the wire).
    """
    cm = cost_model or CpuCostModel()
    builder = DependencyGraphBuilder(latency=latency, cost_model=cm)
    ops = builder.build_write_ops(bucket_slot_counts, encrypted=encrypted)
    scheduler = ParallelScheduler(latency.effective_parallelism(parallelism))
    result = scheduler.schedule(ops)
    total_slots = sum(bucket_slot_counts.values())
    per_slot_cpu = (cm.metadata_per_block_ms
                    + (cm.crypto_per_block_ms if encrypted else 0.0))
    cpu_floor = total_slots * per_slot_cpu
    dispatch_floor = len(bucket_slot_counts) * latency.dispatch_ms_per_request
    result.makespan_ms = max(result.makespan_ms, cpu_floor, dispatch_floor)
    return result
