"""Sequential Ring ORAM.

This module implements the Ring ORAM construction (Ren et al., 2015) that
Obladi builds on, split into *planning* (pure metadata decisions: which
physical slots to read, where evicted blocks land) and *execution* (issuing
storage requests).  The sequential :class:`RingOram` front end executes each
plan immediately, one request at a time — this is the "Sequential" baseline
of Figure 10a.  Obladi's epoch executor
(:class:`repro.oram.batch_executor.EpochBatchExecutor`) reuses the same
planner but batches, parallelises and defers the physical operations.

Storage layout
--------------
Each physical slot is stored under its own key::

    oram/<bucket_id>/v<version>/s/<slot_index>

so that a path read is ``L + 1`` single-slot reads (exactly what the server
observes in the paper) and a bucket rewrite is ``Z + S`` slot writes under a
*new* version — the copy-on-write shadow paging that recovery relies on.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.oram import path_math
from repro.oram.crypto import CipherSuite, freshness_context
from repro.oram.metadata import MetadataTable
from repro.oram.parameters import RingOramParameters
from repro.oram.position_map import PositionMap
from repro.oram.stash import Stash, StashReason
from repro.sim.clock import SimClock
from repro.sim.latency import CpuCostModel
from repro.storage.backend import StorageServer


class OramOp(enum.Enum):
    """Logical operation kinds accepted by the ORAM."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class OramAccess:
    """A logical request submitted to the ORAM."""

    op: OramOp
    block_id: int
    value: Optional[bytes] = None

    def __post_init__(self) -> None:
        if self.op is OramOp.WRITE and self.value is None:
            raise ValueError("write access requires a value")


@dataclass
class SlotRead:
    """One physical slot read planned for a path access or eviction."""

    bucket_id: int
    slot_index: int
    version: int
    expected_block: Optional[int]   # real block id expected there, None = dummy

    @property
    def storage_key(self) -> str:
        return slot_storage_key(self.bucket_id, self.version, self.slot_index)


@dataclass
class PathReadPlan:
    """Plan for one logical path read (real or padded dummy request)."""

    block_id: Optional[int]          # None = dummy request
    leaf: int
    slot_reads: List[SlotRead] = field(default_factory=list)
    served_from_stash: bool = False
    new_leaf: Optional[int] = None


@dataclass
class BucketRewrite:
    """A bucket's new contents, ready to be written out (copy-on-write)."""

    bucket_id: int
    version: int                              # version being written
    slot_payloads: Dict[int, bytes] = field(default_factory=dict)
    plain_contents: Dict[int, bytes] = field(default_factory=dict)

    def storage_items(self) -> Dict[str, bytes]:
        """Storage key/payload pairs for every slot of the new version."""
        return {
            slot_storage_key(self.bucket_id, self.version, idx): payload
            for idx, payload in self.slot_payloads.items()
        }


@dataclass
class EvictionPlan:
    """Plan for one evict-path (or early-reshuffle) operation."""

    kind: str                                   # "evict" or "reshuffle"
    eviction_index: int                         # value of G when planned
    leaf: int
    bucket_ids: List[int] = field(default_factory=list)
    slot_reads: List[SlotRead] = field(default_factory=list)


def slot_storage_key(bucket_id: int, version: int, slot_index: int) -> str:
    """Storage key of one physical slot of one bucket version."""
    return f"oram/{bucket_id}/v{version}/s/{slot_index}"


class RingOram:
    """Sequential Ring ORAM client.

    Parameters
    ----------
    params:
        Tree geometry and (Z, S, A) parameters.
    storage:
        The untrusted storage server.
    cipher:
        Cipher suite for sealing slots.  A fresh suite is created if omitted.
    clock:
        Shared simulated clock (storage requests advance it); optional.
    cost_model:
        CPU cost constants charged per physical block handled.
    seed:
        Seed for the ORAM's private RNG (position remapping, permutations),
        so tests are reproducible.
    dummiless_writes:
        Obladi's optimisation (§6.3): logical writes go straight to the stash
        without a physical path read.  Off by default so the plain Ring ORAM
        behaviour is available for baselines and tests.
    """

    def __init__(self, params: RingOramParameters, storage: StorageServer,
                 cipher: Optional[CipherSuite] = None,
                 clock: Optional[SimClock] = None,
                 cost_model: Optional[CpuCostModel] = None,
                 seed: Optional[int] = None,
                 dummiless_writes: bool = False,
                 charge_crypto: Optional[bool] = None) -> None:
        self.params = params
        self.storage = storage
        self.clock = clock if clock is not None else getattr(storage, "clock", SimClock())
        self.cost_model = cost_model if cost_model is not None else CpuCostModel()
        self.rng = random.Random(seed)
        self.cipher = cipher if cipher is not None else CipherSuite(
            block_size=params.block_size + 8)
        self.dummiless_writes = dummiless_writes
        # When set, overrides whether simulated crypto CPU cost is charged
        # (used by benchmarks that disable real encryption for speed but want
        # to model its cost).
        self.charge_crypto = charge_crypto

        self.position_map = PositionMap(params.num_leaves, rng=self.rng)
        self.metadata = MetadataTable(params.num_buckets, params.z_real,
                                      params.s_dummies, rng=self.rng)
        self.stash = Stash(capacity=0)

        self.access_count = 0          # logical accesses since the ORAM started
        self.eviction_count = 0        # G: number of evict-path operations issued
        self.stats_physical_reads = 0
        self.stats_physical_writes = 0
        self.stats_early_reshuffles = 0
        self.stats_stash_hits = 0

    # ------------------------------------------------------------------ #
    # Planning (pure metadata; shared with the batch executor)
    # ------------------------------------------------------------------ #
    def plan_path_read(self, block_id: Optional[int],
                       force_dummy_path: Optional[int] = None) -> PathReadPlan:
        """Plan the physical slot reads for one logical (or dummy) path read.

        Planning mutates client metadata: the touched slots are invalidated,
        per-bucket read counters advance, and a real block is remapped to a
        fresh leaf.  The physical reads *must* subsequently be issued (either
        immediately by :meth:`read`/:meth:`write` or by the batch executor),
        otherwise the bucket invariant bookkeeping would diverge from what
        the server observed.
        """
        if block_id is not None:
            leaf = self.position_map.lookup_or_assign(block_id)
        elif force_dummy_path is not None:
            leaf = force_dummy_path
        else:
            leaf = self.rng.randrange(self.params.num_leaves)

        plan = PathReadPlan(block_id=block_id, leaf=leaf)
        target_found_in_tree = False

        for bid in path_math.path_buckets(leaf, self.params.depth):
            meta = self.metadata.bucket(bid)
            slot_index: Optional[int] = None
            expected: Optional[int] = None
            if block_id is not None and not target_found_in_tree:
                slot_index = meta.slot_of_block(block_id)
                if slot_index is not None:
                    expected = block_id
                    target_found_in_tree = True
            if slot_index is None:
                dummies = meta.valid_dummy_slots()
                if dummies:
                    slot_index = self.rng.choice(dummies)
                else:
                    # No valid dummy left: fall back to any valid slot (the
                    # bucket will be early-reshuffled right after this path).
                    valid = [i for i, s in enumerate(meta.slots) if s.valid]
                    if not valid:
                        # Bucket fully consumed; early reshuffle will restore
                        # it.  Read slot 0 of the current version: the server
                        # cannot distinguish this from any other slot choice.
                        slot_index = 0
                        plan.slot_reads.append(SlotRead(bid, slot_index, meta.version, None))
                        meta.reads_since_write += 1
                        self.metadata.mark_dirty(bid)
                        continue
                    slot_index = self.rng.choice(valid)
                    expected = meta.slots[slot_index].block_id

            meta.invalidate(slot_index)
            meta.reads_since_write += 1
            self.metadata.mark_dirty(bid)
            plan.slot_reads.append(SlotRead(bid, slot_index, meta.version, expected))

        if block_id is not None:
            plan.new_leaf = self.position_map.remap(block_id)
            if not target_found_in_tree and block_id in self.stash:
                plan.served_from_stash = True
        return plan

    def plan_eviction(self) -> EvictionPlan:
        """Plan the read phase of the next deterministic evict-path."""
        g = self.eviction_count
        leaf = path_math.eviction_path(g, self.params.depth)
        plan = EvictionPlan(kind="evict", eviction_index=g, leaf=leaf)
        plan.bucket_ids = path_math.path_buckets(leaf, self.params.depth)
        for bid in plan.bucket_ids:
            plan.slot_reads.extend(self._plan_bucket_drain(bid))
        self.eviction_count += 1
        return plan

    def plan_early_reshuffle(self, bucket_id: int) -> EvictionPlan:
        """Plan an early reshuffle of one over-read bucket."""
        plan = EvictionPlan(kind="reshuffle", eviction_index=self.eviction_count,
                            leaf=-1, bucket_ids=[bucket_id])
        plan.slot_reads = self._plan_bucket_drain(bucket_id)
        self.stats_early_reshuffles += 1
        return plan

    def _plan_bucket_drain(self, bucket_id: int) -> List[SlotRead]:
        """Slot reads that pull every remaining valid real block of a bucket.

        Ring ORAM's eviction read phase reads exactly ``Z`` slots per bucket
        (remaining valid reals padded with valid dummies) so the server
        learns nothing about the bucket's occupancy.
        """
        meta = self.metadata.bucket(bucket_id)
        reads: List[SlotRead] = []
        real_slots = meta.valid_real_slots()
        for idx in real_slots:
            reads.append(SlotRead(bucket_id, idx, meta.version, meta.slots[idx].block_id))
        dummy_needed = max(0, self.params.z_real - len(real_slots))
        dummies = meta.valid_dummy_slots()
        self.rng.shuffle(dummies)
        for idx in dummies[:dummy_needed]:
            reads.append(SlotRead(bucket_id, idx, meta.version, None))
        return reads

    def complete_eviction(self, plan: EvictionPlan,
                          fetched: Dict[int, bytes]) -> List[BucketRewrite]:
        """Finish an eviction: place stash blocks and produce bucket rewrites.

        ``fetched`` maps block ids recovered by the read phase to their
        plaintext values.  Fetched blocks join the stash first (exactly as in
        the sequential algorithm), then the write phase greedily places every
        stash block into the deepest bucket on the target path that
        intersects the block's assigned path and still has room.
        """
        for block_id, value in fetched.items():
            leaf = self.position_map.lookup_or_assign(block_id)
            if block_id not in self.stash:
                self.stash.put(block_id, leaf, value, StashReason.EVICTION_RESIDUE)

        rewrites: List[BucketRewrite] = []
        if plan.kind == "reshuffle":
            for bid in plan.bucket_ids:
                rewrites.append(self._rewrite_bucket_from_stash(bid, restrict_to_bucket=True))
            return rewrites

        # Ordinary evict-path: fill buckets from the leaf upwards so blocks
        # land as deep as possible.  The stash scan is batched: every entry's
        # deepest common level with the target path comes from one
        # vectorised pass instead of a per-entry bit walk.
        placements: Dict[int, List[Tuple[int, bytes]]] = {bid: [] for bid in plan.bucket_ids}
        for entry, common in self.stash.entries_with_common_levels(
                plan.leaf, self.params.depth):
            placed = False
            for level in range(common, -1, -1):
                bid = plan.bucket_ids[level]
                if len(placements[bid]) < self.params.z_real:
                    placements[bid].append((entry.block_id, entry.value))
                    placed = True
                    break
            if placed:
                self.stash.remove(entry.block_id)

        for bid in plan.bucket_ids:
            rewrites.append(self._build_rewrite(bid, placements[bid]))

        # Anything still in the stash had no room: mark it as eviction
        # residue so the caching optimisation will not serve it silently.
        for block_id in list(self.stash.iter_ids()):
            self.stash.mark_residue(block_id)
        return rewrites

    def _rewrite_bucket_from_stash(self, bucket_id: int, restrict_to_bucket: bool) -> BucketRewrite:
        """Early reshuffle: rewrite one bucket with the blocks it already held."""
        del restrict_to_bucket
        level = path_math.bucket_level(bucket_id)
        index = path_math.bucket_index_in_level(bucket_id)
        placements: List[Tuple[int, bytes]] = []
        for entry in self.stash.entries():
            if len(placements) >= self.params.z_real:
                break
            leaf_prefix = entry.leaf >> (self.params.depth - level) if level <= self.params.depth else -1
            if level == 0 or leaf_prefix == index:
                placements.append((entry.block_id, entry.value))
                self.stash.remove(entry.block_id)
        return self._build_rewrite(bucket_id, placements)

    def _build_rewrite(self, bucket_id: int, contents: List[Tuple[int, bytes]]) -> BucketRewrite:
        """Produce the sealed slot payloads for a bucket's next version.

        The whole bucket — ``Z + S`` real and dummy slots — is sealed with
        one :meth:`~repro.oram.crypto.CipherSuite.seal_blocks` call instead
        of a cipher call per slot; bucket rewrites dominate the hot path.
        """
        meta = self.metadata.rewrite_bucket(bucket_id, contents)
        version = meta.version
        by_block = dict(contents)
        entries = [
            (slot.block_id,
             by_block[slot.block_id] if slot.block_id is not None else b"",
             freshness_context(bucket_id, version, idx))
            for idx, slot in enumerate(meta.slots)]
        sealed = self.cipher.seal_blocks(entries)
        return BucketRewrite(bucket_id=bucket_id, version=version,
                             slot_payloads=dict(enumerate(sealed)),
                             plain_contents=dict(by_block))

    def buckets_needing_reshuffle(self, bucket_ids: Sequence[int]) -> List[int]:
        """Subset of ``bucket_ids`` that must be early-reshuffled."""
        due = []
        for bid in bucket_ids:
            if self.metadata.bucket(bid).needs_reshuffle(self.params.s_dummies):
                due.append(bid)
        return due

    # ------------------------------------------------------------------ #
    # Physical execution (sequential mode)
    # ------------------------------------------------------------------ #
    def _crypto_charged(self) -> bool:
        """Whether simulated per-block crypto cost is charged."""
        if self.charge_crypto is not None:
            return self.charge_crypto
        return self.cipher.enabled

    def _decrypt_slot(self, slot: SlotRead, blob: Optional[bytes]) -> Optional[Tuple[int, bytes]]:
        """Decrypt one fetched slot; returns (block_id, value) for real blocks."""
        self.clock.advance(self.cost_model.sequential_block_cost_ms(self._crypto_charged()))
        if blob is None or slot.expected_block is None:
            return None
        context = freshness_context(slot.bucket_id, slot.version, slot.slot_index)
        block_id, value = self.cipher.open_block(blob, context)
        if block_id is None:
            return None
        return block_id, value

    def _execute_slot_reads(self, slot_reads: Sequence[SlotRead],
                            parallelism: int = 1) -> Dict[int, bytes]:
        """Issue the physical reads and return {block_id: plaintext value}."""
        keys = [s.storage_key for s in slot_reads]
        result = self.storage.read_batch(keys, parallelism=parallelism)
        self.stats_physical_reads += len(keys)
        fetched: Dict[int, bytes] = {}
        for slot in slot_reads:
            blob = result.values.get(slot.storage_key)
            opened = self._decrypt_slot(slot, blob)
            if opened is not None:
                fetched[opened[0]] = opened[1]
        return fetched

    def _write_rewrites(self, rewrites: Sequence[BucketRewrite],
                        parallelism: int = 1) -> None:
        """Write new bucket versions to storage."""
        items: Dict[str, bytes] = {}
        for rewrite in rewrites:
            items.update(rewrite.storage_items())
        if items:
            self.storage.write_batch(items, parallelism=parallelism)
            self.stats_physical_writes += len(items)
            per_block = self.cost_model.sequential_block_cost_ms(self._crypto_charged())
            self.clock.advance(per_block * len(items))

    def _maybe_evict(self) -> None:
        """Run the deterministic evict-path if this access crossed a boundary."""
        if self.access_count % self.params.evict_rate != 0:
            return
        plan = self.plan_eviction()
        fetched = self._execute_slot_reads(plan.slot_reads)
        rewrites = self.complete_eviction(plan, fetched)
        self._write_rewrites(rewrites)

    def _maybe_reshuffle(self, bucket_ids: Sequence[int]) -> None:
        for bid in self.buckets_needing_reshuffle(bucket_ids):
            plan = self.plan_early_reshuffle(bid)
            fetched = self._execute_slot_reads(plan.slot_reads)
            rewrites = self.complete_eviction(plan, fetched)
            self._write_rewrites(rewrites)

    # ------------------------------------------------------------------ #
    # Public logical interface
    # ------------------------------------------------------------------ #
    def access(self, request: OramAccess) -> Optional[bytes]:
        """Execute one logical access sequentially and return the read value."""
        if request.op is OramOp.WRITE and self.dummiless_writes:
            return self._write_dummiless(request.block_id, request.value or b"")
        return self._access_with_path_read(request)

    def read(self, block_id: int) -> Optional[bytes]:
        """Logical read; returns ``None`` if the block has never been written."""
        return self.access(OramAccess(OramOp.READ, block_id))

    def write(self, block_id: int, value: bytes) -> None:
        """Logical write."""
        self.access(OramAccess(OramOp.WRITE, block_id, value))

    def _access_with_path_read(self, request: OramAccess) -> Optional[bytes]:
        self.access_count += 1
        stash_entry = self.stash.get(request.block_id)
        plan = self.plan_path_read(request.block_id)
        fetched = self._execute_slot_reads(plan.slot_reads)

        value: Optional[bytes]
        if request.block_id in fetched:
            value = fetched.pop(request.block_id)
        elif stash_entry is not None:
            value = stash_entry.value
            self.stats_stash_hits += 1
        else:
            value = None

        if request.op is OramOp.WRITE:
            value = request.value

        if value is not None:
            assert plan.new_leaf is not None
            self.stash.put(request.block_id, plan.new_leaf, value, StashReason.LOGICAL_ACCESS)

        # Any other real blocks accidentally recovered rejoin the stash too.
        for bid, val in fetched.items():
            leaf = self.position_map.lookup_or_assign(bid)
            if bid not in self.stash:
                self.stash.put(bid, leaf, val, StashReason.EVICTION_RESIDUE)

        touched = [s.bucket_id for s in plan.slot_reads]
        self._maybe_reshuffle(touched)
        self._maybe_evict()
        return value if request.op is OramOp.READ else None

    def _write_dummiless(self, block_id: int, value: bytes) -> None:
        """Obladi's dummiless write: stash insertion, no physical path read.

        The access still counts toward the eviction schedule so the stash
        bound is preserved (paper §6.3).
        """
        self.access_count += 1
        self.forget_tree_copy(block_id)
        new_leaf = self.position_map.remap(block_id)
        self.stash.put(block_id, new_leaf, value, StashReason.LOGICAL_ACCESS)
        self._maybe_evict()

    def forget_tree_copy(self, block_id: int) -> None:
        """Drop the proxy's record of a block's in-tree copy.

        A normal path read removes a block from the tree (its slot is
        invalidated and the block moves to the stash), so rewriting it never
        leaves a stale copy behind.  A *dummiless* write skips the path read,
        so the proxy must explicitly forget any copy still recorded in bucket
        metadata — otherwise a later eviction could drain the stale value and
        resurrect it over the new one.  This touches only client-side
        metadata; the server-side ciphertext stays where it is and remains
        indistinguishable from any other slot.
        """
        leaf = self.position_map.lookup(block_id)
        if leaf is None:
            return
        for bid in path_math.path_buckets(leaf, self.params.depth):
            meta = self.metadata.bucket(bid)
            changed = False
            for slot in meta.slots:
                if slot.block_id == block_id:
                    # Clear every recorded copy on the path, valid or not.
                    # Invalidated slots keep their block id until the bucket
                    # is rewritten, so stopping at the first match could hit
                    # a consumed slot near the root (the root is on *every*
                    # path) and leave the live copy deeper down — a later
                    # bucket drain would then resurrect the stale value over
                    # the freshly written one (a lost update).
                    slot.block_id = None
                    changed = True
            if changed:
                self.metadata.mark_dirty(bid)
        # The block may only exist in the stash (or nowhere yet); nothing to do.

    # ------------------------------------------------------------------ #
    # Bulk loading
    # ------------------------------------------------------------------ #
    def bulk_load(self, blocks: Dict[int, bytes]) -> None:
        """Load an initial dataset directly into the tree.

        Blocks are assigned random leaves and greedily packed into the
        deepest bucket on their path with room, leaf level first; overflow
        lands in the stash.  Bucket versions advance exactly once, so the
        resulting server state is indistinguishable from a tree that was
        filled through the normal protocol (every slot is a fresh
        ciphertext).
        """
        ordered = sorted(blocks.items())
        # Assign leaves first (one RNG draw per block, in block-id order —
        # exactly the sequential behaviour), then compute every root-to-leaf
        # path in one vectorised sweep.
        leaves = [self.position_map.lookup_or_assign(block_id)
                  for block_id, _ in ordered]
        paths = path_math.path_buckets_many(leaves, self.params.depth)
        paths = paths.tolist() if hasattr(paths, "tolist") else paths

        placements: Dict[int, List[Tuple[int, bytes]]] = {}
        for (block_id, value), leaf, path in zip(ordered, leaves, paths):
            placed = False
            for bid in reversed(path):
                bucket_load = placements.setdefault(bid, [])
                if len(bucket_load) < self.params.z_real:
                    bucket_load.append((block_id, value))
                    placed = True
                    break
            if not placed:
                self.stash.put(block_id, leaf, value, StashReason.EVICTION_RESIDUE)

        rewrites = [self._build_rewrite(bid, contents)
                    for bid, contents in sorted(placements.items())]
        self._write_rewrites(rewrites, parallelism=64)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stash_size(self) -> int:
        return len(self.stash)

    def physical_request_count(self) -> int:
        return self.stats_physical_reads + self.stats_physical_writes
