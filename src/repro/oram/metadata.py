"""Client-side bucket metadata: permutations, valid bits, write versions.

Ring ORAM keeps, for every bucket, a record of which physical slot holds
which real block (or a dummy), which slots have already been read since the
bucket was last written (*invalid* slots), and how many times the bucket has
been written.  The server stores only ciphertexts; all of this metadata lives
at the proxy and must therefore be checkpointed for durability (paper §8):
the permutation map encrypted, the valid/invalid map in the clear (the set of
slots read is public information).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


@dataclass
class SlotInfo:
    """One physical slot of a bucket, as known to the proxy."""

    block_id: Optional[int]   # None = dummy slot
    valid: bool = True        # becomes False once the slot has been read


@dataclass
class BucketMeta:
    """Proxy-side metadata for one bucket."""

    bucket_id: int
    slots: List[SlotInfo] = field(default_factory=list)
    reads_since_write: int = 0
    version: int = 0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def slot_of_block(self, block_id: int) -> Optional[int]:
        """Physical index of the valid slot holding ``block_id``, if any."""
        for idx, slot in enumerate(self.slots):
            if slot.block_id == block_id and slot.valid:
                return idx
        return None

    def valid_dummy_slots(self) -> List[int]:
        """Indices of valid dummy slots."""
        return [i for i, s in enumerate(self.slots) if s.block_id is None and s.valid]

    def valid_real_slots(self) -> List[int]:
        """Indices of valid slots holding real blocks."""
        return [i for i, s in enumerate(self.slots) if s.block_id is not None and s.valid]

    def real_block_ids(self) -> List[int]:
        """Block ids of all real blocks recorded in the bucket (valid or not)."""
        return [s.block_id for s in self.slots if s.block_id is not None]

    def valid_real_block_ids(self) -> List[int]:
        """Block ids of real blocks whose slots are still valid (unread)."""
        return [s.block_id for s in self.slots if s.block_id is not None and s.valid]

    def invalidate(self, slot_index: int) -> None:
        """Mark a slot as read; reading it again before a rewrite is a bug."""
        slot = self.slots[slot_index]
        if not slot.valid:
            raise ValueError(
                f"slot {slot_index} of bucket {self.bucket_id} read twice between reshuffles"
            )
        slot.valid = False

    def needs_reshuffle(self, s_dummies: int) -> bool:
        """Whether the bucket must be reshuffled before it can serve more reads.

        Ring ORAM triggers an *early reshuffle* once a bucket has been
        touched ``S`` times since its last write: at that point it may have
        no valid dummies left to serve further accesses obliviously.
        """
        return self.reads_since_write >= s_dummies

    # ------------------------------------------------------------------ #
    # Serialisation (checkpointing)
    # ------------------------------------------------------------------ #
    def to_row(self) -> Tuple[int, List[Optional[int]], List[bool], int, int]:
        return (
            self.bucket_id,
            [s.block_id for s in self.slots],
            [s.valid for s in self.slots],
            self.reads_since_write,
            self.version,
        )

    @classmethod
    def from_row(cls, row) -> "BucketMeta":
        bucket_id, block_ids, valids, reads, version = row
        slots = [SlotInfo(block_id=b, valid=v) for b, v in zip(block_ids, valids)]
        return cls(bucket_id=bucket_id, slots=slots,
                   reads_since_write=reads, version=version)


class MetadataTable:
    """All per-bucket metadata for one ORAM tree."""

    def __init__(self, num_buckets: int, z_real: int, s_dummies: int,
                 rng: Optional[random.Random] = None) -> None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be positive")
        self.num_buckets = num_buckets
        self.z_real = z_real
        self.s_dummies = s_dummies
        self._rng = rng if rng is not None else random.Random()
        self._buckets: Dict[int, BucketMeta] = {}
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def bucket(self, bucket_id: int) -> BucketMeta:
        """Metadata for ``bucket_id``, creating an all-dummy layout on first use."""
        if not 0 <= bucket_id < self.num_buckets:
            raise ValueError(f"bucket id {bucket_id} out of range")
        meta = self._buckets.get(bucket_id)
        if meta is None:
            meta = self._fresh_bucket(bucket_id, contents=[])
            self._buckets[bucket_id] = meta
            self._dirty.add(bucket_id)
        return meta

    def mark_dirty(self, bucket_id: int) -> None:
        self._dirty.add(bucket_id)

    def _fresh_bucket(self, bucket_id: int, contents: List[Tuple[int, bytes]]) -> BucketMeta:
        """Build a freshly permuted bucket layout holding ``contents`` block ids."""
        if len(contents) > self.z_real:
            raise ValueError(
                f"bucket {bucket_id} asked to hold {len(contents)} blocks, Z={self.z_real}"
            )
        layout: List[Optional[int]] = [bid for bid, _ in contents]
        layout.extend([None] * (self.z_real - len(contents)))   # empty real slots
        layout.extend([None] * self.s_dummies)                  # dummy slots
        self._rng.shuffle(layout)
        slots = [SlotInfo(block_id=bid, valid=True) for bid in layout]
        return BucketMeta(bucket_id=bucket_id, slots=slots)

    def rewrite_bucket(self, bucket_id: int, contents: List[Tuple[int, bytes]]) -> BucketMeta:
        """Replace a bucket's layout after an eviction / reshuffle write.

        Returns the new metadata; the version counter is advanced and the
        read counter reset, matching a physical rewrite of every slot.
        """
        old = self.bucket(bucket_id)
        fresh = self._fresh_bucket(bucket_id, contents)
        fresh.version = old.version + 1
        self._buckets[bucket_id] = fresh
        self._dirty.add(bucket_id)
        return fresh

    def buckets_present(self) -> List[int]:
        return sorted(self._buckets)

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #
    def dirty_buckets(self) -> List[int]:
        return sorted(self._dirty)

    def clear_dirty(self) -> None:
        self._dirty.clear()

    def serialize_full(self) -> bytes:
        rows = [self._buckets[bid].to_row() for bid in sorted(self._buckets)]
        payload = {
            "num_buckets": self.num_buckets,
            "z": self.z_real,
            "s": self.s_dummies,
            "rows": rows,
        }
        return json.dumps(payload).encode("utf-8")

    def serialize_delta(self) -> bytes:
        rows = [self._buckets[bid].to_row() for bid in self.dirty_buckets()
                if bid in self._buckets]
        return json.dumps({"rows": rows}).encode("utf-8")

    @classmethod
    def deserialize_full(cls, blob: bytes,
                         rng: Optional[random.Random] = None) -> "MetadataTable":
        payload = json.loads(blob.decode("utf-8"))
        table = cls(payload["num_buckets"], payload["z"], payload["s"], rng=rng)
        for row in payload["rows"]:
            meta = BucketMeta.from_row(row)
            table._buckets[meta.bucket_id] = meta
        table.clear_dirty()
        return table

    def apply_delta(self, blob: bytes) -> int:
        payload = json.loads(blob.decode("utf-8"))
        for row in payload["rows"]:
            meta = BucketMeta.from_row(row)
            self._buckets[meta.bucket_id] = meta
        return len(payload["rows"])

    def serialize_valid_map(self, bucket_ids: Optional[List[int]] = None) -> bytes:
        """The valid/invalid map (stored unencrypted, per the paper).

        ``bucket_ids`` restricts the serialisation to a subset (the buckets
        dirtied this epoch) so that delta checkpoints stay proportional to
        the epoch's work rather than to the whole tree.
        """
        if bucket_ids is None:
            selected = self._buckets.items()
        else:
            selected = ((bid, self._buckets[bid]) for bid in bucket_ids
                        if bid in self._buckets)
        rows = {str(bid): [s.valid for s in meta.slots] for bid, meta in selected}
        return json.dumps(rows, sort_keys=True).encode("utf-8")

    def apply_valid_map(self, blob: bytes) -> None:
        rows = json.loads(blob.decode("utf-8"))
        for bid_str, valids in rows.items():
            bid = int(bid_str)
            meta = self._buckets.get(bid)
            if meta is None or len(meta.slots) != len(valids):
                continue
            for slot, valid in zip(meta.slots, valids):
                slot.valid = bool(valid)
