"""The proxy's per-epoch version cache.

The version cache (paper Figure 4/§6.2) buffers, for the duration of one
epoch:

* *base values* — the committed state of keys fetched from the ORAM by this
  epoch's read batches (or already present in the ORAM stash from a logical
  access), and
* *epoch versions* — uncommitted versions created by the epoch's
  transactions, managed by MVTSO's version chains.

Reads are served from the cache whenever possible; only keys whose base
value is unknown require an ORAM read batch slot.  At the end of the epoch
the latest committed version of every written key forms the write batch.

On a sharded proxy tier the cache's base values are owned per worker slice
(:class:`repro.proxytier.ShardedVersionCache`; ``docs/ARCHITECTURE.md`` —
"Distributed proxy tier") with unchanged semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.concurrency.versions import VersionStore


@dataclass
class VersionCache:
    """Epoch-scoped cache of base values plus MVTSO version chains."""

    store: VersionStore = field(default_factory=VersionStore)
    _base_values: Dict[str, Optional[bytes]] = field(default_factory=dict)
    _pending_fetch: Set[str] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # Base (previous-epoch) state
    # ------------------------------------------------------------------ #
    def has_base(self, key: str) -> bool:
        """Whether the committed (pre-epoch) value of ``key`` is cached."""
        return key in self._base_values

    def base_value(self, key: str) -> Optional[bytes]:
        return self._base_values.get(key)

    def install_base(self, key: str, value: Optional[bytes]) -> None:
        """Record the committed value fetched from the ORAM for this epoch."""
        self._base_values[key] = value
        self._pending_fetch.discard(key)

    def mark_pending(self, key: str) -> None:
        """Record that a fetch for ``key`` has been scheduled in a read batch."""
        self._pending_fetch.add(key)

    def is_pending(self, key: str) -> bool:
        return key in self._pending_fetch

    # ------------------------------------------------------------------ #
    # Epoch write-back
    # ------------------------------------------------------------------ #
    def write_back_set(self) -> Dict[str, Optional[bytes]]:
        """Latest committed value per key written this epoch.

        Intermediate versions are skipped (write deduplication): only the
        tail of each chain among committed versions is flushed to the ORAM.
        """
        return self.store.latest_committed_values()

    def keys_written(self) -> List[str]:
        return self.store.keys()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Drop all epoch state (called between epochs and on aborts)."""
        self.store.clear()
        self._base_values.clear()
        self._pending_fetch.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "base_values": len(self._base_values),
            "version_chains": len(self.store),
            "pending_fetches": len(self._pending_fetch),
        }
