"""Epoch bookkeeping.

Epochs are the unit at which Obladi enforces consistency and durability:
transactions are assigned to an epoch on arrival, execute optimistically
within it, and learn their fate (commit or abort) only when the epoch closes.
An epoch either commits in its entirety — every finished transaction becomes
durable — or, on a crash, disappears entirely (epoch fate sharing).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.concurrency.transaction import TransactionRecord


class EpochPhase(enum.Enum):
    """Lifecycle of an epoch at the proxy."""

    OPEN = "open"                  # accepting transactions, running read batches
    WRITE_BACK = "write_back"      # read batches done; flushing the write batch
    COMMITTED = "committed"        # durable; clients notified
    ABORTED = "aborted"            # lost to a crash; all transactions aborted


@dataclass
class EpochState:
    """Mutable state of one epoch."""

    epoch_id: int
    phase: EpochPhase = EpochPhase.OPEN
    start_ms: float = 0.0
    end_ms: float = 0.0

    transactions: Dict[int, TransactionRecord] = field(default_factory=dict)
    committed_txn_ids: List[int] = field(default_factory=list)
    aborted_txn_ids: List[int] = field(default_factory=list)

    # Conflict-resolution observability: the epoch's aborts broken out by
    # ``AbortReason.value``, and the transactions the in-epoch repair pass
    # salvaged (committed after repair) or failed to salvage.
    aborts_by_reason: Dict[str, int] = field(default_factory=dict)
    repaired_txn_ids: List[int] = field(default_factory=list)
    repair_failed_txn_ids: List[int] = field(default_factory=list)

    read_batches_dispatched: int = 0
    physical_read_keys: List[List[str]] = field(default_factory=list)
    write_batch_keys: List[str] = field(default_factory=list)

    def admit(self, txn: TransactionRecord) -> None:
        if self.phase is not EpochPhase.OPEN:
            raise ValueError(f"epoch {self.epoch_id} is {self.phase.value}; cannot admit")
        self.transactions[txn.txn_id] = txn

    def record_read_batch(self, physical_keys: List[str]) -> None:
        self.read_batches_dispatched += 1
        self.physical_read_keys.append(list(physical_keys))

    def finish(self, phase: EpochPhase, now_ms: float) -> None:
        if phase not in (EpochPhase.COMMITTED, EpochPhase.ABORTED):
            raise ValueError("an epoch finishes either committed or aborted")
        self.phase = phase
        self.end_ms = now_ms

    @property
    def duration_ms(self) -> float:
        return max(0.0, self.end_ms - self.start_ms)

    def committed_count(self) -> int:
        return len(self.committed_txn_ids)

    def aborted_count(self) -> int:
        return len(self.aborted_txn_ids)


@dataclass
class EpochSummary:
    """Immutable digest of a finished epoch, kept for metrics.

    ``physical_reads``/``physical_writes`` are the epoch's totals across the
    whole data layer; ``partition_physical`` breaks them down as one
    ``(reads, writes)`` pair per ORAM partition (a single-tree proxy reports
    one pair, so the totals always equal the sum of the breakdown).

    ``worker_ops`` is the trusted-tier analogue for a sharded proxy
    (``repro.proxytier``): one ``(cc_reads, cc_writes)`` pair of
    concurrency-control operations per proxy worker for this epoch.  The
    single-proxy path reports no breakdown (empty tuple).

    ``aborts_by_reason`` breaks the epoch's aborts out by
    ``AbortReason.value`` as sorted ``(reason, count)`` pairs, and
    ``repaired``/``repair_failed`` count the transactions the in-epoch
    repair pass salvaged or gave up on (both stay 0 under the default
    ``conflict_strategy="retry"``).

    ``queue_depth``/``arrivals_dropped`` mirror the open-loop load
    generator's admission queue when the epoch was one of its waves
    (:func:`repro.api.openloop.run_open_loop` — for the Obladi engine one
    wave is exactly one epoch): the backlog left queued after this epoch's
    wave was drawn, and the run's cumulative dropped arrivals at that
    point.  Both stay 0 for closed-loop and direct ``run_epoch`` use.
    """

    epoch_id: int
    phase: EpochPhase
    duration_ms: float
    committed: int
    aborted: int
    physical_reads: int
    physical_writes: int
    partition_physical: tuple = ()
    worker_ops: tuple = ()
    queue_depth: int = 0
    arrivals_dropped: int = 0
    aborts_by_reason: tuple = ()
    repaired: int = 0
    repair_failed: int = 0

    @classmethod
    def from_state(cls, state: EpochState, physical_reads: int,
                   physical_writes: int,
                   partition_physical: tuple = (),
                   worker_ops: tuple = ()) -> "EpochSummary":
        return cls(
            epoch_id=state.epoch_id,
            phase=state.phase,
            duration_ms=state.duration_ms,
            committed=state.committed_count(),
            aborted=state.aborted_count(),
            physical_reads=physical_reads,
            physical_writes=physical_writes,
            partition_physical=tuple(partition_physical),
            worker_ops=tuple(worker_ops),
            aborts_by_reason=tuple(sorted(state.aborts_by_reason.items())),
            repaired=len(state.repaired_txn_ids),
            repair_failed=len(state.repair_failed_txn_ids),
        )
