"""Read/write batch construction: slot assignment, deduplication, padding.

The batch manager enforces the epoch's fixed structure (paper §6.2):

* an epoch has ``R`` read batches of exactly ``b_read`` slots each,
  dispatched at fixed intervals;
* a read for a key already scheduled in the current batch shares its slot
  (deduplication) — parallel ORAM batches must touch distinct keys, and the
  sharing also stretches batch capacity;
* a read that cannot be served from the version cache is assigned to the
  *next unfilled* read batch; if the epoch has no unfilled batch left, the
  requesting transaction aborts;
* leftover slots are padded with dummy requests before dispatch;
* the single write batch holds at most ``b_write`` distinct keys.

With a partitioned data layer (``shards > 1``) the fixed structure holds
*per partition*: each read batch carries a quota of ``ceil(b_read/shards)``
slots per partition and the write batch a quota of ``ceil(b_write/shards)``
per partition, because each partition executes (and pads) its share of the
batch independently.  A key whose partition quota is exhausted spills to
the next batch exactly like a full batch does today.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.core.errors import BatchFullError


@dataclass
class ReadBatch:
    """One read batch being assembled."""

    index: int
    capacity: int
    partition_quota: Optional[int] = None
    keys: List[str] = field(default_factory=list)
    _keyset: Set[str] = field(default_factory=set)
    _partition_counts: Dict[int, int] = field(default_factory=dict)
    dispatched: bool = False

    def has_room(self, partition: Optional[int] = None) -> bool:
        if len(self.keys) >= self.capacity:
            return False
        if partition is not None and self.partition_quota is not None:
            return self._partition_counts.get(partition, 0) < self.partition_quota
        return True

    def contains(self, key: str) -> bool:
        return key in self._keyset

    def add(self, key: str, partition: Optional[int] = None) -> None:
        if self.dispatched:
            raise ValueError(f"read batch {self.index} already dispatched")
        if key in self._keyset:
            return
        if not self.has_room(partition):
            raise BatchFullError("read", self.capacity)
        self.keys.append(key)
        self._keyset.add(key)
        if partition is not None:
            self._partition_counts[partition] = self._partition_counts.get(partition, 0) + 1

    @property
    def padding(self) -> int:
        """Dummy slots that will be added at dispatch time."""
        return self.capacity - len(self.keys)


class BatchManager:
    """Assembles the epoch's R read batches and its write batch.

    ``partitioner`` (optional) maps an application key to its partition
    index; with it set, each batch additionally enforces the per-partition
    read quota and the write batch the per-partition write quota, matching
    the padded per-partition batches the partitioned data layer executes.
    """

    def __init__(self, read_batches: int, read_batch_size: int, write_batch_size: int,
                 partitioner: Optional[Callable[[str], int]] = None,
                 read_partition_quota: Optional[int] = None,
                 write_partition_quota: Optional[int] = None) -> None:
        if read_batches < 1:
            raise ValueError("need at least one read batch per epoch")
        if partitioner is not None and read_partition_quota is None:
            raise ValueError("a partitioned batch manager needs a read quota")
        self.read_batches_per_epoch = read_batches
        self.read_batch_size = read_batch_size
        self.write_batch_size = write_batch_size
        self.partitioner = partitioner
        self.read_partition_quota = read_partition_quota
        self.write_partition_quota = write_partition_quota
        self.reset_epoch()

    # ------------------------------------------------------------------ #
    # Epoch lifecycle
    # ------------------------------------------------------------------ #
    def reset_epoch(self) -> None:
        self._batches: List[ReadBatch] = [
            ReadBatch(index=i, capacity=self.read_batch_size,
                      partition_quota=self.read_partition_quota
                      if self.partitioner is not None else None)
            for i in range(self.read_batches_per_epoch)
        ]
        self._next_batch = 0
        self.stats_deduplicated = 0
        self.stats_scheduled = 0
        self.stats_padded = 0

    # ------------------------------------------------------------------ #
    # Read scheduling
    # ------------------------------------------------------------------ #
    @property
    def current_index(self) -> int:
        """Index of the batch currently accepting requests."""
        return self._next_batch

    def batches_remaining(self) -> int:
        return self.read_batches_per_epoch - self._next_batch

    def schedule_read(self, key: str) -> int:
        """Assign ``key`` to the next unfilled batch; returns the batch index.

        Raises :class:`BatchFullError` when every remaining batch of the
        epoch is full — the paper aborts the transaction in that case.
        """
        partition = self.partitioner(key) if self.partitioner is not None else None
        for idx in range(self._next_batch, self.read_batches_per_epoch):
            batch = self._batches[idx]
            if batch.dispatched:
                continue
            if batch.contains(key):
                self.stats_deduplicated += 1
                return idx
            if batch.has_room(partition):
                batch.add(key, partition)
                self.stats_scheduled += 1
                return idx
        raise BatchFullError("read", self.read_batch_size)

    def peek_batch(self, index: int) -> ReadBatch:
        return self._batches[index]

    def dispatch_next(self) -> Optional[ReadBatch]:
        """Mark the current batch dispatched and return it (None when done)."""
        if self._next_batch >= self.read_batches_per_epoch:
            return None
        batch = self._batches[self._next_batch]
        batch.dispatched = True
        self.stats_padded += batch.padding
        self._next_batch += 1
        return batch

    def all_dispatched(self) -> bool:
        return self._next_batch >= self.read_batches_per_epoch

    # ------------------------------------------------------------------ #
    # Write batch
    # ------------------------------------------------------------------ #
    def build_write_batch(self, write_back: Dict[str, Optional[bytes]]) -> Dict[str, bytes]:
        """Select at most ``b_write`` keys from the epoch's write-back set.

        Deleted keys (``None`` values) are written as empty payloads — the
        ORAM has no notion of deletion, and the record layer encodes
        tombstones explicitly.  Raises :class:`BatchFullError` when the set
        exceeds the batch capacity; the proxy responds by aborting the
        transactions whose writes overflow the batch.
        """
        if len(write_back) > self.write_batch_size:
            raise BatchFullError("write", self.write_batch_size)
        if self.partitioner is not None and self.write_partition_quota is not None:
            per_partition: Dict[int, int] = {}
            for key in write_back:
                partition = self.partitioner(key)
                per_partition[partition] = per_partition.get(partition, 0) + 1
                if per_partition[partition] > self.write_partition_quota:
                    raise BatchFullError("write", self.write_partition_quota)
        return {key: (value if value is not None else b"")
                for key, value in sorted(write_back.items())}

    def write_batch_padding(self, actual: int) -> int:
        """Dummy write slots needed to pad the write batch to b_write."""
        return max(0, self.write_batch_size - actual)
