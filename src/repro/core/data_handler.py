"""The proxy's data handler: key directory plus ORAM batch execution.

The data handler (DH) owns the mapping from application keys (strings) to
ORAM block ids, the epoch's version cache, and the epoch batch executor.  It
exposes exactly two physical operations to the rest of the proxy, matching
the epoch structure of §6.2:

* :meth:`execute_read_batch` — run one fixed-size read batch of application
  keys through the ORAM (padded with dummy requests) and install the results
  as base values in the version cache;
* :meth:`execute_write_batch` — write the epoch's final values (one write
  batch, padded) and flush all buffered bucket rewrites.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.version_cache import VersionCache
from repro.oram.batch_executor import EpochBatchExecutor
from repro.oram.ring_oram import RingOram


@dataclass
class KeyDirectory:
    """Assigns stable ORAM block ids to application keys.

    The directory is proxy metadata (like the position map) and is
    checkpointed for durability; recovering it avoids an oblivious index,
    which the paper leaves to future work.  Like the position map it supports
    delta serialisation so that steady-state checkpoints stay small: only the
    keys first seen since the last checkpoint are written.
    """

    _ids: Dict[str, int] = field(default_factory=dict)
    _next_id: int = 0
    _dirty: set = field(default_factory=set)

    def block_id(self, key: str) -> int:
        """Stable block id for ``key``, assigned on first use."""
        bid = self._ids.get(key)
        if bid is None:
            bid = self._next_id
            self._next_id += 1
            self._ids[key] = bid
            self._dirty.add(key)
        return bid

    def known(self, key: str) -> bool:
        return key in self._ids

    def keys(self) -> List[str]:
        """Every application key the directory has assigned a block id.

        Live resharding (``repro.elasticity``) seeds its copy queue from
        this: the union of the per-partition directories is exactly the set
        of keys the deployment has ever materialised.
        """
        return list(self._ids)

    def __len__(self) -> int:
        return len(self._ids)

    def clear_dirty(self) -> None:
        self._dirty.clear()

    def serialize(self) -> bytes:
        """Full serialisation (used by periodic full checkpoints)."""
        return json.dumps({"next": self._next_id, "ids": self._ids},
                          sort_keys=True).encode("utf-8")

    def serialize_delta(self) -> bytes:
        """Only the keys assigned since the last :meth:`clear_dirty`."""
        delta = {key: self._ids[key] for key in self._dirty if key in self._ids}
        return json.dumps({"next": self._next_id, "delta": delta},
                          sort_keys=True).encode("utf-8")

    @classmethod
    def deserialize(cls, blob: bytes) -> "KeyDirectory":
        payload = json.loads(blob.decode("utf-8"))
        directory = cls()
        directory._ids = {str(k): int(v) for k, v in payload["ids"].items()}
        directory._next_id = int(payload["next"])
        return directory

    def apply_delta(self, blob: bytes) -> int:
        """Apply a :meth:`serialize_delta` payload; returns entries applied."""
        payload = json.loads(blob.decode("utf-8"))
        delta = payload.get("delta", {})
        for key, bid in delta.items():
            self._ids[str(key)] = int(bid)
        self._next_id = max(self._next_id, int(payload["next"]))
        return len(delta)


class DataHandler:
    """Bridges application keys and the epoch batch executor."""

    def __init__(self, oram: RingOram, executor: EpochBatchExecutor,
                 directory: Optional[KeyDirectory] = None,
                 cache: Optional[VersionCache] = None) -> None:
        self.oram = oram
        self.executor = executor
        self.directory = directory if directory is not None else KeyDirectory()
        self.cache = cache if cache is not None else VersionCache()
        self.stats_reads_served_from_cache = 0
        self.stats_oram_reads = 0
        self.stats_oram_writes = 0

    # ------------------------------------------------------------------ #
    # Epoch lifecycle
    # ------------------------------------------------------------------ #
    def begin_epoch(self) -> None:
        self.executor.begin_epoch()
        self.cache.reset()

    def abort_epoch(self) -> None:
        """Drop buffered ORAM writes and the version cache (crash path)."""
        self.executor.abort_epoch()
        self.cache.reset()

    # ------------------------------------------------------------------ #
    # Batched physical operations
    # ------------------------------------------------------------------ #
    def execute_read_batch(self, keys: Sequence[str], batch_size: int) -> Dict[str, Optional[bytes]]:
        """Read ``keys`` through the ORAM as one padded batch.

        Results are installed in the version cache as base values and also
        returned.  Keys already cached are not re-read (the caller, the
        batch manager, normally never schedules those).
        """
        to_fetch = [key for key in keys if not self.cache.has_base(key)]
        block_ids: List[Optional[int]] = [self.directory.block_id(key) for key in to_fetch]
        results = self.executor.execute_read_batch(block_ids, batch_size=batch_size)
        self.stats_oram_reads += len(to_fetch)

        out: Dict[str, Optional[bytes]] = {}
        for key, bid in zip(to_fetch, block_ids):
            value = results.get(bid)
            value = value if value else None
            self.cache.install_base(key, value)
            out[key] = value
        for key in keys:
            if key not in out:
                out[key] = self.cache.base_value(key)
                self.stats_reads_served_from_cache += 1
        return out

    def execute_write_batch(self, items: Dict[str, bytes], batch_size: int) -> None:
        """Write the epoch's final values as one padded write batch."""
        payload = {self.directory.block_id(key): value for key, value in items.items()}
        self.executor.execute_write_batch(payload, batch_size=batch_size)
        self.stats_oram_writes += len(items)

    def flush(self) -> float:
        """Flush all buffered bucket rewrites; returns simulated duration."""
        return self.executor.flush_epoch()

    # ------------------------------------------------------------------ #
    # Cache-aware single reads (used when serving transactions)
    # ------------------------------------------------------------------ #
    def cached_value(self, key: str) -> Optional[bytes]:
        """Base value for ``key`` if this epoch already fetched it."""
        return self.cache.base_value(key)

    def has_cached(self, key: str) -> bool:
        return self.cache.has_base(key)

    def stash_resident(self, key: str) -> bool:
        """Whether the key's block sits in the ORAM stash after a logical access.

        Such blocks can be served without an ORAM read (paper §6.3); the
        proxy uses this to satisfy reads without consuming a batch slot.
        """
        if not self.directory.known(key):
            return False
        entry = self.oram.stash.get(self.directory.block_id(key))
        if entry is None:
            return False
        from repro.oram.stash import StashReason
        return entry.reason is StashReason.LOGICAL_ACCESS

    def stash_value(self, key: str) -> Optional[bytes]:
        if not self.directory.known(key):
            return None
        entry = self.oram.stash.get(self.directory.block_id(key))
        return entry.value if entry is not None else None
