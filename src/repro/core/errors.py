"""Exception types raised by the Obladi proxy."""

from __future__ import annotations


class ObladiError(Exception):
    """Base class for proxy errors."""


class BatchFullError(ObladiError):
    """A read or write batch had no free slot for a request.

    The paper's behaviour is to abort the requesting transaction; callers
    catch this and do exactly that.
    """

    def __init__(self, kind: str, capacity: int) -> None:
        super().__init__(f"{kind} batch is full (capacity {capacity})")
        self.kind = kind
        self.capacity = capacity


class EpochClosedError(ObladiError):
    """An operation arrived for an epoch that has already been finalised."""


class ProxyCrashedError(ObladiError):
    """The proxy has crashed; clients must wait for recovery."""


class RecoveryError(ObladiError):
    """Recovery could not restore a consistent state."""
