"""Client-side transaction interface.

Transactions are expressed as *generator programs*: plain Python generator
functions that yield :class:`Read` and :class:`Write` operations and receive
read results back through ``send``.  This mirrors how the paper's clients
issue operations to the proxy one at a time (and lets the proxy batch reads
into its fixed epoch structure without threads):

.. code-block:: python

    def transfer(src, dst, amount):
        src_balance = yield Read(f"account:{src}")
        dst_balance = yield Read(f"account:{dst}")
        yield Write(f"account:{src}", encode(decode(src_balance) - amount))
        yield Write(f"account:{dst}", encode(decode(dst_balance) + amount))
        return "ok"

The same programs run unchanged against :class:`repro.core.proxy.ObladiProxy`,
the NoPriv baseline and the 2PL baseline.

For interactive use (the quickstart example), :class:`Transaction` offers a
blocking façade over a single-transaction epoch: ``txn.read(key)`` /
``txn.write(key, value)`` / ``txn.commit()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Iterable, List, Optional, Tuple, Union


class TransactionAborted(Exception):
    """Raised to the client when its transaction aborted.

    ``reason`` carries the proxy-side abort reason string (write conflict,
    cascade, epoch boundary, batch full, crash, user).
    """

    def __init__(self, txn_id: int, reason: str) -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


@dataclass(frozen=True)
class Read:
    """Yielded by a transaction program to read a key."""

    key: str


@dataclass(frozen=True)
class ReadMany:
    """Yielded to read several *independent* keys in one round.

    The proxy schedules all of them into the same (or the next available)
    read batch, so a transaction that fetches, say, the stock rows of every
    item in an order consumes one round of the epoch instead of one round per
    item.  The yield returns a dict mapping each key to its value.
    """

    keys: tuple

    def __init__(self, keys) -> None:
        object.__setattr__(self, "keys", tuple(keys))


@dataclass(frozen=True)
class Write:
    """Yielded by a transaction program to write a key."""

    key: str
    value: bytes

    def __post_init__(self) -> None:
        if not isinstance(self.value, (bytes, bytearray)):
            raise TypeError("values written to Obladi must be bytes")


@dataclass(frozen=True)
class AbortRequest:
    """Yielded by a transaction program to abort itself voluntarily."""

    reason: str = "user"


Operation = Union[Read, ReadMany, Write, AbortRequest]
TransactionProgram = Callable[..., Generator[Operation, Optional[bytes], object]]


@dataclass
class TransactionResult:
    """Outcome of one transaction as reported to the client.

    ``repaired``/``repair_failed`` record whether the result went through a
    conflict-repair pass (``repro.concurrency.repair``): ``repaired`` means
    the transaction lost an MVTSO conflict but was re-executed against the
    winning versions and committed; ``repair_failed`` means repair was
    attempted and the transaction still aborted.  Both are excluded from
    ``repr`` and ``==`` so fixed-seed runs under the default retry strategy
    stay byte-identical to historical output.
    """

    txn_id: int
    committed: bool
    return_value: object = None
    abort_reason: Optional[str] = None
    latency_ms: float = 0.0
    epoch: int = -1
    repaired: bool = field(default=False, repr=False, compare=False)
    repair_failed: bool = field(default=False, repr=False, compare=False)


def static_program(reads: Iterable[str],
                   writes: Dict[str, bytes]) -> TransactionProgram:
    """Build a program that performs a fixed set of reads then writes.

    Useful for microbenchmarks (YCSB) and tests where the access set does
    not depend on the data read.
    """
    read_list = list(reads)
    write_items = dict(writes)

    def program():
        values = {}
        for key in read_list:
            values[key] = yield Read(key)
        for key, value in write_items.items():
            yield Write(key, value)
        return values

    return program


class Transaction:
    """Blocking convenience façade used by the quickstart example.

    Engines expose ``engine.transaction()`` (and the proxy
    ``proxy.transaction()``) returning one of these; reads and writes are
    buffered and submitted as a single generator program when :meth:`commit`
    is called, so each interactive transaction occupies one epoch slot.
    Reads issued before commit see the transaction's own buffered writes
    first, then the current committed state (and are re-validated at commit
    time by the engine's concurrency control).
    """

    def __init__(self, submit: Callable[[TransactionProgram], TransactionResult],
                 read_now: Callable[[str], Optional[bytes]]) -> None:
        self._submit = submit
        self._read_now = read_now
        self._ops: List[Tuple[str, str, Optional[bytes]]] = []
        self._finished = False

    def read(self, key: str) -> Optional[bytes]:
        """Read a key.

        The transaction's own buffered writes are visible first
        (read-your-own-writes); otherwise the value reflects the latest
        committed epoch.
        """
        self._check_open()
        self._ops.append(("read", key, None))
        for kind, op_key, value in reversed(self._ops[:-1]):
            if kind == "write" and op_key == key:
                return value
        return self._read_now(key)

    def write(self, key: str, value: bytes) -> None:
        """Buffer a write; it becomes visible when the transaction commits."""
        self._check_open()
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values written to Obladi must be bytes")
        self._ops.append(("write", key, bytes(value)))

    def commit(self) -> TransactionResult:
        """Submit the buffered operations as one transaction and wait."""
        self._check_open()
        self._finished = True
        ops = list(self._ops)

        def program():
            for kind, key, value in ops:
                if kind == "read":
                    yield Read(key)
                else:
                    yield Write(key, value)
            return True

        result = self._submit(program)
        if not result.committed:
            raise TransactionAborted(result.txn_id, result.abort_reason or "unknown")
        return result

    def abort(self) -> None:
        """Discard the buffered operations without contacting the proxy."""
        self._check_open()
        self._finished = True
        self._ops.clear()

    def _check_open(self) -> None:
        if self._finished:
            raise RuntimeError("transaction already committed or aborted")

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._finished:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False
