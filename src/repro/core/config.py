"""Configuration of the Obladi proxy and its Ring ORAM tree.

The parameters mirror Table 1 of the paper:

===========  ==================================================
``N``        number of real objects (``RingOramConfig.num_blocks``)
``Z``        real slots per bucket
``S``        dummy slots per bucket
``A``        accesses between evict-path operations
``L``        tree depth
``R``        read batches per epoch (``ObladiConfig.read_batches``)
``b_read``   size of a read batch
``b_write``  size of the (single) write batch
``Δ``        interval between read batches, in simulated ms
===========  ==================================================

Section 6.4 discusses how to choose them; :func:`ObladiConfig.for_workload`
encodes those rules of thumb so the end-to-end experiments configure
themselves the way the paper describes (OLTP: large ``b_read``, few ``R``;
read-mostly applications: small ``b_write``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.oram.parameters import (RingOramParameters, derive_parameters,
                                   partition_block_count)
from repro.sim.latency import CpuCostModel


@dataclass(frozen=True)
class RingOramConfig:
    """User-facing Ring ORAM sizing; converted to RingOramParameters."""

    num_blocks: int = 10_000
    z_real: int = 16
    s_dummies: int = 0          # 0 = use the published optimum for Z
    evict_rate: int = 0         # 0 = use the published optimum for Z
    block_size: int = 256
    max_stash_blocks: int = 0   # 0 = conservative default (4Z)

    def to_parameters(self) -> RingOramParameters:
        return derive_parameters(
            num_blocks=self.num_blocks,
            z_real=self.z_real,
            block_size=self.block_size,
            evict_rate=self.evict_rate,
            s_dummies=self.s_dummies,
            max_stash_blocks=self.max_stash_blocks,
        )

    def for_partition(self, shards: int) -> "RingOramConfig":
        """Sizing for one of ``shards`` partitions covering the same keyspace."""
        return replace(self, num_blocks=partition_block_count(self.num_blocks, shards))


@dataclass(frozen=True)
class ObladiConfig:
    """Full configuration of an Obladi proxy."""

    oram: RingOramConfig = field(default_factory=RingOramConfig)

    # Epoch / batching parameters (Table 1).
    read_batches: int = 4            # R
    read_batch_size: int = 64        # b_read
    write_batch_size: int = 64       # b_write
    batch_interval_ms: float = 5.0   # Δ: interval between read batches

    # Storage / network.
    backend: str = "server"          # latency model name or LatencyModel
    parallelism: int = 1024          # max in-flight physical requests at the proxy

    # Sharding: number of independent Ring ORAM partitions the keyspace is
    # hashed across (1 = the paper's single-tree proxy).  ``partition_seed``
    # perturbs the key-to-partition hash so different deployments of the same
    # dataset shard differently.
    shards: int = 1
    partition_seed: int = 0

    # Server topology: how many *distinct* simulated storage servers host the
    # partitions.  1 (the default) colocates every partition on one server
    # via key namespaces — the historical layout; ``storage_servers ==
    # shards`` is one-server-per-partition; values in between group
    # partitions round-robin (partition i lives on server i % M).
    # ``link_extra_rtt_ms[i]`` optionally adds round-trip latency to server
    # i's link (heterogeneous links; servers past the end get none).
    storage_servers: int = 1
    link_extra_rtt_ms: Tuple[float, ...] = ()

    # Proxy tier: how many trusted ``ProxyWorker`` lanes the MVTSO version
    # store and version cache are sharded across (``repro.proxytier``).  1
    # (the default) is the paper's single proxy, byte-identical to the seed;
    # N > 1 hashes application keys over N workers with the same sha256
    # partition map the data layer uses (perturbed by ``partition_seed``)
    # and runs their concurrency-control CPU as parallel lanes.  Orthogonal
    # to ``shards`` (ORAM partitions) and ``storage_servers`` (untrusted
    # hosts): any combination is valid.
    proxy_workers: int = 1

    # Conflict resolution: what the proxy does with transactions that lose
    # an MVTSO conflict (a late write hit a read marker, or a dependency
    # aborted).  "retry" (the default, byte-identical to the historical
    # behaviour) leaves recovery to the loop drivers' abort+retry path;
    # "repair" re-executes losers against the winning versions inside the
    # epoch that detected the conflict, under the same epoch barrier
    # (``repro.concurrency.repair``).
    conflict_strategy: str = "retry"

    # Security toggles (used by ablation benchmarks).
    encrypt: bool = True
    dummiless_writes: bool = True
    cache_stash_reads: bool = True
    buffer_writes: bool = True       # delayed visibility (Figure 10d ablation)

    # Durability.
    durability: bool = True
    checkpoint_frequency: int = 4    # full checkpoint every k epochs (Figure 11a)

    # Topology generation (``repro.elasticity``): bumped by one at every
    # reshard cutover.  Generation 0 — the value every statically provisioned
    # config carries — adds no storage prefix, so the historical layouts stay
    # byte-identical; generation g > 0 namespaces the partitions and their
    # checkpoint components under ``g<g>/``, which is what lets two topology
    # generations coexist on the same storage during a live migration and
    # lets ``recover()`` land on exactly one side of the cutover fence.
    generation: int = 0

    # Misc.
    seed: Optional[int] = 0
    cost_model: CpuCostModel = field(default_factory=CpuCostModel)

    def __post_init__(self) -> None:
        if self.read_batches < 1:
            raise ValueError("an epoch needs at least one read batch")
        if self.read_batch_size < 1 or self.write_batch_size < 1:
            raise ValueError("batch sizes must be positive")
        if self.batch_interval_ms < 0:
            raise ValueError("batch interval cannot be negative")
        if self.parallelism < 1:
            raise ValueError("parallelism must be at least 1")
        if self.checkpoint_frequency < 1:
            raise ValueError("checkpoint frequency must be at least 1")
        if self.shards < 1:
            raise ValueError("need at least one ORAM partition")
        if self.storage_servers < 1:
            raise ValueError("need at least one storage server")
        if self.storage_servers > self.shards:
            raise ValueError(
                f"cannot spread {self.shards} partition(s) over "
                f"{self.storage_servers} storage servers; "
                f"storage_servers must not exceed shards")
        if self.proxy_workers < 1:
            raise ValueError(
                f"need at least one proxy worker, got "
                f"{self.proxy_workers}; proxy_workers shards the *trusted* "
                f"MVTSO/version-cache tier and is independent of shards "
                f"(={self.shards}, ORAM partitions of the data layer) and "
                f"storage_servers (={self.storage_servers}, untrusted "
                f"hosts) — any combination of the three is valid, but each "
                f"knob must be >= 1")
        if self.conflict_strategy not in ("retry", "repair"):
            raise ValueError(
                f"unknown conflict_strategy {self.conflict_strategy!r}; "
                f"valid: retry, repair")
        if self.generation < 0:
            raise ValueError("topology generation cannot be negative")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def epoch_read_capacity(self) -> int:
        """Total logical read slots per epoch (R * b_read)."""
        return self.read_batches * self.read_batch_size

    @property
    def epoch_length_ms(self) -> float:
        """Nominal epoch length: R batch intervals."""
        return self.read_batches * self.batch_interval_ms

    @property
    def position_delta_pad_entries(self) -> int:
        """Padding bound for position-map delta checkpoints (paper §8).

        The number of position-map entries an epoch can change is bounded by
        the read slots plus the write batch size.
        """
        return self.epoch_read_capacity + self.write_batch_size

    # ------------------------------------------------------------------ #
    # Sharding-derived quantities
    # ------------------------------------------------------------------ #
    @property
    def partition_read_batch_size(self) -> int:
        """Per-partition read-batch quota (``ceil(b_read / shards)``).

        Every partition executes a padded batch of exactly this many slots
        per round, so the per-partition adversary view stays workload
        independent.
        """
        return math.ceil(self.read_batch_size / self.shards)

    @property
    def partition_write_batch_size(self) -> int:
        """Per-partition write-batch quota (``ceil(b_write / shards)``)."""
        return math.ceil(self.write_batch_size / self.shards)

    @property
    def generation_prefix(self) -> str:
        """Storage namespace prefix of this topology generation.

        Empty for generation 0 (the statically provisioned layouts keep
        their historical key space byte-for-byte); ``g<g>/`` afterwards, so
        partition ``i`` of generation ``g`` lives under ``g<g>/p<i>/`` and
        its checkpoint components under the same prefix — disjoint from
        every earlier generation on the same storage.
        """
        return "" if self.generation == 0 else f"g{self.generation}/"

    @property
    def topology(self) -> str:
        """Human-readable name of the server topology this config describes.

        ``"colocated"`` — every partition namespaced onto one server (the
        historical layout); ``"per-partition"`` — one server per partition;
        ``"grouped"`` — M servers for N > M partitions, round-robin.
        """
        if self.storage_servers <= 1:
            return "colocated"
        if self.storage_servers == self.shards:
            return "per-partition"
        return "grouped"

    @property
    def fanout_lanes(self) -> int:
        """Concurrent partition batches the proxy can drive (§7 scale model).

        The proxy fans an epoch batch out to every partition's server, but it
        only has ``parallelism`` request-driving slots: when partitions
        outnumber them the fan-out is *staggered* — partition batches are
        list-scheduled onto this many lanes instead of all starting at once.
        """
        return max(1, min(self.parallelism, self.shards))

    @property
    def partition_position_delta_pad_entries(self) -> int:
        """Per-partition padding bound for position-map delta checkpoints.

        A partition's position map changes at most its share of the epoch's
        read slots plus its share of the write batch.
        """
        return (self.read_batches * self.partition_read_batch_size
                + self.partition_write_batch_size)

    def with_backend(self, backend: str) -> "ObladiConfig":
        """Copy of this configuration targeting a different storage backend."""
        return replace(self, backend=backend)

    def describe(self) -> str:
        """One-line summary of the epoch, sharding and topology parameters."""
        sharding = f"shards={self.shards}, " if self.shards > 1 else ""
        servers = (f"servers={self.storage_servers} ({self.topology}), "
                   if self.storage_servers > 1 else "")
        workers = (f"proxy_workers={self.proxy_workers}, "
                   if self.proxy_workers > 1 else "")
        return (
            f"ObladiConfig(R={self.read_batches}, b_read={self.read_batch_size}, "
            f"b_write={self.write_batch_size}, Δ={self.batch_interval_ms}ms, "
            f"{sharding}{servers}{workers}backend={self.backend}, "
            f"{self.oram.to_parameters().describe()})"
        )

    # ------------------------------------------------------------------ #
    # Workload presets (paper §6.4)
    # ------------------------------------------------------------------ #
    @classmethod
    def for_workload(cls, profile: str, num_blocks: int = 10_000,
                     backend: str = "server", **overrides) -> "ObladiConfig":
        """Configuration presets following the paper's guidance.

        ``tpcc``      — heterogeneous OLTP: deep epochs (8 read batches), a
                        large write batch (the paper uses 2,000 at EC2 scale).
        ``smallbank`` — short homogeneous transactions: shallow epochs.
        ``freehealth``— read-mostly EHR workload: five read batches, small
                        write batch.
        ``ycsb``      — microbenchmark: a single large read batch.
        """
        presets = {
            "tpcc": dict(read_batches=8, read_batch_size=96, write_batch_size=192,
                         batch_interval_ms=10.0),
            "smallbank": dict(read_batches=3, read_batch_size=64, write_batch_size=64,
                              batch_interval_ms=5.0),
            "freehealth": dict(read_batches=5, read_batch_size=64, write_batch_size=24,
                               batch_interval_ms=5.0),
            "ycsb": dict(read_batches=1, read_batch_size=500, write_batch_size=100,
                         batch_interval_ms=10.0),
        }
        if profile not in presets:
            raise KeyError(f"unknown workload profile {profile!r}; "
                           f"valid: {', '.join(sorted(presets))}")
        kwargs = dict(presets[profile])
        kwargs.update(overrides)
        oram_kwargs = kwargs.pop("oram", None)
        oram = oram_kwargs if isinstance(oram_kwargs, RingOramConfig) else RingOramConfig(
            num_blocks=num_blocks)
        return cls(oram=oram, backend=backend, **kwargs)
