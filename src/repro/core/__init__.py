"""Obladi's trusted proxy: the paper's primary contribution.

The proxy partitions time into fixed-length epochs, executes transactions
with MVTSO concurrency control, groups their ORAM reads into ``R``
fixed-size read batches and their final writes into one fixed-size write
batch, and delays commit notifications (and durability) to epoch boundaries
— *delayed visibility*.  The adversary-visible behaviour (number, size and
timing of physical batches) is a function of the configuration only, never
of the workload.
"""

from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.client import Transaction, TransactionAborted, Read, ReadMany, Write
from repro.core.proxy import ObladiProxy
from repro.core.errors import BatchFullError, EpochClosedError

__all__ = [
    "ObladiConfig",
    "RingOramConfig",
    "ObladiProxy",
    "Transaction",
    "TransactionAborted",
    "Read",
    "ReadMany",
    "Write",
    "BatchFullError",
    "EpochClosedError",
]
