"""The Obladi proxy.

This is the trusted component of Figure 4: it admits transactions, runs
MVTSO concurrency control over an epoch-scoped version cache, schedules ORAM
reads into the epoch's fixed read batches, buffers writes, and at the end of
each epoch commits the survivors, writes back the final values, flushes the
buffered ORAM bucket rewrites, and checkpoints its metadata for durability.

Transactions are generator programs (see :mod:`repro.core.client`).  The
proxy executes an epoch in *rounds*: in round ``r`` it advances every
runnable transaction until it blocks on an ORAM fetch, dispatches read batch
``r``, installs the fetched base values in the version cache, and resumes
the blocked transactions in the next round.  Transactions that need more
rounds than the epoch has read batches — or that find every remaining batch
full — abort, exactly as in the paper.

Layer context and the request-lifecycle diagram live in
``docs/ARCHITECTURE.md`` ("Trusted proxy"); the sharded variant of this
class — the trusted tier split across parallel workers — is
:class:`repro.proxytier.ProxyCoordinator` ("Distributed proxy tier" in the
same document).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, Iterable, List, Optional, Sequence, Union

from repro.concurrency.mvtso import MVTSOManager, WriteConflictError
from repro.concurrency.repair import ConflictWitness
from repro.concurrency.transaction import (AbortReason, CommittedTransaction,
                                           TransactionRecord, TransactionStatus)
from repro.core.batch_manager import BatchManager
from repro.core.client import (AbortRequest, Read, ReadMany, Transaction, TransactionAborted,
                               TransactionProgram, TransactionResult, Write)
from repro.core.config import ObladiConfig
from repro.core.epoch import EpochPhase, EpochState, EpochSummary
from repro.core.errors import BatchFullError, ProxyCrashedError
from repro.sim.clock import SimClock
from repro.storage.backend import StorageServer


@dataclass
class _ActiveTransaction:
    """Book-keeping for one transaction while its epoch is running."""

    record: TransactionRecord
    generator: Generator
    program: TransactionProgram
    waiting_keys: List[str] = field(default_factory=list)
    waiting_multi: bool = False
    pending_value: object = None
    has_pending_value: bool = False
    finished: bool = False
    return_value: object = None
    started: bool = False
    # Conflict repair: the txn id the client knows this transaction by (set
    # when a repair re-executes it under a fresh MVTSO record), and how many
    # repair attempts it has consumed this epoch.
    result_txn_id: Optional[int] = None
    repair_attempts: int = 0

    @property
    def waiting(self) -> bool:
        return bool(self.waiting_keys)


class ObladiProxy:
    """Trusted proxy providing serializable, oblivious transactions."""

    def __init__(self, config: Optional[ObladiConfig] = None,
                 storage: Optional[StorageServer] = None,
                 clock: Optional[SimClock] = None,
                 recovery_manager=None,
                 master_key: Optional[bytes] = None,
                 data_layer=None) -> None:
        self.config = config if config is not None else ObladiConfig()
        self.clock = clock if clock is not None else SimClock()
        if storage is None:
            from repro.storage.cluster import build_storage
            storage = build_storage(self.config, clock=self.clock)
        elif self.config.storage_servers > 1 and not hasattr(storage, "servers"):
            raise ValueError(
                f"configuration asks for {self.config.storage_servers} storage "
                f"servers but a single {type(storage).__name__} was supplied; "
                f"pass a repro.storage.cluster.StorageCluster")
        self.storage = storage
        # The proxy computes batch timings itself from the dependency-aware
        # schedule, so the raw backend must not double-charge latency.
        self.storage.charge_latency = False
        self.storage.clock = self.clock

        # The master key is the one secret that persists across proxy crashes;
        # every other key (ORAM blocks, WAL, checkpoints) is derived from it.
        import os as _os
        self.master_key = master_key if master_key is not None else _os.urandom(32)

        # The data path lives behind the DataLayer seam: one Ring ORAM tree,
        # or — with ``config.shards > 1`` — N hash-partitioned parallel trees.
        # A reshard cutover (repro.elasticity) injects the already-populated
        # next-generation layer instead of building a fresh empty one.
        if data_layer is not None:
            self.data_layer = data_layer
        else:
            from repro.sharding import build_data_layer
            self.data_layer = build_data_layer(self.config, storage=self.storage,
                                               clock=self.clock,
                                               master_key=self.master_key)
        # Single-partition views kept for compatibility: most introspection
        # (tests, harness, sequential baselines) reads partition 0 directly.
        part0 = self.data_layer.partitions[0]
        self.oram = part0.oram
        self.executor = part0.executor
        self.data_handler = part0.handler
        self.cipher = part0.oram.cipher

        self.mvtso = MVTSOManager()
        if self.config.shards > 1:
            self.batch_manager = BatchManager(
                self.config.read_batches, self.config.read_batch_size,
                self.config.write_batch_size,
                partitioner=self.data_layer.partition_of,
                read_partition_quota=self.config.partition_read_batch_size,
                write_partition_quota=self.config.partition_write_batch_size)
        else:
            self.batch_manager = BatchManager(self.config.read_batches,
                                              self.config.read_batch_size,
                                              self.config.write_batch_size)

        self.recovery = recovery_manager
        if self.recovery is None and self.config.durability:
            from repro.recovery.manager import RecoveryManager
            self.recovery = RecoveryManager(storage=self.storage, clock=self.clock,
                                            config=self.config, master_key=self.master_key)

        self._queue: List[_ActiveTransaction] = []
        self._epoch_counter = 0
        self._crashed = False
        # Live resharding (repro.elasticity): when a TopologyMigration is
        # attached, one padded copy step rides every epoch barrier.
        self._migration = None
        # Concurrency-control CPU accounting (``CpuCostModel.cc_op_ms``).
        # The single proxy charges CC work serially; the sharded proxy tier
        # (:mod:`repro.proxytier`) overrides :meth:`_charge_cc` to divide it
        # across parallel worker lanes.  With the default cost of 0.0 the
        # clock is never touched, keeping the seed timings byte-identical.
        self.cc_cpu_ms = 0.0
        self._cc_ops_charged = 0
        # Timestamp of the latest committed writer per key, across epochs.
        # Used only to annotate read sets with their version provenance so
        # that committed histories can be checked for serializability.
        self._last_writer_ts: Dict[str, int] = {}

        self.results: Dict[int, TransactionResult] = {}
        self.committed_history: List[CommittedTransaction] = []
        self.epoch_summaries: List[EpochSummary] = []
        self.stats_committed = 0
        self.stats_aborted = 0
        # Conflict-repair accounting (``conflict_strategy="repair"``): how
        # many conflict losers the in-epoch repair pass salvaged / gave up
        # on, and the conflict witnesses (which reads went stale, which
        # writer won) collected per repair attempt.
        self.stats_repaired = 0
        self.stats_repair_failed = 0
        self.repair_witnesses: List[ConflictWitness] = []

    # ------------------------------------------------------------------ #
    # Public client API
    # ------------------------------------------------------------------ #
    def submit(self, program: Union[TransactionProgram, Generator]) -> int:
        """Queue a transaction program for the next epoch; returns its id.

        ``program`` is either a zero-argument callable returning a generator
        or a generator object.  The transaction's timestamp (serialization
        order) is assigned when its epoch starts.
        """
        self._check_alive()
        generator = program() if callable(program) else program
        if not hasattr(generator, "send"):
            raise TypeError("transaction programs must be generator functions")
        placeholder = TransactionRecord(txn_id=-1, timestamp=-1, epoch=-1,
                                        start_time_ms=self.clock.now_ms)
        active = _ActiveTransaction(record=placeholder, generator=generator,
                                    program=program)
        self._queue.append(active)
        return len(self._queue) - 1

    def execute_transaction(self, program: Union[TransactionProgram, Generator]
                            ) -> TransactionResult:
        """Submit a single transaction and run one epoch to completion."""
        self.submit(program)
        summary = self.run_epoch()
        del summary
        txn_id = max(self.results)
        return self.results[txn_id]

    def transaction(self) -> Transaction:
        """Interactive transaction façade (see the quickstart example)."""
        return Transaction(submit=self.execute_transaction, read_now=self._read_only)

    def _read_only(self, key: str) -> Optional[bytes]:
        """Read a single committed value through a one-off read-only epoch."""

        def program():
            value = yield Read(key)
            return value

        result = self.execute_transaction(program)
        return result.return_value if result.committed else None

    def load_initial_data(self, items: Dict[str, bytes]) -> None:
        """Bulk-load a dataset before serving transactions.

        Values are placed directly into the ORAM tree(s) (see
        :meth:`repro.oram.ring_oram.RingOram.bulk_load`) and each
        partition's key directory learns its block ids.
        """
        self._check_alive()
        self.data_layer.bulk_load(items)
        if self.recovery is not None:
            self._checkpoint(full=True)

    # ------------------------------------------------------------------ #
    # Epoch execution
    # ------------------------------------------------------------------ #
    def pending_transactions(self) -> int:
        return len(self._queue)

    def run_epoch(self, max_transactions: Optional[int] = None) -> EpochSummary:
        """Execute one epoch over the queued transactions.

        Returns a summary.  Raises :class:`ProxyCrashedError` if the proxy
        has crashed and has not been recovered.
        """
        self._check_alive()
        epoch_id = self._epoch_counter
        self._epoch_counter += 1
        state = EpochState(epoch_id=epoch_id, start_ms=self.clock.now_ms)

        self.data_layer.begin_epoch()
        self.batch_manager.reset_epoch()
        physical_before = self.data_layer.per_partition_physical()

        # Admission: transactions waiting in the queue join this epoch.
        admitted: List[_ActiveTransaction] = []
        take = len(self._queue) if max_transactions is None else min(max_transactions,
                                                                     len(self._queue))
        for active in self._queue[:take]:
            record = self.mvtso.begin(epoch_id, now_ms=active.record.start_time_ms)
            record.start_time_ms = active.record.start_time_ms
            active.record = record
            state.admit(record)
            admitted.append(active)
        self._queue = self._queue[take:]

        epoch_start_ms = self.clock.now_ms
        # Round-based execution: one round per read batch.
        for round_index in range(self.config.read_batches):
            self._advance_transactions(admitted, state)
            batch = self.batch_manager.dispatch_next()
            if batch is None:
                break
            if self.recovery is not None:
                self.recovery.log_read_batch(epoch_id, batch.index, batch.keys,
                                             self.config.read_batch_size)
            self.data_layer.execute_read_batch(batch.keys, self.config.read_batch_size)
            state.record_read_batch(batch.keys)
            self._deliver_values(admitted)
            self._finish_round(epoch_start_ms, round_index)

        # Give transactions one final chance to consume the last batch's
        # values and issue their remaining writes.
        self._advance_transactions(admitted, state, final_round=True)

        self._finalize_epoch(admitted, state)

        # Live resharding: one padded migration copy step rides each epoch
        # barrier (``repro.elasticity``); its reads from the retiring layer
        # land in this epoch's physical counters like any other traffic.
        if self._migration is not None:
            self._migration.step(self, state)

        physical_after = self.data_layer.per_partition_physical()
        partition_physical = tuple((after_r - before_r, after_w - before_w)
                                   for (before_r, before_w), (after_r, after_w)
                                   in zip(physical_before, physical_after))
        physical_reads = sum(reads for reads, _ in partition_physical)
        physical_writes = sum(writes for _, writes in partition_physical)
        summary = EpochSummary.from_state(state, physical_reads, physical_writes,
                                          partition_physical=partition_physical,
                                          **self._summary_extras())
        self.epoch_summaries.append(summary)
        return summary

    def _finish_round(self, epoch_start_ms: float, round_index: int) -> None:
        """Close one read-batch round: charge CC CPU, wait for the boundary.

        Batches are dispatched at fixed intervals; if the round's work (the
        batch plus the concurrency-control CPU it triggered) finished early
        the proxy waits for the next boundary, so small CC costs are absorbed
        by the epoch's fixed shape and only a proxy-CPU-bound configuration
        stretches the epoch.
        """
        self._charge_cc()
        boundary = epoch_start_ms + (round_index + 1) * self.config.batch_interval_ms
        self.clock.advance_to(boundary)

    def _charge_cc(self) -> None:
        """Charge CPU for MVTSO operations performed since the last charge.

        The single proxy runs its concurrency control on one core: the
        operations are charged serially at ``CpuCostModel.cc_op_ms`` each.
        The sharded proxy tier overrides this to schedule each worker's
        share as parallel lanes.  A zero cost (the default) never touches
        the clock.
        """
        cost = self.config.cost_model.cc_op_ms
        if cost <= 0:
            return
        total = self.mvtso.stats_ops_read + self.mvtso.stats_ops_write
        pending = total - self._cc_ops_charged
        if pending <= 0:
            return
        self._cc_ops_charged = total
        elapsed = pending * cost
        self.clock.advance(elapsed)
        self.cc_cpu_ms += elapsed

    def _summary_extras(self) -> Dict[str, tuple]:
        """Extra :class:`EpochSummary` fields; the proxy tier adds worker counters."""
        return {}

    def run_until_drained(self, max_epochs: int = 1000) -> List[EpochSummary]:
        """Run epochs until the queue is empty (bounded by ``max_epochs``)."""
        summaries = []
        while self._queue and len(summaries) < max_epochs:
            summaries.append(self.run_epoch())
        return summaries

    # ------------------------------------------------------------------ #
    # Transaction stepping
    # ------------------------------------------------------------------ #
    def _advance_transactions(self, admitted: List[_ActiveTransaction], state: EpochState,
                              final_round: bool = False) -> None:
        """Advance every runnable transaction until it blocks, finishes or aborts."""
        progress = True
        while progress:
            progress = False
            for active in admitted:
                if active.finished or active.record.is_finished or active.waiting:
                    continue
                stepped = self._step_transaction(active, state, final_round)
                progress = progress or stepped

    def _step_transaction(self, active: _ActiveTransaction, state: EpochState,
                          final_round: bool) -> bool:
        """Run one transaction until it blocks/finishes/aborts.  Returns True if it advanced."""
        advanced = False
        while True:
            try:
                if not active.started:
                    active.started = True
                    operation = active.generator.send(None)
                elif active.has_pending_value:
                    value = active.pending_value
                    active.pending_value = None
                    active.has_pending_value = False
                    operation = active.generator.send(value)
                else:
                    # Nothing to feed: the transaction is at its first step of
                    # this round (writes do not block, reads set pending).
                    operation = active.generator.send(None)
            except StopIteration as stop:
                active.finished = True
                active.return_value = getattr(stop, "value", None)
                active.record.request_commit()
                return True
            except TransactionAborted:
                self._abort(active, AbortReason.USER)
                return True

            advanced = True
            if isinstance(operation, Write):
                if not self._apply_write(active, operation):
                    return True
                active.has_pending_value = True
                active.pending_value = None
                continue
            if isinstance(operation, AbortRequest):
                self._abort(active, AbortReason.USER)
                return True
            if isinstance(operation, (Read, ReadMany)):
                keys = [operation.key] if isinstance(operation, Read) else list(operation.keys)
                values: Dict[str, Optional[bytes]] = {}
                missing: List[str] = []
                for key in keys:
                    served, value = self._try_serve_read(active, key)
                    if served:
                        values[key] = value
                    else:
                        missing.append(key)
                if not missing:
                    active.has_pending_value = True
                    if isinstance(operation, Read):
                        active.pending_value = values[keys[0]]
                    else:
                        active.pending_value = values
                    continue
                if final_round:
                    # No batches left this epoch: the transaction cannot make
                    # progress and is aborted at the epoch boundary.
                    self._abort(active, AbortReason.EPOCH_BOUNDARY)
                    return True
                try:
                    for key in missing:
                        self.batch_manager.schedule_read(key)
                except BatchFullError:
                    self._abort(active, AbortReason.BATCH_FULL)
                    return True
                active.waiting_keys = keys
                active.waiting_multi = isinstance(operation, ReadMany)
                return advanced
            raise TypeError(f"transaction yielded unsupported operation {operation!r}")

    def _apply_write(self, active: _ActiveTransaction, operation: Write) -> bool:
        """Apply a write through MVTSO; aborts the transaction on conflict."""
        try:
            self.mvtso.write(active.record, operation.key, bytes(operation.value))
            return True
        except WriteConflictError:
            self._abort(active, AbortReason.WRITE_CONFLICT)
            return False

    def _record_base_read(self, active: _ActiveTransaction, key: str) -> None:
        """Annotate a read served from pre-epoch state with its provenance.

        The value came from the ORAM (or the stash), i.e. from the latest
        committed writer of an earlier epoch.  MVTSO recorded the read marker
        already; here we fix up the read-set entry so committed histories can
        be checked for serializability.
        """
        active.record.read_set[key] = self._last_writer_ts.get(key, -1)

    def _try_serve_read(self, active: _ActiveTransaction, key: str):
        """Serve a read from the version cache / stash if possible.

        Returns ``(served, value)``.  When ``served`` is False the read needs
        an ORAM batch slot.
        """
        cache = self.data_layer.cache
        chain = self.mvtso.store.get_chain(key)
        has_epoch_version = chain is not None and chain.latest_visible(
            active.record.timestamp) is not None
        if has_epoch_version:
            value, _writer = self.mvtso.read(active.record, key)
            return True, value
        if self.data_layer.has_cached(key):
            self.mvtso.read(active.record, key)          # records marker, finds nothing
            self._record_base_read(active, key)
            return True, cache.base_value(key)
        if self.config.cache_stash_reads and self.data_layer.stash_resident(key):
            value = self.data_layer.stash_value(key)
            cache.install_base(key, value)
            self.mvtso.read(active.record, key)
            self._record_base_read(active, key)
            return True, value
        return False, None

    def _deliver_values(self, admitted: List[_ActiveTransaction]) -> None:
        """Unblock transactions whose awaited keys were fetched by the last batch."""
        for active in admitted:
            if not active.waiting or active.record.is_finished:
                continue

            def _available(key: str) -> bool:
                if self.data_layer.has_cached(key):
                    return True
                chain = self.mvtso.store.get_chain(key)
                return (chain is not None
                        and chain.latest_visible(active.record.timestamp) is not None)

            if not all(_available(key) for key in active.waiting_keys):
                continue
            values: Dict[str, Optional[bytes]] = {}
            for key in active.waiting_keys:
                value, _writer = self.mvtso.read(active.record, key)
                if value is None:
                    value = self.data_layer.cached_value(key)
                    self._record_base_read(active, key)
                values[key] = value
            if active.waiting_multi:
                active.pending_value = values
            else:
                active.pending_value = values[active.waiting_keys[0]]
            active.waiting_keys = []
            active.waiting_multi = False
            active.has_pending_value = True

    def _abort(self, active: _ActiveTransaction, reason: AbortReason) -> None:
        """Abort a transaction and everything that depends on it."""
        if active.record.is_finished:
            return
        self.mvtso.abort(active.record, reason, now_ms=self.clock.now_ms)
        active.finished = True
        active.waiting_keys = []
        active.generator.close()

    # ------------------------------------------------------------------ #
    # Epoch finalisation
    # ------------------------------------------------------------------ #
    def _finalize_epoch(self, admitted: List[_ActiveTransaction], state: EpochState) -> None:
        state.phase = EpochPhase.WRITE_BACK
        # CC work from the final round (writes issued after the last batch
        # boundary) has no boundary to absorb it; charge it up front so the
        # commit timestamps below account for it.
        self._charge_cc()
        now = self.clock.now_ms

        # Abort every transaction that is still unfinished (epoch boundary).
        for active in admitted:
            if not active.finished and not active.record.is_finished:
                self._abort(active, AbortReason.EPOCH_BOUNDARY)

        # Commit survivors in timestamp order, skipping cascaded aborts.
        for active in sorted(admitted, key=lambda a: a.record.timestamp):
            record = active.record
            if record.status is TransactionStatus.ABORTED:
                continue
            if record.status is not TransactionStatus.COMMIT_REQUESTED:
                self.mvtso.abort(record, AbortReason.EPOCH_BOUNDARY, now_ms=now)
                continue
            if not self.mvtso.can_commit(record):
                self.mvtso.abort(record, AbortReason.CASCADE, now_ms=now)

        # Conflict repair: with ``conflict_strategy="repair"`` the epoch's
        # conflict losers are re-executed against the winning versions now,
        # before the write batch is built, so salvaged transactions ride the
        # same padded batch their abort was detected in.
        if self.config.conflict_strategy == "repair":
            self._repair_conflict_losers(admitted, state, now)

        # The write batch may overflow; shed the youngest writers until it fits.
        write_back = self._collect_write_back(admitted)
        while True:
            try:
                batch_items = self.batch_manager.build_write_batch(write_back)
                break
            except BatchFullError:
                victim = self._youngest_committed_writer(admitted)
                if victim is None:
                    batch_items = dict(list(write_back.items())[: self.config.write_batch_size])
                    batch_items = {k: (v if v is not None else b"") for k, v in batch_items.items()}
                    break
                self.mvtso.abort(victim.record, AbortReason.BATCH_FULL, now_ms=now)
                write_back = self._collect_write_back(admitted)

        # Finalise commit status now that the shedding is done.
        committed_records: List[TransactionRecord] = []
        for active in sorted(admitted, key=lambda a: a.record.timestamp):
            record = active.record
            if record.status is TransactionStatus.COMMIT_REQUESTED and self.mvtso.can_commit(record):
                self.mvtso.commit(record, now_ms=now)
                committed_records.append(record)

        write_back = self._collect_write_back(admitted)
        batch_items = {k: (v if v is not None else b"")
                       for k, v in sorted(write_back.items())[: self.config.write_batch_size]}

        # Record version provenance for future epochs' reads: the value the
        # ORAM will return for each key is the one written by the latest
        # committed writer of this epoch.
        for active in sorted(admitted, key=lambda a: a.record.timestamp):
            record = active.record
            if record.status is not TransactionStatus.COMMITTED:
                continue
            for key in record.write_set:
                if key in batch_items:
                    self._last_writer_ts[key] = record.timestamp

        self.data_layer.execute_write_batch(batch_items, self.config.write_batch_size)
        state.write_batch_keys = sorted(batch_items)
        # Write-through replication: a live migration (``repro.elasticity``)
        # must re-copy every key this epoch rewrote; hand it the committed
        # values directly so its copy steps never pick up stale entries from
        # the epoch's read cache.
        if self._migration is not None:
            self._migration.observe_writes(batch_items)
        self.data_layer.flush()

        # Durability: the epoch is committed only once its metadata is logged.
        if self.recovery is not None:
            self._checkpoint(full=(state.epoch_id % self.config.checkpoint_frequency == 0))

        end_ms = self.clock.now_ms
        state.finish(EpochPhase.COMMITTED, end_ms)

        # Client notification.  A repaired transaction keeps reporting under
        # its original txn id (``result_txn_id``) even though its repaired
        # execution ran under a fresh MVTSO record.
        for active in admitted:
            record = active.record
            committed = record.status is TransactionStatus.COMMITTED
            result_txn_id = (record.txn_id if active.result_txn_id is None
                             else active.result_txn_id)
            repaired = active.repair_attempts > 0 and committed
            repair_failed = active.repair_attempts > 0 and not committed
            record.finish_time_ms = end_ms
            if committed:
                state.committed_txn_ids.append(record.txn_id)
                self.stats_committed += 1
                self.committed_history.append(CommittedTransaction.from_record(record))
                if repaired:
                    state.repaired_txn_ids.append(record.txn_id)
                    self.stats_repaired += 1
            else:
                state.aborted_txn_ids.append(record.txn_id)
                self.stats_aborted += 1
                if record.abort_reason is not None:
                    reason = record.abort_reason.value
                    state.aborts_by_reason[reason] = (
                        state.aborts_by_reason.get(reason, 0) + 1)
                if repair_failed:
                    state.repair_failed_txn_ids.append(record.txn_id)
                    self.stats_repair_failed += 1
            self.results[result_txn_id] = TransactionResult(
                txn_id=result_txn_id,
                committed=committed,
                return_value=active.return_value if committed else None,
                abort_reason=record.abort_reason.value if record.abort_reason else None,
                latency_ms=record.latency_ms(),
                epoch=state.epoch_id,
                repaired=repaired,
                repair_failed=repair_failed,
            )

        self.mvtso.reset_epoch_state()

    #: Abort reasons the in-epoch repair pass may attempt to fix (a late
    #: write hit a read marker, or a dependency aborted).  Anything else —
    #: epoch-boundary starvation, a full batch, a crash, a voluntary abort —
    #: would replay identically, so repair skips it.
    _REPAIRABLE_REASONS = (AbortReason.WRITE_CONFLICT, AbortReason.CASCADE)

    def _repair_conflict_losers(self, admitted: List[_ActiveTransaction],
                                state: EpochState, now: float) -> None:
        """In-epoch transaction repair: re-run conflict losers against the winners.

        For each admitted transaction that lost an MVTSO conflict (and only
        those — see ``_REPAIRABLE_REASONS``), record its conflict witness,
        then re-execute its program under a fresh MVTSO record.  The fresh
        record gets the epoch's highest timestamp, so its re-reads observe
        exactly the winning versions (aborted versions are invisible) and
        its writes cannot conflict with any read marker already placed.
        Re-execution is *cache-only*: every key the epoch fetched is still
        resident, and repair must not trigger new ORAM batches — the
        epoch's padded read schedule is already fixed.  A repair that needs
        an unfetched key aborts at the epoch boundary and the transaction
        falls back to the loop drivers' retry path (``repair_failed``).

        Each transaction gets at most one repair attempt per epoch, and the
        client keeps seeing the original txn id (``result_txn_id``); the
        committed history records the repaired execution, which is the one
        whose reads and writes actually took effect.
        """
        repaired_records: List[TransactionRecord] = []
        for active in sorted(admitted, key=lambda a: a.record.timestamp):
            old = active.record
            if old.status is not TransactionStatus.ABORTED:
                continue
            if old.abort_reason not in self._REPAIRABLE_REASONS:
                continue
            if active.repair_attempts > 0 or not callable(active.program):
                continue
            self.repair_witnesses.append(ConflictWitness.from_record(self.mvtso, old))
            active.repair_attempts += 1
            if active.result_txn_id is None:
                active.result_txn_id = old.txn_id
            fresh = self.mvtso.begin(state.epoch_id, now_ms=old.start_time_ms)
            fresh.start_time_ms = old.start_time_ms
            # The epoch is past admission (WRITE_BACK), so the record joins
            # the epoch's transaction table directly rather than via admit().
            state.transactions[fresh.txn_id] = fresh
            active.record = fresh
            active.generator = active.program()
            active.started = False
            active.finished = False
            active.waiting_keys = []
            active.waiting_multi = False
            active.pending_value = None
            active.has_pending_value = False
            active.return_value = None
            self._advance_transactions([active], state, final_round=True)
            if fresh.status is TransactionStatus.COMMIT_REQUESTED:
                repaired_records.append(fresh)
        if repaired_records:
            self._prepare_repaired(repaired_records)
            for record in repaired_records:
                if not self.mvtso.can_commit(record):
                    self.mvtso.abort(record, AbortReason.CASCADE, now_ms=now)
        # Repair work is ordinary concurrency-control CPU; charge it before
        # the commit timestamps are taken.
        self._charge_cc()

    def _prepare_repaired(self, records: List[TransactionRecord]) -> None:
        """Hook: pre-commit preparation for repaired transactions.

        The single proxy needs none.  The sharded proxy tier overrides this
        to run repaired records through the epoch-barrier vote, so their
        commit check carries per-worker votes like any other transaction's.
        """

    def _collect_write_back(self, admitted: List[_ActiveTransaction]) -> Dict[str, Optional[bytes]]:
        """Latest value per key among transactions that are still commit-eligible."""
        eligible = {}
        for active in sorted(admitted, key=lambda a: a.record.timestamp):
            record = active.record
            if record.status is TransactionStatus.ABORTED:
                continue
            for key, value in record.write_set.items():
                eligible[key] = value
        return eligible

    def _youngest_committed_writer(self, admitted: List[_ActiveTransaction]
                                   ) -> Optional[_ActiveTransaction]:
        """The youngest not-yet-aborted transaction that wrote something."""
        candidates = [a for a in admitted
                      if a.record.status is not TransactionStatus.ABORTED and a.record.write_set]
        if not candidates:
            return None
        return max(candidates, key=lambda a: a.record.timestamp)

    # ------------------------------------------------------------------ #
    # Durability / crash handling
    # ------------------------------------------------------------------ #
    def _checkpoint(self, full: bool) -> None:
        self.recovery.checkpoint_data_layer(
            epoch_id=self._epoch_counter - 1,
            data_layer=self.data_layer,
            full=full,
        )

    def crash(self) -> None:
        """Simulate a proxy crash: all volatile state is lost.

        An in-flight migration dies with the proxy: its next-generation
        layer was volatile until the cutover fence, so recovery lands on the
        pre-reshard topology (the engine restarts the migration afterwards).
        """
        self._crashed = True
        self._queue.clear()
        self.data_layer.abort_epoch()
        self._migration = None

    @property
    def crashed(self) -> bool:
        return self._crashed

    def _check_alive(self) -> None:
        if self._crashed:
            raise ProxyCrashedError("the proxy has crashed; recover() a new proxy first")

    # ------------------------------------------------------------------ #
    # Metrics helpers
    # ------------------------------------------------------------------ #
    def committed_count(self) -> int:
        return self.stats_committed

    def aborted_count(self) -> int:
        return self.stats_aborted

    def throughput_tps(self) -> float:
        """Committed transactions per simulated second so far."""
        elapsed_s = self.clock.now_s
        if elapsed_s <= 0:
            return 0.0
        return self.stats_committed / elapsed_s

    def average_latency_ms(self) -> float:
        latencies = [r.latency_ms for r in self.results.values() if r.committed]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)
