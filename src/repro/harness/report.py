"""Plain-text rendering of experiment results.

The benchmarks print these tables so a run of ``pytest benchmarks/
--benchmark-only`` regenerates, in text form, every figure and table of the
paper's evaluation section.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import Dict, Iterable, List, Optional, Sequence


def rows_to_dicts(rows: Sequence[object]) -> List[Dict[str, object]]:
    """Convert a list of dataclass rows (or dicts) to plain dictionaries."""
    out: List[Dict[str, object]] = []
    for row in rows:
        if is_dataclass(row):
            out.append(asdict(row))
        elif isinstance(row, dict):
            out.append(dict(row))
        else:
            raise TypeError(f"cannot render row of type {type(row).__name__}")
    return out


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(rows: Sequence[object], title: str = "",
                 columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as an aligned text table."""
    dicts = rows_to_dicts(rows)
    if not dicts:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = list(dicts[0].keys())
    table: List[List[str]] = [[str(c) for c in columns]]
    for row in dicts:
        table.append([_format_cell(row.get(c, "")) for c in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]

    def fmt(line: List[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(line))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(fmt(table[0]))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(fmt(line) for line in table[1:])
    return "\n".join(parts) + "\n"


def print_table(rows: Sequence[object], title: str = "",
                columns: Optional[Sequence[str]] = None) -> None:
    """Print a rendered table (convenience for benchmarks and examples)."""
    print(render_table(rows, title=title, columns=columns))
