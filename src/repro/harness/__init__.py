"""Experiment harness.

One function per figure/table of the paper's evaluation (§11).  Each function
returns plain data rows; :mod:`repro.harness.report` renders them as text
tables, and the ``benchmarks/`` suite wraps them in pytest-benchmark targets.
All results are in *simulated* time (see DESIGN.md).
"""

from repro.harness.experiments import (EndToEndRow, ParallelismRow, BatchSizeRow,
                                       DelayedVisibilityRow, EpochSizeOramRow,
                                       EpochSizeProxyRow, CheckpointFrequencyRow,
                                       RecoveryRow, ElasticityRow,
                                       run_end_to_end, run_parallelism,
                                       run_batch_size_sweep, run_delayed_visibility,
                                       run_epoch_size_oram, run_epoch_size_proxy,
                                       run_checkpoint_frequency, run_recovery_table,
                                       run_elasticity_comparison)
from repro.harness.report import render_table, rows_to_dicts

__all__ = [
    "EndToEndRow",
    "ParallelismRow",
    "BatchSizeRow",
    "DelayedVisibilityRow",
    "EpochSizeOramRow",
    "EpochSizeProxyRow",
    "CheckpointFrequencyRow",
    "RecoveryRow",
    "ElasticityRow",
    "run_end_to_end",
    "run_parallelism",
    "run_batch_size_sweep",
    "run_delayed_visibility",
    "run_epoch_size_oram",
    "run_epoch_size_proxy",
    "run_checkpoint_frequency",
    "run_recovery_table",
    "run_elasticity_comparison",
    "render_table",
    "rows_to_dicts",
]
