"""Cross-PR benchmark trajectory ledger.

Every benchmark that measures wall-clock cost used to overwrite its
``BENCH_*.json`` snapshot in place, so the *trajectory* of the numbers
across PRs — the whole point of tracking them — was lost.  This module
gives the benchmark suite one append-only ledger, ``BENCH_trajectory.json``
in the repository root: each run appends an entry keyed by benchmark name,
git SHA and scale, and a regression gate compares a fresh measurement
against the best recorded baseline for the same key.

Ledger format (one JSON document holding a list of entries)::

    {"entries": [
        {"bench": "smallbank-sharded-closed-loop",   # benchmark key
         "scale": "default",                          # scale key
         "git_sha": "cde1b34", "dirty": true,         # code under test
         "recorded_utc": "2026-08-08T …",             # wall-clock stamp
         "wall_s": 17.92,                             # measured seconds
         "repeats": 3,                                # median-of-N
         "metrics": {…},                              # bench-specific extras
         "results_signature": "sha256:…",             # RunStats repr digest
         "rebaseline": "…"},                          # optional: why results
        …]}                                           #   legitimately changed

The ``results_signature`` ties a wall-clock number to the *simulated*
outcome that produced it: two entries for the same (bench, scale) are only
comparable when their signatures match, which is exactly the acceptance bar
for the vectorised hot path — faster wall clock, byte-identical results.

A ``rebaseline`` marker records the one sanctioned way for a fixed-seed
signature to change: a correctness fix that alters what the simulation
*should* compute.  Drift detection restarts at the most recent marker
(:func:`entries_since_rebaseline`); earlier entries stay in the ledger as
history but no longer constrain fresh runs.

>>> import tempfile, os
>>> path = os.path.join(tempfile.mkdtemp(), "BENCH_trajectory.json")
>>> append_entry(path, "demo", wall_s=4.0, scale="smoke")["bench"]
'demo'
>>> _ = append_entry(path, "demo", wall_s=1.0, scale="smoke")
>>> best_baseline(load_entries(path), "demo", scale="smoke")["wall_s"]
1.0
>>> check_regression(path, "demo", wall_s=1.2, scale="smoke") is None
True
>>> check_regression(path, "demo", wall_s=2.0, scale="smoke")  # doctest: +ELLIPSIS
"bench 'demo' (scale 'smoke') regressed: ..."
"""

from __future__ import annotations

import hashlib
import json
import os
import statistics
import subprocess
import time
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_LEDGER",
    "append_entry",
    "best_baseline",
    "check_regression",
    "entries_since_rebaseline",
    "git_sha",
    "load_entries",
    "median_wall",
    "results_signature",
]

#: Default ledger location: ``BENCH_trajectory.json`` in the repository root.
DEFAULT_LEDGER = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))),
    "BENCH_trajectory.json")

#: A fresh measurement may be at most this factor slower than the best
#: recorded baseline before the regression gate fails (the ISSUE's 25%).
REGRESSION_THRESHOLD = 1.25


def git_sha(repo_root: Optional[str] = None) -> Tuple[str, bool]:
    """The repository's current commit (short SHA) and whether the tree is dirty.

    Falls back to ``("unknown", False)`` when git is unavailable — the
    ledger must stay usable from an exported tarball.
    """
    root = repo_root or os.path.dirname(DEFAULT_LEDGER)
    try:
        sha = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=root, capture_output=True, text=True,
                             timeout=10, check=True).stdout.strip()
        status = subprocess.run(["git", "status", "--porcelain"],
                                cwd=root, capture_output=True, text=True,
                                timeout=10, check=True).stdout.strip()
        return sha, bool(status)
    except (OSError, subprocess.SubprocessError):
        return "unknown", False


def results_signature(obj: Any) -> str:
    """Digest of a run's simulated outcome (``repr`` of its ``RunStats``).

    Fixed seeds make ``RunStats`` repr-deterministic, so the signature pins
    "same simulated results" across code changes without storing the whole
    repr in the ledger.
    """
    return "sha256:" + hashlib.sha256(repr(obj).encode("utf-8")).hexdigest()[:16]


def median_wall(fn: Callable[[], Any], repeats: int = 3) -> Tuple[float, Any]:
    """Median wall-clock seconds of ``repeats`` runs of ``fn``.

    Returns ``(median_seconds, last_result)``.  One-sample timings are what
    made the committed audit-overhead snapshot claim auditing was *faster*
    than bare; a median of three is cheap insurance against scheduler noise.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    walls: List[float] = []
    result: Any = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        walls.append(time.perf_counter() - started)
    return statistics.median(walls), result


def load_entries(path: str = DEFAULT_LEDGER) -> List[Dict[str, Any]]:
    """All recorded ledger entries (empty list when no ledger exists yet)."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    return list(payload.get("entries", []))


def append_entry(path: str, bench: str, wall_s: float, *,
                 scale: str = "default", repeats: int = 1,
                 metrics: Optional[Dict[str, Any]] = None,
                 signature: Optional[str] = None,
                 rebaseline: Optional[str] = None) -> Dict[str, Any]:
    """Append one measurement to the ledger and return the stored entry.

    Entries are never overwritten: the ledger is the history.  ``metrics``
    carries bench-specific numbers (simulated tps, committed count, …) and
    ``signature`` the :func:`results_signature` of the simulated outcome.
    ``rebaseline`` — a short human-readable reason — declares that the
    simulated results changed *on purpose* (a correctness fix); drift
    detection restarts at this entry.
    """
    sha, dirty = git_sha(os.path.dirname(os.path.abspath(path)))
    entry: Dict[str, Any] = {
        "bench": bench,
        "scale": scale,
        "git_sha": sha,
        "dirty": dirty,
        "recorded_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "wall_s": round(float(wall_s), 4),
        "repeats": int(repeats),
        "metrics": dict(metrics or {}),
    }
    if signature is not None:
        entry["results_signature"] = signature
    if rebaseline is not None:
        entry["rebaseline"] = rebaseline
    entries = load_entries(path)
    entries.append(entry)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"entries": entries}, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return entry


def entries_since_rebaseline(entries: List[Dict[str, Any]], bench: str, *,
                             scale: str = "default") -> List[Dict[str, Any]]:
    """The ``(bench, scale)`` entries from the latest re-baseline onward.

    Returns the suffix of matching entries starting at the most recent one
    carrying a ``rebaseline`` marker (inclusive); with no marker recorded,
    every matching entry.  This is the window a fresh run's results
    signature must agree with — entries before a declared re-baseline are
    history, not a constraint.

    >>> entries = [{"bench": "b", "scale": "s", "results_signature": "sha256:a"},
    ...            {"bench": "b", "scale": "s", "results_signature": "sha256:b",
    ...             "rebaseline": "fixed a lost update"},
    ...            {"bench": "b", "scale": "s", "results_signature": "sha256:b"}]
    >>> [e["results_signature"] for e in entries_since_rebaseline(entries, "b",
    ...                                                           scale="s")]
    ['sha256:b', 'sha256:b']
    """
    matching = [e for e in entries
                if e.get("bench") == bench and e.get("scale") == scale]
    for index in range(len(matching) - 1, -1, -1):
        if matching[index].get("rebaseline"):
            return matching[index:]
    return matching


def best_baseline(entries: List[Dict[str, Any]], bench: str, *,
                  scale: str = "default",
                  signature: Optional[str] = None) -> Optional[Dict[str, Any]]:
    """The fastest recorded entry for ``(bench, scale)``, or ``None``.

    When ``signature`` is given only entries with a matching results
    signature compete — a wall-clock comparison is only meaningful between
    runs that produced identical simulated results.
    """
    candidates = [e for e in entries
                  if e.get("bench") == bench and e.get("scale") == scale
                  and (signature is None
                       or e.get("results_signature") in (None, signature))]
    if not candidates:
        return None
    return min(candidates, key=lambda e: e["wall_s"])


def check_regression(path: str, bench: str, wall_s: float, *,
                     scale: str = "default",
                     signature: Optional[str] = None,
                     threshold: float = REGRESSION_THRESHOLD) -> Optional[str]:
    """Compare a fresh measurement against the best recorded baseline.

    Returns ``None`` when the measurement is within ``threshold`` (default
    25% slower) of the best recorded baseline for the same (bench, scale) —
    or when no baseline exists yet — and a human-readable failure message
    otherwise.
    """
    baseline = best_baseline(load_entries(path), bench, scale=scale,
                             signature=signature)
    if baseline is None:
        return None
    limit = baseline["wall_s"] * threshold
    if wall_s <= limit:
        return None
    return (f"bench {bench!r} (scale {scale!r}) regressed: {wall_s:.3f}s vs "
            f"best recorded {baseline['wall_s']:.3f}s at "
            f"{baseline['git_sha']} (limit {limit:.3f}s, "
            f"threshold {threshold:.2f}x)")
