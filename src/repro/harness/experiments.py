"""Experiment implementations: one function per figure/table of §11.

Every function accepts scale parameters so the same code serves both the
quick benchmark suite (small object counts, few transactions) and fuller
runs recorded in EXPERIMENTS.md.  All results are in simulated time.

==============  ====================================================
Figure 9a/9b    :func:`run_end_to_end`
Figure 10a      :func:`run_parallelism`
Figure 10b/10c  :func:`run_batch_size_sweep`
Figure 10d      :func:`run_delayed_visibility`
Figure 10e      :func:`run_epoch_size_oram`
Figure 10f      :func:`run_epoch_size_proxy`
Figure 11a      :func:`run_checkpoint_frequency`
Table 11b       :func:`run_recovery_table`
(open loop)     :func:`run_saturation_sweep`
(elasticity)    :func:`run_elasticity_comparison`
==============  ====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.api import EngineConfig, create_engine
from repro.core.config import ObladiConfig, RingOramConfig
from repro.oram.batch_executor import EpochBatchExecutor
from repro.oram.parameters import derive_parameters
from repro.oram.ring_oram import OramAccess, OramOp, RingOram
from repro.sim.clock import SimClock
from repro.sim.latency import BACKENDS, get_latency_model, wan_variant
from repro.storage.memory import InMemoryStorageServer
from repro.workloads.freehealth import FreeHealthConfig, FreeHealthWorkload
from repro.workloads.smallbank import SmallBankConfig, SmallBankWorkload
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #
DEFAULT_ORAM_OBJECTS = 100_000
MICROBENCH_Z = 16


def _build_executor(num_blocks: int, backend: str, parallelism: int = 1024,
                    buffer_writes: bool = True, charge_crypto: bool = True,
                    seed: int = 0):
    """An ORAM + epoch executor pair sized like the microbenchmarks (§11.2).

    The cipher is disabled (values are irrelevant to these experiments) but
    the *simulated* crypto cost is charged unless ``charge_crypto`` is False,
    matching the paper's Parallel vs ParallelCrypto distinction.
    """
    clock = SimClock()
    storage = InMemoryStorageServer(latency=backend, clock=clock, record_trace=False,
                                    charge_latency=False)
    params = derive_parameters(num_blocks=num_blocks, z_real=MICROBENCH_Z, block_size=64)
    from repro.oram.crypto import CipherSuite
    oram = RingOram(params, storage, cipher=CipherSuite(block_size=72, enabled=False),
                    clock=clock, seed=seed, dummiless_writes=True)
    executor = EpochBatchExecutor(oram, latency=backend, parallelism=parallelism,
                                  buffer_writes=buffer_writes, charge_crypto=charge_crypto)
    return oram, executor


def _workload_objects(name: str, scale: float = 1.0):
    """Build a workload instance at a fraction of the paper's scale."""
    if name == "tpcc":
        # The paper always runs 10 warehouses; scale shrinks the per-district
        # populations (customers, items) but keeps the contention structure.
        return TPCCWorkload(TPCCConfig(
            warehouses=10,
            districts_per_warehouse=10,
            customers_per_district=max(3, int(30 * scale)),
            items=max(20, int(1000 * scale)),
            seed=7,
        ))
    if name == "smallbank":
        return SmallBankWorkload(SmallBankConfig(
            num_accounts=max(100, int(10_000 * scale)), seed=7))
    if name == "freehealth":
        return FreeHealthWorkload(FreeHealthConfig(
            num_patients=max(50, int(2000 * scale)),
            num_drugs=max(20, int(200 * scale)), seed=7))
    raise KeyError(f"unknown application {name!r}")


# --------------------------------------------------------------------------- #
# Figure 9: end-to-end application performance
# --------------------------------------------------------------------------- #
@dataclass
class EndToEndRow:
    """One bar of Figures 9a/9b."""

    application: str
    system: str
    throughput_tps: float
    mean_latency_ms: float
    committed: int
    aborted: int
    abort_rate: float


#: Systems evaluated in Figure 9 and the storage backend each one uses.
END_TO_END_SYSTEMS = ("obladi", "nopriv", "mysql", "obladi_wan", "nopriv_wan")


def _obladi_config_for(app: str, num_blocks: int, backend: str,
                       encrypt: bool, clients: int = 16) -> ObladiConfig:
    """Configure Obladi for an application the way §6.4 prescribes.

    Batch sizes are provisioned from the expected concurrent load: the read
    capacity must cover each client's reads per round and the write batch the
    epoch's committed write set.  TPC-C gets deep epochs and a large write
    batch; FreeHealth a small write batch; SmallBank shallow epochs.
    """
    oram = RingOramConfig(num_blocks=num_blocks, z_real=32, block_size=384)
    per_round_reads = {"tpcc": 12, "smallbank": 3, "freehealth": 4, "ycsb": 4}
    writes_per_txn = {"tpcc": 14, "smallbank": 2, "freehealth": 2, "ycsb": 2}
    profile = app if app in per_round_reads else "ycsb"
    read_batch = max(32, clients * per_round_reads[profile])
    write_batch = max(32, clients * writes_per_txn[profile])
    return ObladiConfig.for_workload(profile, num_blocks=num_blocks, backend=backend,
                                     oram=oram, durability=True, encrypt=encrypt,
                                     checkpoint_frequency=8,
                                     read_batch_size=read_batch,
                                     write_batch_size=write_batch)


def run_end_to_end(applications: Sequence[str] = ("tpcc", "freehealth", "smallbank"),
                   systems: Sequence[str] = END_TO_END_SYSTEMS,
                   transactions: int = 256, clients: int = 64, scale: float = 0.1,
                   encrypt: bool = False, seed: int = 7) -> List[EndToEndRow]:
    """Figure 9a/9b: throughput and latency of every system on every application.

    ``scale`` shrinks the database populations relative to the paper (whose
    EC2 deployment used full TPC-C scale and one million SmallBank accounts);
    the relative ordering of the systems is what the experiment reproduces.
    """
    rows: List[EndToEndRow] = []
    for app in applications:
        for system in systems:
            workload = _workload_objects(app, scale)
            data = workload.initial_data()
            wan = system.endswith("_wan")
            backend = "server_wan" if wan else "server"

            if system.startswith("obladi"):
                engine = create_engine("obladi", _obladi_config_for(
                    app, num_blocks=max(len(data) * 2, 2048),
                    backend=backend, encrypt=encrypt, clients=clients))
            elif system.startswith("nopriv"):
                engine = create_engine("nopriv", EngineConfig(backend=backend, seed=seed))
            elif system == "mysql":
                # MySQL in the paper runs locally, so it never sees the WAN.
                engine = create_engine("mysql", EngineConfig(backend="server", seed=seed))
            else:
                raise KeyError(f"unknown system {system!r}")

            engine.load_initial_data(data)
            run = engine.run_closed_loop(workload.transaction_factory,
                                         total_transactions=transactions,
                                         clients=clients)

            rows.append(EndToEndRow(
                application=app,
                system=system,
                throughput_tps=run.throughput_tps,
                mean_latency_ms=run.average_latency_ms,
                committed=run.committed,
                aborted=run.aborted,
                abort_rate=run.abort_rate,
            ))
    return rows


# --------------------------------------------------------------------------- #
# Figure 10a: parallelism
# --------------------------------------------------------------------------- #
@dataclass
class ParallelismRow:
    """One bar of Figure 10a (throughput of a 500-op batch)."""

    backend: str
    mode: str                    # sequential / parallel / parallel_crypto
    throughput_ops_per_s: float
    elapsed_ms: float


def _run_sequential_ops(num_blocks: int, backend: str, operations: int,
                        charge_crypto: bool, seed: int = 0) -> float:
    """Simulated duration of ``operations`` sequential Ring ORAM accesses."""
    clock = SimClock()
    storage = InMemoryStorageServer(latency=backend, clock=clock, record_trace=False,
                                    charge_latency=True)
    params = derive_parameters(num_blocks=num_blocks, z_real=MICROBENCH_Z, block_size=64)
    from repro.oram.crypto import CipherSuite
    oram = RingOram(params, storage,
                    cipher=CipherSuite(block_size=72, enabled=False),
                    clock=clock, seed=seed, charge_crypto=charge_crypto)
    rng = random.Random(seed)
    start = clock.now_ms
    for _ in range(operations):
        block = rng.randrange(num_blocks)
        oram.access(OramAccess(OramOp.READ, block))
    return clock.now_ms - start


def _run_parallel_ops(num_blocks: int, backend: str, operations: int, batch_size: int,
                      charge_crypto: bool, buffer_writes: bool = True,
                      batches_per_epoch: int = 1, seed: int = 0) -> float:
    """Simulated duration of ``operations`` accesses through the epoch executor."""
    oram, executor = _build_executor(num_blocks, backend, charge_crypto=charge_crypto,
                                     buffer_writes=buffer_writes, seed=seed)
    rng = random.Random(seed)
    clock = oram.clock
    start = clock.now_ms
    remaining = operations
    while remaining > 0:
        executor.begin_epoch()
        for _ in range(batches_per_epoch):
            if remaining <= 0:
                break
            count = min(batch_size, remaining)
            block_ids = [rng.randrange(num_blocks) for _ in range(count)]
            executor.execute_read_batch(block_ids, batch_size=count)
            remaining -= count
        executor.flush_epoch()
    return clock.now_ms - start


def run_parallelism(backends: Sequence[str] = ("dummy", "server", "server_wan", "dynamo"),
                    batch_size: int = 500, operations: int = 500,
                    num_blocks: int = DEFAULT_ORAM_OBJECTS,
                    modes: Sequence[str] = ("sequential", "parallel", "parallel_crypto"),
                    ) -> List[ParallelismRow]:
    """Figure 10a: sequential vs parallel ORAM throughput per backend."""
    rows: List[ParallelismRow] = []
    for backend in backends:
        for mode in modes:
            if mode == "sequential":
                elapsed = _run_sequential_ops(num_blocks, backend, operations,
                                              charge_crypto=True)
            elif mode == "parallel":
                elapsed = _run_parallel_ops(num_blocks, backend, operations, batch_size,
                                            charge_crypto=False)
            elif mode == "parallel_crypto":
                elapsed = _run_parallel_ops(num_blocks, backend, operations, batch_size,
                                            charge_crypto=True)
            else:
                raise KeyError(f"unknown mode {mode!r}")
            throughput = operations * 1000.0 / elapsed if elapsed > 0 else float("inf")
            rows.append(ParallelismRow(backend=backend, mode=mode,
                                       throughput_ops_per_s=throughput,
                                       elapsed_ms=elapsed))
    return rows


# --------------------------------------------------------------------------- #
# Figures 10b/10c: batch size sweep
# --------------------------------------------------------------------------- #
@dataclass
class BatchSizeRow:
    """One point of Figures 10b (throughput) and 10c (latency)."""

    backend: str
    batch_size: int
    throughput_ops_per_s: float
    latency_ms: float


def run_batch_size_sweep(backends: Sequence[str] = ("dummy", "server", "server_wan", "dynamo"),
                         batch_sizes: Sequence[int] = (1, 10, 100, 500, 1000, 2000),
                         num_blocks: int = DEFAULT_ORAM_OBJECTS,
                         min_operations: int = 600) -> List[BatchSizeRow]:
    """Figures 10b/10c: throughput and latency vs batch size.

    Each configuration executes at least ``min_operations`` logical reads so
    the deterministic eviction work is represented in every data point (a
    single tiny batch would otherwise dodge evictions entirely and look
    artificially fast); latency is the average duration of one batch
    (dispatch to flush).
    """
    rows: List[BatchSizeRow] = []
    for backend in backends:
        for batch_size in batch_sizes:
            oram, executor = _build_executor(num_blocks, backend, charge_crypto=True)
            rng = random.Random(1)
            clock = oram.clock
            batches = max(1, -(-min_operations // batch_size))
            total_ops = 0
            start = clock.now_ms
            for _ in range(batches):
                executor.begin_epoch()
                block_ids = [rng.randrange(num_blocks) for _ in range(batch_size)]
                executor.execute_read_batch(block_ids, batch_size=batch_size)
                executor.flush_epoch()
                total_ops += batch_size
            elapsed = clock.now_ms - start
            latency = elapsed / batches
            throughput = total_ops * 1000.0 / elapsed if elapsed > 0 else float("inf")
            rows.append(BatchSizeRow(backend=backend, batch_size=batch_size,
                                     throughput_ops_per_s=throughput, latency_ms=latency))
    return rows


# --------------------------------------------------------------------------- #
# Figure 10d: delayed visibility (write buffering)
# --------------------------------------------------------------------------- #
@dataclass
class DelayedVisibilityRow:
    """One bar pair of Figure 10d."""

    backend: str
    mode: str                    # "normal" (immediate write-back) or "write_back"
    throughput_ops_per_s: float


def run_delayed_visibility(backends: Sequence[str] = ("dummy", "server", "server_wan", "dynamo"),
                           batch_size: int = 200, batches_per_epoch: int = 8,
                           num_blocks: int = DEFAULT_ORAM_OBJECTS) -> List[DelayedVisibilityRow]:
    """Figure 10d: effect of buffering bucket writes until the epoch ends."""
    operations = batch_size * batches_per_epoch
    rows: List[DelayedVisibilityRow] = []
    for backend in backends:
        for mode, buffer_writes in (("normal", False), ("write_back", True)):
            elapsed = _run_parallel_ops(num_blocks, backend, operations, batch_size,
                                        charge_crypto=True, buffer_writes=buffer_writes,
                                        batches_per_epoch=batches_per_epoch)
            throughput = operations * 1000.0 / elapsed if elapsed > 0 else float("inf")
            rows.append(DelayedVisibilityRow(backend=backend, mode=mode,
                                             throughput_ops_per_s=throughput))
    return rows


# --------------------------------------------------------------------------- #
# Figure 10e: epoch size impact on the ORAM
# --------------------------------------------------------------------------- #
@dataclass
class EpochSizeOramRow:
    """One point of Figure 10e (relative throughput vs batches per epoch)."""

    backend: str
    batches_per_epoch: int
    throughput_ops_per_s: float
    relative_increase: float


def run_epoch_size_oram(backends: Sequence[str] = ("dummy", "server", "server_wan", "dynamo"),
                        batch_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
                        batch_size: int = 200,
                        num_blocks: int = DEFAULT_ORAM_OBJECTS) -> List[EpochSizeOramRow]:
    """Figure 10e: larger epochs buffer more buckets locally and reduce I/O."""
    rows: List[EpochSizeOramRow] = []
    for backend in backends:
        base_throughput: Optional[float] = None
        for batches in batch_counts:
            operations = batch_size * batches * 2
            elapsed = _run_parallel_ops(num_blocks, backend, operations, batch_size,
                                        charge_crypto=True, buffer_writes=True,
                                        batches_per_epoch=batches)
            throughput = operations * 1000.0 / elapsed if elapsed > 0 else float("inf")
            if base_throughput is None:
                base_throughput = throughput
            rows.append(EpochSizeOramRow(
                backend=backend, batches_per_epoch=batches,
                throughput_ops_per_s=throughput,
                relative_increase=throughput / base_throughput if base_throughput else 1.0))
    return rows


# --------------------------------------------------------------------------- #
# Figure 10f: epoch size impact on the proxy (applications)
# --------------------------------------------------------------------------- #
@dataclass
class EpochSizeProxyRow:
    """One point of Figure 10f."""

    application: str
    epoch_ms: float
    read_batches: int
    throughput_tps: float
    abort_rate: float


def run_epoch_size_proxy(applications: Sequence[str] = ("smallbank", "freehealth", "tpcc"),
                         epoch_sizes_ms: Sequence[float] = (25, 50, 75, 100, 125, 150),
                         batch_interval_ms: float = 25.0,
                         transactions: int = 80, clients: int = 12,
                         scale: float = 0.05, encrypt: bool = False) -> List[EpochSizeProxyRow]:
    """Figure 10f: application throughput as a function of the epoch length.

    The epoch length maps to the number of read batches it contains
    (``epoch_ms / batch_interval_ms``): epochs too short abort transactions
    that need more rounds; epochs too long leave the proxy idle.
    """
    rows: List[EpochSizeProxyRow] = []
    for app in applications:
        for epoch_ms in epoch_sizes_ms:
            read_batches = max(1, int(round(epoch_ms / batch_interval_ms)))
            workload = _workload_objects(app, scale)
            data = workload.initial_data()
            config = _obladi_config_for(app, num_blocks=max(len(data) * 2, 2048),
                                        backend="server", encrypt=encrypt, clients=clients)
            from dataclasses import replace
            config = replace(config, read_batches=read_batches,
                             batch_interval_ms=batch_interval_ms, durability=False)
            engine = create_engine("obladi", config)
            engine.load_initial_data(data)
            run = engine.run_closed_loop(workload.transaction_factory,
                                         total_transactions=transactions, clients=clients)
            rows.append(EpochSizeProxyRow(application=app, epoch_ms=epoch_ms,
                                          read_batches=read_batches,
                                          throughput_tps=run.throughput_tps,
                                          abort_rate=run.abort_rate))
    return rows


# --------------------------------------------------------------------------- #
# Open-loop saturation sweep (offered load vs latency/throughput)
# --------------------------------------------------------------------------- #
@dataclass
class SaturationRow:
    """One offered-load point of an open-loop saturation sweep."""

    engine: str
    rate_multiplier: float        # offered rate as a fraction of the ceiling
    target_rate_tps: float        # the configured arrival rate
    offered_tps: float            # measured arrivals / elapsed (service-bound
                                  # once a backlog forms, so it plateaus too)
    achieved_tps: float
    mean_total_latency_ms: float  # queueing delay + service latency
    p95_total_latency_ms: float
    p99_total_latency_ms: float
    mean_queue_delay_ms: float
    max_queue_depth: int
    dropped: int
    abort_rate: float
    closed_loop_tps: float        # the engine's closed-loop ceiling
    closed_loop_latency_ms: float
    audit_ok: bool = True         # streaming serializability verdict
    audit_max_retained: int = 0   # auditor's retained-node high-water mark


def _saturation_engine(kind: str, clients: int, shards: int, proxy_workers: int,
                       num_accounts: int, seed: int,
                       conflict_strategy: Optional[str] = None):
    """A small, fast engine sized so ``clients`` fit in one epoch wave."""
    config = (EngineConfig()
              .with_workload("smallbank")
              .with_backend("server")
              .with_oram(num_blocks=max(2048, 2 * num_accounts), z_real=8,
                         block_size=192)
              .with_batching(read_batches=3, read_batch_size=2 * clients,
                             write_batch_size=2 * clients,
                             batch_interval_ms=2.0)
              .with_sharding(shards)
              .with_proxy_workers(proxy_workers)
              .with_durability(False)
              .with_encryption(False)
              .with_seed(seed))
    if conflict_strategy is not None:
        config = config.with_conflict_strategy(conflict_strategy)
    return create_engine(kind, config)


def run_saturation_sweep(kinds: Sequence[str] = ("obladi", "nopriv"),
                         rate_multipliers: Sequence[float] = (0.05, 0.5, 2.0, 4.0),
                         transactions: int = 96, clients: int = 16,
                         num_accounts: int = 400, shards: int = 1,
                         proxy_workers: int = 1, arrival_seed: int = 7,
                         seed: int = 11) -> List[SaturationRow]:
    """Open-loop saturation sweep: offered load as a fraction of capacity.

    For each engine kind the sweep first measures the *closed-loop ceiling*
    (``run_closed_loop`` with ``clients`` slots — the service capacity an
    open loop cannot exceed), then offers seeded-Poisson arrivals at
    ``multiplier x ceiling`` for each multiplier and records achieved
    throughput and queue-inclusive latency.  Below the knee
    (``multiplier < 1``) latency should sit near the closed-loop latency;
    past it, queueing delay grows with the multiplier while achieved
    throughput plateaus at the ceiling — the open-loop shape of the paper's
    Figure 9 latency/throughput trade-off.

    Every open-loop point runs with a streaming serializability auditor
    attached (:class:`repro.audit.AuditingObserver`), so each row also
    certifies its own history (``audit_ok``) and records the auditor's
    bounded-memory high-water mark (``audit_max_retained``).

    An epoch-batched engine adds ~half an epoch of queueing at *any* rate
    above one arrival per epoch (the pipeline never idles, and an arrival
    waits out the in-flight epoch), so the default sweep's lowest point is
    sparse enough (5% of the ceiling) that arrivals usually find the
    system idle — that is the regime where open-loop latency genuinely
    approaches the closed-loop number.
    """
    from repro.api.openloop import PoissonArrivals
    from repro.audit import AuditingObserver

    rows: List[SaturationRow] = []
    for kind in kinds:
        workload = SmallBankWorkload(SmallBankConfig(num_accounts=num_accounts,
                                                     seed=seed))
        engine = _saturation_engine(kind, clients, shards, proxy_workers,
                                    num_accounts, seed)
        engine.load_initial_data(workload.initial_data())
        ceiling = engine.run_closed_loop(workload.transaction_factory,
                                         total_transactions=transactions,
                                         clients=clients)

        for multiplier in rate_multipliers:
            workload = SmallBankWorkload(SmallBankConfig(num_accounts=num_accounts,
                                                         seed=seed))
            engine = _saturation_engine(kind, clients, shards, proxy_workers,
                                        num_accounts, seed)
            engine.load_initial_data(workload.initial_data())
            engine.attach_observer(AuditingObserver())
            rate = max(1e-6, multiplier * ceiling.throughput_tps)
            run = engine.run_open_loop(workload.transaction_factory,
                                       total_transactions=transactions,
                                       arrivals=PoissonArrivals(rate, seed=arrival_seed),
                                       clients=clients)
            audit = run.audit
            rows.append(SaturationRow(
                engine=kind,
                rate_multiplier=multiplier,
                target_rate_tps=rate,
                offered_tps=run.offered_tps,
                achieved_tps=run.achieved_tps,
                mean_total_latency_ms=run.average_total_latency_ms,
                p95_total_latency_ms=run.p95_total_latency_ms,
                p99_total_latency_ms=run.p99_total_latency_ms,
                mean_queue_delay_ms=run.average_queue_delay_ms,
                max_queue_depth=run.max_queue_depth,
                dropped=run.dropped,
                abort_rate=run.abort_rate,
                closed_loop_tps=ceiling.throughput_tps,
                closed_loop_latency_ms=ceiling.average_latency_ms,
                audit_ok=audit.ok if audit is not None else True,
                audit_max_retained=(audit.max_retained_nodes
                                    if audit is not None else 0),
            ))
    return rows


# --------------------------------------------------------------------------- #
# Conflict resolution: retry vs repair at the contention knee
# --------------------------------------------------------------------------- #
@dataclass
class RepairComparisonRow:
    """One strategy x offered-load point of the retry-vs-repair knee sweep."""

    strategy: str                 # "retry" or "repair"
    rate_multiplier: float        # offered rate as a fraction of the ceiling
    target_rate_tps: float
    achieved_tps: float
    committed: int
    aborted: int
    retries: int
    repaired: int                 # conflict losers salvaged in-epoch
    repair_failed: int            # repair attempts that still aborted
    wasted_attempts: int          # discarded work (aborts + failed repairs)
    abort_rate: float
    mean_total_latency_ms: float
    closed_loop_tps: float        # this strategy's own closed-loop ceiling
    audit_ok: bool = True         # streaming serializability verdict


def run_repair_comparison(rate_multipliers: Sequence[float] = (1.0, 2.0, 4.0),
                          transactions: int = 96, clients: int = 16,
                          num_accounts: int = 400,
                          hotspot_probability: float = 0.9,
                          shards: int = 1, proxy_workers: int = 1,
                          arrival_seed: int = 7, seed: int = 11,
                          workload: str = "smallbank") -> List[RepairComparisonRow]:
    """Head-to-head retry vs repair on a contended workload at the knee.

    Reuses the saturation-sweep method (closed-loop ceiling first, then
    seeded-Poisson arrivals at ``multiplier x ceiling``) but pins the
    workload to a contended shape — ``workload="smallbank"`` puts
    ``hotspot_probability`` of operations on the hot 10% of accounts;
    ``workload="ycsb"`` draws keys Zipfian(0.99) over ``num_accounts``
    records — so MVTSO conflicts dominate, and runs every point twice:
    once under ``conflict_strategy="retry"`` (losers re-queue through
    backoff and re-execute from scratch) and once under ``"repair"``
    (losers re-execute against the winning versions inside the epoch that
    detected the conflict).  At and past the knee the retry path
    amplifies hotspot work — every loser's full re-execution conflicts
    again with high probability — while repair resolves most losers
    within their epoch; the rows expose exactly that difference through
    ``repaired`` / ``wasted_attempts`` / ``achieved_tps``.

    Every open-loop point runs with a streaming serializability auditor
    attached, so each row certifies its own (possibly repaired) history.
    """
    from repro.api.openloop import PoissonArrivals
    from repro.audit import AuditingObserver

    def hotspot_workload():
        if workload == "ycsb":
            return YCSBWorkload(YCSBConfig(
                num_records=num_accounts, distribution="zipfian",
                zipfian_theta=0.99, read_proportion=0.3,
                update_proportion=0.7, seed=seed))
        if workload != "smallbank":
            raise ValueError(f"unknown workload {workload!r}; "
                             f"expected 'smallbank' or 'ycsb'")
        return SmallBankWorkload(SmallBankConfig(
            num_accounts=num_accounts,
            hotspot_probability=hotspot_probability, seed=seed))

    rows: List[RepairComparisonRow] = []
    for strategy in ("retry", "repair"):
        load = hotspot_workload()
        engine = _saturation_engine("obladi", clients, shards, proxy_workers,
                                    num_accounts, seed,
                                    conflict_strategy=strategy)
        engine.load_initial_data(load.initial_data())
        ceiling = engine.run_closed_loop(load.transaction_factory,
                                         total_transactions=transactions,
                                         clients=clients)

        for multiplier in rate_multipliers:
            load = hotspot_workload()
            engine = _saturation_engine("obladi", clients, shards,
                                        proxy_workers, num_accounts, seed,
                                        conflict_strategy=strategy)
            engine.load_initial_data(load.initial_data())
            engine.attach_observer(AuditingObserver())
            rate = max(1e-6, multiplier * ceiling.throughput_tps)
            run = engine.run_open_loop(load.transaction_factory,
                                       total_transactions=transactions,
                                       arrivals=PoissonArrivals(rate, seed=arrival_seed),
                                       clients=clients)
            audit = run.audit
            rows.append(RepairComparisonRow(
                strategy=strategy,
                rate_multiplier=multiplier,
                target_rate_tps=rate,
                achieved_tps=run.achieved_tps,
                committed=run.committed,
                aborted=run.aborted,
                retries=run.retries,
                repaired=run.repaired,
                repair_failed=run.repair_failed,
                wasted_attempts=run.wasted_attempts,
                abort_rate=run.abort_rate,
                mean_total_latency_ms=run.average_total_latency_ms,
                closed_loop_tps=ceiling.throughput_tps,
                audit_ok=audit.ok if audit is not None else True,
            ))
    return rows


# --------------------------------------------------------------------------- #
# Figure 11a: checkpoint frequency
# --------------------------------------------------------------------------- #
@dataclass
class CheckpointFrequencyRow:
    """One point of Figure 11a."""

    backend: str
    checkpoint_frequency: int
    throughput_ops_per_s: float


def run_checkpoint_frequency(frequencies: Sequence[int] = (1, 4, 16, 64, 256),
                             backends: Sequence[str] = ("server", "server_wan", "dynamo"),
                             num_records: int = 2000, transactions: int = 60,
                             clients: int = 12, ops_per_transaction: int = 4
                             ) -> List[CheckpointFrequencyRow]:
    """Figure 11a: delta checkpoints amortise the cost of durability."""
    rows: List[CheckpointFrequencyRow] = []
    for backend in backends:
        for frequency in frequencies:
            ycsb = YCSBWorkload(YCSBConfig(num_records=num_records,
                                           ops_per_transaction=ops_per_transaction, seed=3))
            data = ycsb.initial_data()
            config = ObladiConfig.for_workload("ycsb", num_blocks=num_records * 2,
                                               backend=backend,
                                               oram=RingOramConfig(num_blocks=num_records * 2,
                                                                   z_real=32, block_size=192),
                                               durability=True, encrypt=False,
                                               checkpoint_frequency=frequency,
                                               read_batch_size=clients * ops_per_transaction,
                                               write_batch_size=clients * ops_per_transaction)
            engine = create_engine("obladi", config)
            engine.load_initial_data(data)
            run = engine.run_closed_loop(ycsb.transaction_factory,
                                         total_transactions=transactions, clients=clients)
            ops = run.committed * ops_per_transaction
            tput = ops * 1000.0 / run.elapsed_ms if run.elapsed_ms > 0 else 0.0
            rows.append(CheckpointFrequencyRow(backend=backend, checkpoint_frequency=frequency,
                                               throughput_ops_per_s=tput))
    return rows


# --------------------------------------------------------------------------- #
# Table 11b: recovery
# --------------------------------------------------------------------------- #
@dataclass
class RecoveryRow:
    """One column of Table 11b."""

    num_objects: int
    tree_levels: int
    durability_slowdown: float
    recovery_time_ms: float
    network_ms: float
    position_ms: float
    permutation_ms: float
    paths_ms: float


def _ycsb_obladi_run(num_records: int, durability: bool, backend: str,
                     transactions: int, clients: int, checkpoint_frequency: int = 4):
    ycsb = YCSBWorkload(YCSBConfig(num_records=num_records, ops_per_transaction=4, seed=5))
    data = ycsb.initial_data()
    config = ObladiConfig.for_workload("ycsb", num_blocks=num_records * 2, backend=backend,
                                       oram=RingOramConfig(num_blocks=num_records * 2,
                                                           z_real=32, block_size=192),
                                       durability=durability, encrypt=False,
                                       checkpoint_frequency=checkpoint_frequency,
                                       read_batch_size=clients * 4,
                                       write_batch_size=clients * 4)
    engine = create_engine("obladi", config)
    engine.load_initial_data(data)
    run = engine.run_closed_loop(ycsb.transaction_factory,
                                 total_transactions=transactions, clients=clients)
    return engine, config, run


def run_recovery_table(sizes: Sequence[int] = (1_000, 10_000, 100_000),
                       backend: str = "server_wan", transactions: int = 40,
                       clients: int = 10) -> List[RecoveryRow]:
    """Table 11b: durability slowdown and recovery-time breakdown vs ORAM size."""
    rows: List[RecoveryRow] = []
    for size in sizes:
        # Normal-execution slowdown: with vs without durability.
        _engine_off, _cfg, run_off = _ycsb_obladi_run(size, durability=False, backend=backend,
                                                      transactions=transactions, clients=clients)
        engine_on, _config_on, run_on = _ycsb_obladi_run(size, durability=True, backend=backend,
                                                         transactions=transactions, clients=clients)
        slowdown = (run_on.throughput_tps / run_off.throughput_tps
                    if run_off.throughput_tps > 0 else 0.0)

        # Crash the durable proxy mid-epoch and recover it.
        ycsb = YCSBWorkload(YCSBConfig(num_records=size, ops_per_transaction=4, seed=11))
        proxy_on = engine_on.proxy
        for _ in range(clients):
            proxy_on.submit(ycsb.transaction_factory())
        from repro.core.errors import ProxyCrashedError
        from repro.recovery.crash import CrashInjector, CrashPoint
        injector = CrashInjector(proxy_on, crash_after_batches=0,
                                 point=CrashPoint.AFTER_READ_BATCH)
        injector.arm()
        try:
            proxy_on.run_epoch()
        except ProxyCrashedError:
            pass
        result = engine_on.recover()
        levels = engine_on.proxy.oram.params.depth
        rows.append(RecoveryRow(
            num_objects=size,
            tree_levels=levels,
            durability_slowdown=slowdown,
            recovery_time_ms=result.total_ms,
            network_ms=result.network_ms,
            position_ms=result.position_ms,
            permutation_ms=result.permutation_ms,
            paths_ms=result.paths_ms,
        ))
    return rows


# --------------------------------------------------------------------------- #
# Elastic topologies: autoscaled vs static under a flash crowd
# --------------------------------------------------------------------------- #
@dataclass
class ElasticityRow:
    """One run of the flash-crowd elasticity comparison."""

    mode: str                     # "static" or "autoscaled"
    offered: int                  # arrivals the flash-crowd process generated
    dropped: int                  # arrivals turned away by the bounded queue
    committed: int
    achieved_tps: float
    mean_total_latency_ms: float  # queueing delay + service latency
    p95_total_latency_ms: float
    max_queue_depth: int
    epochs: int
    reshards: int                 # completed migration windows
    scale_ups: int                # controller decisions, by direction
    scale_downs: int
    final_topology: tuple         # (shards, storage_servers, proxy_workers)
    audit_ok: bool = True         # streaming serializability verdict


def _elasticity_engine(topology, clients: int, num_accounts: int, seed: int,
                       cc_op_ms: float = 0.2, autoscale=None):
    """A small Obladi engine at ``topology``, optionally autoscaled.

    ``cc_op_ms`` makes epochs proxy-CPU-bound (the seed charges no CC CPU),
    so a rung with more proxy workers genuinely serves more load — the axis
    the autoscale ladder climbs.
    """
    shards, storage_servers, proxy_workers = topology
    config = (EngineConfig()
              .with_workload("smallbank")
              .with_backend("server")
              .with_oram(num_blocks=max(2048, 2 * num_accounts), z_real=8,
                         block_size=192)
              .with_batching(read_batches=3, read_batch_size=2 * clients,
                             write_batch_size=2 * clients,
                             batch_interval_ms=2.0)
              .with_sharding(shards)
              .with_storage_servers(storage_servers)
              .with_proxy_workers(proxy_workers)
              .with_cc_cost(cc_op_ms)
              .with_durability(False)
              .with_encryption(False)
              .with_seed(seed))
    if autoscale is not None:
        config = config.with_autoscale(autoscale)
    return create_engine("obladi", config)


def run_elasticity_comparison(transactions: int = 900, clients: int = 16,
                              num_accounts: int = 200,
                              base_tps: float = 150.0,
                              spike_tps: float = 1100.0,
                              spike_start_ms: float = 200.0,
                              spike_duration_ms: float = 5000.0,
                              queue_limit: int = 48,
                              cc_op_ms: float = 0.2,
                              arrival_seed: int = 7, seed: int = 11,
                              ladder=((1, 1, 1), (4, 1, 4)),
                              queue_high: int = 24, queue_low: int = 2,
                              patience: int = 2, cooldown: int = 4
                              ) -> List[ElasticityRow]:
    """Flash crowd, twice: once static at the ladder's bottom rung, once with
    the autoscaling control loop attached (``repro.elasticity``).

    Both runs offer the *identical* seeded flash-crowd arrival stream
    (:class:`~repro.elasticity.FlashCrowdArrivals`: ``base_tps`` background
    load, a ``spike_tps`` rectangular spike from ``spike_start_ms`` for
    ``spike_duration_ms``) through the same bounded admission queue, with
    ``cc_op_ms`` of concurrency-control CPU per MVTSO operation so epochs
    are proxy-CPU-bound and the ladder's larger rung genuinely serves more
    load.  The static engine stays at the bottom rung and sheds the spike
    as drops once the queue fills; the autoscaled engine's controller sees
    the same pressure, live-reshards up the ladder (an oblivious migration
    window followed by an epoch-barrier cutover), and serves the remainder
    of the spike at the larger topology — strictly fewer drops and at least
    the static engine's achieved throughput, which is the acceptance bar
    ``benchmarks/test_elasticity_smoke.py`` pins.

    Both runs carry a streaming serializability auditor, so each row also
    certifies its own history across any migration windows it contains.
    """
    from repro.audit import AuditingObserver
    from repro.elasticity import AutoscalePolicy, FlashCrowdArrivals

    arrivals = FlashCrowdArrivals(base_tps=base_tps,
                                  spike_tps=spike_tps,
                                  spike_start_ms=spike_start_ms,
                                  spike_duration_ms=spike_duration_ms,
                                  seed=arrival_seed)
    policy = AutoscalePolicy(ladder=ladder, queue_high=queue_high,
                             queue_low=queue_low, patience=patience,
                             cooldown=cooldown)

    rows: List[ElasticityRow] = []
    for mode in ("static", "autoscaled"):
        workload = SmallBankWorkload(SmallBankConfig(num_accounts=num_accounts,
                                                     seed=seed))
        engine = _elasticity_engine(ladder[0], clients, num_accounts, seed,
                                    cc_op_ms=cc_op_ms,
                                    autoscale=policy if mode == "autoscaled"
                                    else None)
        engine.load_initial_data(workload.initial_data())
        engine.attach_observer(AuditingObserver())
        run = engine.run_open_loop(workload.transaction_factory,
                                   total_transactions=transactions,
                                   arrivals=arrivals, clients=clients,
                                   queue_limit=queue_limit)
        config = engine.proxy.config
        controller = run.controller
        decisions = () if controller is None else controller.decisions
        audit = run.audit
        rows.append(ElasticityRow(
            mode=mode,
            offered=run.offered,
            dropped=run.dropped,
            committed=run.committed,
            achieved_tps=run.achieved_tps,
            mean_total_latency_ms=run.average_total_latency_ms,
            p95_total_latency_ms=run.p95_total_latency_ms,
            max_queue_depth=run.max_queue_depth,
            epochs=run.epochs,
            reshards=len(run.migrations),
            scale_ups=sum(1 for d in decisions if d.action == "scale_up"),
            scale_downs=sum(1 for d in decisions if d.action == "scale_down"),
            final_topology=(config.shards, config.storage_servers,
                            config.proxy_workers),
            audit_ok=audit.ok if audit is not None else True,
        ))
    return rows
