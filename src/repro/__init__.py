"""Reproduction of *Obladi: Oblivious Serializable Transactions in the Cloud*.

Obladi (Crooks et al., OSDI 2018) is a cloud key-value store that provides
serializable ACID transactions while hiding access patterns from the storage
provider.  This package re-implements the full system described in the paper:

* a Ring ORAM substrate (:mod:`repro.oram`),
* an untrusted storage server with pluggable latency models
  (:mod:`repro.storage`, :mod:`repro.sim`),
* multiversion timestamp-ordering concurrency control
  (:mod:`repro.concurrency`),
* the epoch-based Obladi proxy — batching, deduplication, delayed visibility,
  parallel execution (:mod:`repro.core`),
* oblivious durability and crash recovery (:mod:`repro.recovery`),
* the non-private baselines used in the evaluation (:mod:`repro.baseline`),
* the paper's workloads: TPC-C, SmallBank, FreeHealth and YCSB
  (:mod:`repro.workloads`),
* obliviousness / serializability analysis tools (:mod:`repro.analysis`), and
* the experiment harness that regenerates every figure and table of the
  evaluation section (:mod:`repro.harness`).

All of these sit behind the unified engine layer (:mod:`repro.api`): one
:class:`~repro.api.engine.TransactionEngine` interface over the proxy and
both baselines, created with :func:`~repro.api.factory.create_engine`.

The public, stable entry points are re-exported here.
"""

from repro.api import (EngineConfig, RunStats, TransactionEngine, create_engine,
                       run_closed_loop)
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.client import Transaction, TransactionAborted
from repro.core.proxy import ObladiProxy
from repro.baseline.nopriv import NoPrivProxy
from repro.baseline.mysql_like import TwoPhaseLockingStore
from repro.sim.latency import LatencyModel, BACKENDS
from repro.storage.memory import InMemoryStorageServer

__version__ = "0.2.0"

__all__ = [
    "create_engine",
    "EngineConfig",
    "TransactionEngine",
    "RunStats",
    "run_closed_loop",
    "ObladiConfig",
    "RingOramConfig",
    "ObladiProxy",
    "NoPrivProxy",
    "TwoPhaseLockingStore",
    "Transaction",
    "TransactionAborted",
    "LatencyModel",
    "BACKENDS",
    "InMemoryStorageServer",
    "__version__",
]
