"""Performance metric helpers shared by the harness and the benchmarks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample (milliseconds)."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    index = min(len(sorted_values) - 1, max(0, math.ceil(q * len(sorted_values)) - 1))
    return sorted_values[index]


def summarize_latencies(latencies_ms: Iterable[float]) -> LatencyStats:
    """Build a :class:`LatencyStats` from raw samples."""
    values = sorted(latencies_ms)
    if not values:
        return LatencyStats(count=0, mean_ms=0.0, p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, max_ms=0.0)
    return LatencyStats(
        count=len(values),
        mean_ms=sum(values) / len(values),
        p50_ms=percentile(values, 0.50),
        p95_ms=percentile(values, 0.95),
        p99_ms=percentile(values, 0.99),
        max_ms=values[-1],
    )


def throughput_tps(committed: int, elapsed_ms: float) -> float:
    """Committed transactions (or operations) per simulated second."""
    if elapsed_ms <= 0:
        return 0.0
    return committed * 1000.0 / elapsed_ms


def relative(value: float, baseline: float) -> float:
    """``value / baseline`` with a defined result for a zero baseline."""
    if baseline == 0:
        return float("inf") if value > 0 else 1.0
    return value / baseline


def slowdown(baseline: float, value: float) -> float:
    """How many times slower ``value`` is than ``baseline`` (both rates)."""
    if value == 0:
        return float("inf")
    return baseline / value


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, ignoring non-positive entries."""
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(v) for v in positive) / len(positive))
