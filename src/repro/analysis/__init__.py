"""Analysis tools: obliviousness checks and performance metrics.

The security lemmas of the paper (§9, Appendix B) are validated empirically:
the storage trace recorded by :mod:`repro.storage.trace` is analysed for
workload independence — uniformly distributed path accesses, no slot re-read
between reshuffles, batch shapes that depend only on the configuration — and
compared across deliberately different logical workloads.
"""

from repro.analysis.obliviousness import (bucket_access_counts, leaf_access_counts,
                                          chi_square_uniformity, trace_similarity,
                                          check_bucket_invariant, slot_read_multiset,
                                          partition_traces, partition_trace_similarity,
                                          server_traces, server_partition_traces,
                                          split_partition_key,
                                          generation_traces, split_generation_key)
from repro.analysis.metrics import LatencyStats, summarize_latencies, throughput_tps

__all__ = [
    "bucket_access_counts",
    "leaf_access_counts",
    "chi_square_uniformity",
    "trace_similarity",
    "check_bucket_invariant",
    "slot_read_multiset",
    "partition_traces",
    "partition_trace_similarity",
    "server_traces",
    "server_partition_traces",
    "split_partition_key",
    "generation_traces",
    "split_generation_key",
    "LatencyStats",
    "summarize_latencies",
    "throughput_tps",
]
