"""Empirical obliviousness checks over storage traces.

Obladi's security argument reduces to properties of what the storage server
observes.  These helpers turn an :class:`~repro.storage.trace.AccessTrace`
into the statistics those properties are about:

* the distribution of ORAM *paths* (equivalently: leaf-level buckets) read —
  must be indistinguishable from uniform and, crucially, indistinguishable
  *between different logical workloads*;
* the bucket invariant — no physical slot is read twice between two writes
  of its bucket;
* the adversary-visible batch shape — must be a function of the
  configuration only.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

from repro.oram import path_math
from repro.storage.backend import StorageOp
from repro.storage.trace import AccessTrace


def _parse_oram_key(key: str) -> Optional[Tuple[int, int, int]]:
    """Parse ``oram/<bucket>/v<version>/s/<slot>`` keys; None for other keys."""
    if not key.startswith("oram/"):
        return None
    parts = key.split("/")
    if len(parts) != 5:
        return None
    try:
        bucket = int(parts[1])
        version = int(parts[2][1:])
        slot = int(parts[4])
    except ValueError:
        return None
    return bucket, version, slot


def bucket_access_counts(trace: AccessTrace, op: Optional[StorageOp] = StorageOp.READ
                         ) -> Counter:
    """How often each ORAM bucket was touched."""
    counts: Counter = Counter()
    for event in trace.events:
        if op is not None and event.op != op:
            continue
        parsed = _parse_oram_key(event.key)
        if parsed is None:
            continue
        counts[parsed[0]] += 1
    return counts


def leaf_access_counts(trace: AccessTrace, depth: int,
                       op: Optional[StorageOp] = StorageOp.READ) -> Counter:
    """Accesses per leaf-level bucket (a proxy for the paths read).

    Each path read touches exactly one leaf bucket, so the leaf histogram is
    the path histogram — the quantity the path invariant makes uniform.
    """
    counts: Counter = Counter()
    first_leaf = path_math.bucket_id(depth, 0)
    for bucket, total in bucket_access_counts(trace, op).items():
        if bucket >= first_leaf:
            counts[bucket - first_leaf] += total
    return counts


def chi_square_uniformity(counts: Dict[int, int], categories: int) -> Tuple[float, float]:
    """Chi-square statistic and its normal-approximated p-value against uniform.

    Returns ``(statistic, p_value)``.  With ``categories`` cells and ``n``
    observations the statistic is compared to a chi-square distribution with
    ``categories - 1`` degrees of freedom using the Wilson–Hilferty
    approximation, which is accurate enough for the test suite's purposes
    and avoids a scipy dependency in the hot path.
    """
    n = sum(counts.values())
    if n == 0 or categories <= 1:
        return 0.0, 1.0
    expected = n / categories
    statistic = 0.0
    for cell in range(categories):
        observed = counts.get(cell, 0)
        statistic += (observed - expected) ** 2 / expected
    dof = categories - 1
    # Wilson–Hilferty: (X/k)^(1/3) approx normal.
    z = ((statistic / dof) ** (1.0 / 3.0) - (1 - 2.0 / (9 * dof))) / math.sqrt(2.0 / (9 * dof))
    p_value = 0.5 * math.erfc(z / math.sqrt(2.0))
    return statistic, p_value


def trace_similarity(trace_a: AccessTrace, trace_b: AccessTrace, depth: int) -> float:
    """Total-variation distance between two traces' leaf-access distributions.

    Workload independence predicts this distance stays small (it is bounded
    by sampling noise) no matter how different the logical workloads are.
    Returns a value in [0, 1]; 0 means identical distributions.
    """
    counts_a = leaf_access_counts(trace_a, depth)
    counts_b = leaf_access_counts(trace_b, depth)
    total_a = sum(counts_a.values()) or 1
    total_b = sum(counts_b.values()) or 1
    leaves = 1 << depth
    distance = 0.0
    for leaf in range(leaves):
        pa = counts_a.get(leaf, 0) / total_a
        pb = counts_b.get(leaf, 0) / total_b
        distance += abs(pa - pb)
    return distance / 2.0


def slot_read_multiset(trace: AccessTrace) -> Dict[Tuple[int, int, int], int]:
    """Read counts per (bucket, version, slot) physical location."""
    counts: Dict[Tuple[int, int, int], int] = defaultdict(int)
    for event in trace.events:
        if event.op != StorageOp.READ:
            continue
        parsed = _parse_oram_key(event.key)
        if parsed is not None:
            counts[parsed] += 1
    return dict(counts)


def check_bucket_invariant(trace: AccessTrace) -> List[Tuple[int, int, int]]:
    """Physical slots read more than once between bucket rewrites.

    Ring ORAM's bucket invariant forbids this; an empty list means the
    invariant held for the whole trace.  (A slot may legitimately be read
    again after its bucket is rewritten, but rewrites bump the version in the
    key, so a repeat of the *same* (bucket, version, slot) triple is always a
    violation.)
    """
    violations = []
    for location, count in slot_read_multiset(trace).items():
        if count > 1:
            violations.append(location)
    return sorted(violations)


def epoch_batch_pattern(trace: AccessTrace) -> List[str]:
    """The adversary-visible sequence of batch kinds ("read"/"write").

    In a correct Obladi execution this sequence is ``R`` reads followed by
    one write, repeated per epoch — a function of the configuration alone.
    Tests compare the pattern across workloads and against the expected
    regular structure.
    """
    return [kind for kind, _size in trace.batch_shape()]


def batch_shapes_equal(trace_a: AccessTrace, trace_b: AccessTrace) -> bool:
    """Whether two traces exposed identical (kind, size) batch sequences."""
    return trace_a.batch_shape() == trace_b.batch_shape()
