"""Empirical obliviousness checks over storage traces.

Obladi's security argument reduces to properties of what the storage server
observes.  These helpers turn an :class:`~repro.storage.trace.AccessTrace`
into the statistics those properties are about:

* the distribution of ORAM *paths* (equivalently: leaf-level buckets) read —
  must be indistinguishable from uniform and, crucially, indistinguishable
  *between different logical workloads*;
* the bucket invariant — no physical slot is read twice between two writes
  of its bucket;
* the adversary-visible batch shape — must be a function of the
  configuration only.

A *partitioned* proxy (``shards > 1``) runs one Ring ORAM per storage
namespace (``p<i>/oram/...``); the storage provider sees which partition
each request targets, so indistinguishability must hold **per partition**.
:func:`partition_traces` splits a shared trace into per-partition traces
(prefixes stripped) so every helper in this module applies unchanged to
each partition's view.  When the partitions are hosted on *distinct*
storage servers (``storage_servers > 1``), each node runs its own observer
seeing only its own requests: :func:`server_traces` and
:func:`server_partition_traces` recover those per-node views so the same
checks can be asserted for every server independently.
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

from repro.oram import path_math
from repro.storage.backend import StorageOp
from repro.storage.trace import AccessTrace

#: Storage-namespace prefix of one ORAM partition (see repro.storage.namespace).
_PARTITION_PREFIX = re.compile(r"^p(\d+)/")

#: Storage-namespace prefix of one topology generation (repro.elasticity):
#: generation g > 0 lives under ``g<g>/p<i>/...``; generation 0 keeps the
#: historical unprefixed namespace.
_GENERATION_PREFIX = re.compile(r"^g(\d+)/")


def split_generation_key(key: str) -> Tuple[int, str]:
    """Split a storage key into ``(generation, unprefixed_key)``.

    Keys without a generation namespace (everything a statically provisioned
    deployment ever writes) belong to generation 0.
    """
    match = _GENERATION_PREFIX.match(key)
    if match is None:
        return 0, key
    return int(match.group(1)), key[match.end():]


def generation_traces(trace: AccessTrace) -> Dict[int, AccessTrace]:
    """Split a storage trace into one trace per topology generation.

    During a live migration (:mod:`repro.elasticity`) a server hosts the
    retiring generation's namespaces *and* the target generation's
    ``g<g>/p<i>/`` namespaces; the adversary can tell them apart, so
    obliviousness must hold for each generation's view separately.  The
    returned traces have the generation prefix stripped — apply
    :func:`partition_traces` and the other helpers to each one directly.
    """
    per_generation: Dict[int, AccessTrace] = {}
    for event in trace.events:
        generation, stripped = split_generation_key(event.key)
        sub = per_generation.get(generation)
        if sub is None:
            sub = per_generation[generation] = AccessTrace()
        sub.record(event.op, stripped, event.size_bytes, event.time_ms,
                   event.batch_id)
    return per_generation


def split_partition_key(key: str) -> Tuple[int, str]:
    """Split a storage key into ``(partition_index, unprefixed_key)``.

    Keys without a partition namespace (a single-tree proxy, or shared
    durability keys like ``wal/...``) belong to partition 0.
    """
    match = _PARTITION_PREFIX.match(key)
    if match is None:
        return 0, key
    return int(match.group(1)), key[match.end():]


def _parse_oram_key(key: str) -> Optional[Tuple[int, int, int]]:
    """Parse ``[p<i>/]oram/<bucket>/v<version>/s/<slot>`` keys; None otherwise."""
    _, key = split_partition_key(key)
    if not key.startswith("oram/"):
        return None
    parts = key.split("/")
    if len(parts) != 5:
        return None
    try:
        bucket = int(parts[1])
        version = int(parts[2][1:])
        slot = int(parts[4])
    except ValueError:
        return None
    return bucket, version, slot


def partition_traces(trace: AccessTrace) -> Dict[int, AccessTrace]:
    """Split a shared storage trace into one trace per ORAM partition.

    Events are grouped by their ``p<i>/`` storage namespace (no namespace →
    partition 0) with the prefix stripped, so each returned trace looks
    exactly like a single-tree proxy's trace and every helper in this module
    applies to it directly.  Batch boundaries are not partition-attributable
    (they interleave on the shared server) and are not carried over; compare
    per-partition request sequences instead.
    """
    per_partition: Dict[int, AccessTrace] = {}
    for event in trace.events:
        index, stripped = split_partition_key(event.key)
        sub = per_partition.get(index)
        if sub is None:
            sub = per_partition[index] = AccessTrace()
        sub.record(event.op, stripped, event.size_bytes, event.time_ms, event.batch_id)
    return per_partition


def server_traces(storage) -> Dict[int, AccessTrace]:
    """One adversary trace per storage *server* of a deployment.

    A :class:`~repro.storage.cluster.StorageCluster` runs one observer per
    node: each server records only the requests it hosted, so the returned
    dict maps server index to that node's own trace.  A single server (the
    colocated topology) yields ``{0: trace}``.  Servers with trace recording
    disabled are omitted.  Keys inside each trace keep their partition
    namespaces (``p<i>/``); apply :func:`partition_traces` to a server's
    trace to split it further into the per-partition views, which is the
    granularity the indistinguishability argument must hold at.
    """
    traces = getattr(storage, "traces", None)
    if traces is None:
        trace = getattr(storage, "trace", None)
        return {} if trace is None else {0: trace}
    return {index: trace for index, trace in enumerate(traces) if trace is not None}


def server_partition_traces(storage) -> Dict[int, Dict[int, AccessTrace]]:
    """Per-server, per-partition adversary views of a deployment.

    The per-server variant of :func:`partition_traces`: maps each storage
    server's index to the partition-split (prefix-stripped) traces of the
    namespaces hosted on that server, so every helper in this module can be
    applied to each ``(server, partition)`` view independently — each
    storage-side observer must find its own view workload independent.
    """
    return {index: partition_traces(trace)
            for index, trace in server_traces(storage).items()}


def partition_trace_similarity(trace_a: AccessTrace, trace_b: AccessTrace,
                               depth: int) -> Dict[int, float]:
    """Per-partition total-variation distance between two traces.

    Workload independence of a partitioned proxy predicts every partition's
    distance stays small — the storage provider can watch each namespace
    separately, so no single partition may leak.  Partitions present in only
    one trace score the maximal distance 1.0.
    """
    split_a = partition_traces(trace_a)
    split_b = partition_traces(trace_b)
    distances: Dict[int, float] = {}
    for index in sorted(set(split_a) | set(split_b)):
        if index not in split_a or index not in split_b:
            distances[index] = 1.0
            continue
        distances[index] = trace_similarity(split_a[index], split_b[index], depth)
    return distances


def bucket_access_counts(trace: AccessTrace, op: Optional[StorageOp] = StorageOp.READ
                         ) -> Counter:
    """How often each ORAM bucket was touched."""
    counts: Counter = Counter()
    for event in trace.events:
        if op is not None and event.op != op:
            continue
        parsed = _parse_oram_key(event.key)
        if parsed is None:
            continue
        counts[parsed[0]] += 1
    return counts


def leaf_access_counts(trace: AccessTrace, depth: int,
                       op: Optional[StorageOp] = StorageOp.READ) -> Counter:
    """Accesses per leaf-level bucket (a proxy for the paths read).

    Each path read touches exactly one leaf bucket, so the leaf histogram is
    the path histogram — the quantity the path invariant makes uniform.
    """
    counts: Counter = Counter()
    first_leaf = path_math.bucket_id(depth, 0)
    for bucket, total in bucket_access_counts(trace, op).items():
        if bucket >= first_leaf:
            counts[bucket - first_leaf] += total
    return counts


def chi_square_uniformity(counts: Dict[int, int], categories: int) -> Tuple[float, float]:
    """Chi-square statistic and its normal-approximated p-value against uniform.

    Returns ``(statistic, p_value)``.  With ``categories`` cells and ``n``
    observations the statistic is compared to a chi-square distribution with
    ``categories - 1`` degrees of freedom using the Wilson–Hilferty
    approximation, which is accurate enough for the test suite's purposes
    and avoids a scipy dependency in the hot path.
    """
    n = sum(counts.values())
    if n == 0 or categories <= 1:
        return 0.0, 1.0
    expected = n / categories
    statistic = 0.0
    for cell in range(categories):
        observed = counts.get(cell, 0)
        statistic += (observed - expected) ** 2 / expected
    dof = categories - 1
    # Wilson–Hilferty: (X/k)^(1/3) approx normal.
    z = ((statistic / dof) ** (1.0 / 3.0) - (1 - 2.0 / (9 * dof))) / math.sqrt(2.0 / (9 * dof))
    p_value = 0.5 * math.erfc(z / math.sqrt(2.0))
    return statistic, p_value


def trace_similarity(trace_a: AccessTrace, trace_b: AccessTrace, depth: int) -> float:
    """Total-variation distance between two traces' leaf-access distributions.

    Workload independence predicts this distance stays small (it is bounded
    by sampling noise) no matter how different the logical workloads are.
    Returns a value in [0, 1]; 0 means identical distributions.
    """
    counts_a = leaf_access_counts(trace_a, depth)
    counts_b = leaf_access_counts(trace_b, depth)
    total_a = sum(counts_a.values()) or 1
    total_b = sum(counts_b.values()) or 1
    leaves = 1 << depth
    distance = 0.0
    for leaf in range(leaves):
        pa = counts_a.get(leaf, 0) / total_a
        pb = counts_b.get(leaf, 0) / total_b
        distance += abs(pa - pb)
    return distance / 2.0


def slot_read_multiset(trace: AccessTrace) -> Dict[Tuple[int, int, int], int]:
    """Read counts per (bucket, version, slot) physical location."""
    counts: Dict[Tuple[int, int, int], int] = defaultdict(int)
    for event in trace.events:
        if event.op != StorageOp.READ:
            continue
        parsed = _parse_oram_key(event.key)
        if parsed is not None:
            counts[parsed] += 1
    return dict(counts)


def check_bucket_invariant(trace: AccessTrace) -> List[Tuple[int, int, int]]:
    """Physical slots read more than once between bucket rewrites.

    Ring ORAM's bucket invariant forbids this; an empty list means the
    invariant held for the whole trace.  (A slot may legitimately be read
    again after its bucket is rewritten, but rewrites bump the version in the
    key, so a repeat of the *same* (bucket, version, slot) triple is always a
    violation.)  Partitions are independent trees: the same triple in two
    different storage namespaces is not a collision.  Violations are
    reported as deduplicated ``(bucket, version, slot)`` triples; to
    attribute a violation to a partition, split the trace with
    :func:`partition_traces` and check each partition's view.
    """
    counts: Dict[Tuple[int, int, int, int], int] = defaultdict(int)
    for event in trace.events:
        if event.op != StorageOp.READ:
            continue
        partition, _ = split_partition_key(event.key)
        parsed = _parse_oram_key(event.key)
        if parsed is not None:
            counts[(partition,) + parsed] += 1
    violations = {location[1:] for location, count in counts.items() if count > 1}
    return sorted(violations)


def epoch_batch_pattern(trace: AccessTrace) -> List[str]:
    """The adversary-visible sequence of batch kinds ("read"/"write").

    In a correct Obladi execution this sequence is ``R`` reads followed by
    one write, repeated per epoch — a function of the configuration alone.
    Tests compare the pattern across workloads and against the expected
    regular structure.
    """
    return [kind for kind, _size in trace.batch_shape()]


def batch_shapes_equal(trace_a: AccessTrace, trace_b: AccessTrace) -> bool:
    """Whether two traces exposed identical (kind, size) batch sequences."""
    return trace_a.batch_shape() == trace_b.batch_shape()
