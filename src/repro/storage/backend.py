"""Abstract interface to the untrusted storage server.

The proxy talks to storage exclusively through this interface.  Requests are
addressed by an opaque string key (ORAM bucket ids, WAL segment names,
checkpoint names); payloads are ``bytes``.  The interface deliberately
exposes *batched* reads and writes because the simulated-time model charges
latency per request and computes the parallel makespan per batch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class StorageOp(enum.Enum):
    """Kinds of physical operations the storage server can observe."""

    READ = "read"
    WRITE = "write"
    DELETE = "delete"


@dataclass(frozen=True)
class StorageRequest:
    """A single physical request sent to the storage server.

    The adversary sees the key, the operation type, the payload *size* and
    the time — never plaintext contents (payloads are encrypted by the ORAM
    layer before they reach storage).
    """

    op: StorageOp
    key: str
    payload: Optional[bytes] = None

    @property
    def size_bytes(self) -> int:
        return len(self.payload) if self.payload is not None else 0


@dataclass
class BatchResult:
    """Result of a batched storage operation.

    ``values`` maps keys to payloads for read batches (missing keys map to
    ``None``); ``elapsed_ms`` is the simulated time the batch took given the
    backend latency model and the parallelism available.
    """

    values: Dict[str, Optional[bytes]] = field(default_factory=dict)
    elapsed_ms: float = 0.0
    request_count: int = 0


class StorageServer:
    """Interface implemented by storage backends.

    Concrete implementations must be deterministic given the same request
    sequence: the security analysis replays workloads and compares traces.
    """

    def read_batch(self, keys: Sequence[str], parallelism: int = 1) -> BatchResult:
        """Read many keys; returns payloads and the simulated elapsed time."""
        raise NotImplementedError

    def write_batch(self, items: Dict[str, bytes], parallelism: int = 1) -> BatchResult:
        """Write many key/payload pairs."""
        raise NotImplementedError

    def delete_batch(self, keys: Sequence[str], parallelism: int = 1) -> BatchResult:
        """Delete keys (used by checkpoint garbage collection)."""
        raise NotImplementedError

    def read(self, key: str) -> Optional[bytes]:
        """Convenience single-key read."""
        return self.read_batch([key]).values.get(key)

    def write(self, key: str, payload: bytes) -> None:
        """Convenience single-key write."""
        self.write_batch({key: payload})

    def contains(self, key: str) -> bool:
        """Whether the key currently exists on the server."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """All keys currently stored (test/diagnostic use only)."""
        raise NotImplementedError
