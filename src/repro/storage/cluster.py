"""A cluster of distinct simulated storage servers (one per partition group).

Obladi's evaluation fans epoch batches out from the proxy to cloud storage
over a real network.  A single :class:`~repro.storage.memory.InMemoryStorageServer`
multiplexing every partition through key namespaces cannot express two
things that matter once the data layer shards:

* **per-link network cost** — each proxy-to-server link has its own
  :class:`~repro.sim.latency.LatencyModel` (optionally perturbed per link via
  :class:`~repro.sim.latency.NetworkConditions`), so a slow replica slows
  only the partitions it hosts;
* **per-server adversaries** — a real storage provider runs one observer per
  storage node.  Each server records its *own*
  :class:`~repro.storage.trace.AccessTrace`, and the obliviousness argument
  must hold for every node independently
  (:func:`repro.analysis.server_traces` splits the views back out).

:class:`StorageCluster` is the registry of those servers.  Partition ``i``
of an N-partition data layer is hosted on server ``i % num_servers``
(:meth:`StorageCluster.server_for_partition`), so ``num_servers == shards``
is one-server-per-partition and ``1 < num_servers < shards`` groups several
partitions per server (each keeping its ``p<i>/`` key namespace on the host).

The cluster itself implements the :class:`~repro.storage.backend.StorageServer`
interface by delegating to its *metadata server* (server 0): proxy-wide
durability state — the WAL and the checkpoint chain — lives on one
designated node, exactly like the paper's single durable store, while ORAM
bucket traffic goes to each partition's own host.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel, link_latency_models
from repro.storage.backend import BatchResult, StorageServer
from repro.storage.memory import InMemoryStorageServer
from repro.storage.trace import AccessTrace, merge_traces

__all__ = ["StorageCluster", "build_storage", "link_latency_models"]


class _MergedClusterTrace(AccessTrace):
    """Merged view of every server's trace that keeps ``clear()`` meaningful.

    The merge itself is a snapshot (recording into it would not reach any
    server), but ``clear()`` is the one mutation existing code performs on
    ``proxy.storage.trace`` between experiment phases — forward it to the
    per-server traces so that idiom keeps working on a cluster.
    """

    def __init__(self, cluster: "StorageCluster") -> None:
        super().__init__()
        self._cluster = cluster

    def clear(self) -> None:
        """Clear this snapshot *and* every server's underlying trace."""
        super().clear()
        self._cluster.clear_traces()


class StorageCluster(StorageServer):
    """M distinct simulated storage servers behind one façade.

    Parameters
    ----------
    latency:
        Backend name or :class:`LatencyModel` shared by every link.
    num_servers:
        How many distinct servers the cluster runs (at least 2; a single
        server is just :class:`InMemoryStorageServer`).
    clock:
        Shared simulated clock; every server advances the same clock.
    record_trace / charge_latency:
        Forwarded to each server (see :class:`InMemoryStorageServer`).
    link_extra_rtt_ms:
        Optional per-link extra round-trip latency (heterogeneous links).

    The :class:`StorageServer` interface (``read_batch`` .. ``keys``)
    delegates to the metadata server (server 0); address a specific server
    through :attr:`servers` or :meth:`server_for_partition`.
    """

    def __init__(self, latency="dummy", num_servers: int = 2,
                 clock: Optional[SimClock] = None, record_trace: bool = True,
                 charge_latency: bool = True,
                 link_extra_rtt_ms: Sequence[float] = ()) -> None:
        if num_servers < 2:
            raise ValueError("a StorageCluster needs at least two servers; "
                             "use InMemoryStorageServer for one")
        shared_clock = clock if clock is not None else SimClock()
        self.link_models = link_latency_models(latency, num_servers, link_extra_rtt_ms)
        self.servers: List[InMemoryStorageServer] = [
            InMemoryStorageServer(latency=model, clock=shared_clock,
                                  record_trace=record_trace,
                                  charge_latency=charge_latency)
            for model in self.link_models
        ]

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @classmethod
    def from_server(cls, server: InMemoryStorageServer, latency="dummy",
                    num_servers: int = 2,
                    link_extra_rtt_ms: Sequence[float] = ()) -> "StorageCluster":
        """Promote an existing single server to a cluster's metadata server.

        The live-resharding path (``repro.elasticity``) uses this to grow a
        single-server deployment: ``server`` keeps every key it already
        holds — including the WAL and checkpoint chain, which is why it must
        become server 0 — and ``num_servers - 1`` fresh servers join it,
        sharing its clock, trace-recording and latency-charging settings.
        """
        if num_servers < 2:
            raise ValueError("a StorageCluster needs at least two servers")
        cluster = cls.__new__(cls)
        cluster.link_models = link_latency_models(latency, num_servers,
                                                  link_extra_rtt_ms)
        cluster.servers = [server] + [
            InMemoryStorageServer(latency=model, clock=server.clock,
                                  record_trace=server.trace is not None,
                                  charge_latency=server.charge_latency)
            for model in cluster.link_models[1:]
        ]
        return cluster

    def resize(self, num_servers: int, latency="dummy",
               link_extra_rtt_ms: Sequence[float] = ()) -> None:
        """Grow or shrink the cluster to ``num_servers`` distinct servers.

        Growth appends fresh servers (sharing the metadata server's clock
        and settings, each on its own link model); shrinkage truncates from
        the *end* of the server list, so the metadata server — and with it
        the WAL and checkpoint chain — is never dropped.  Shrinking is only
        safe once no live partition is hosted on the departing servers (the
        reshard cutover guarantees this before it resizes).
        """
        if num_servers < 2:
            raise ValueError("a StorageCluster needs at least two servers")
        if num_servers <= len(self.servers):
            del self.servers[num_servers:]
            del self.link_models[num_servers:]
            return
        models = link_latency_models(latency, num_servers, link_extra_rtt_ms)
        template = self.metadata_server
        for model in models[len(self.servers):]:
            self.link_models.append(model)
            self.servers.append(
                InMemoryStorageServer(latency=model, clock=template.clock,
                                      record_trace=template.trace is not None,
                                      charge_latency=template.charge_latency))

    @property
    def num_servers(self) -> int:
        """How many distinct storage servers the cluster runs."""
        return len(self.servers)

    @property
    def metadata_server(self) -> InMemoryStorageServer:
        """The server hosting proxy-wide durability state (WAL, checkpoints)."""
        return self.servers[0]

    def server_index_for_partition(self, partition_index: int) -> int:
        """Index of the server hosting data-layer partition ``partition_index``."""
        if partition_index < 0:
            raise ValueError("partition index cannot be negative")
        return partition_index % len(self.servers)

    def server_for_partition(self, partition_index: int) -> InMemoryStorageServer:
        """The server hosting data-layer partition ``partition_index``."""
        return self.servers[self.server_index_for_partition(partition_index)]

    def link_model_for_partition(self, partition_index: int) -> LatencyModel:
        """Latency model of the link to ``partition_index``'s host server."""
        return self.link_models[self.server_index_for_partition(partition_index)]

    # ------------------------------------------------------------------ #
    # Shared-clock / simulation plumbing (the proxy sets these on whatever
    # storage object it is handed, single server or cluster alike).
    # ------------------------------------------------------------------ #
    @property
    def clock(self) -> SimClock:
        """The shared simulated clock every server advances."""
        return self.servers[0].clock

    @clock.setter
    def clock(self, value: SimClock) -> None:
        for server in self.servers:
            server.clock = value

    @property
    def charge_latency(self) -> bool:
        """Whether servers advance the clock themselves (the proxy disables it)."""
        return self.servers[0].charge_latency

    @charge_latency.setter
    def charge_latency(self, value: bool) -> None:
        for server in self.servers:
            server.charge_latency = value

    def fail(self) -> None:
        """Inject an outage on every server (whole storage tier unavailable)."""
        for server in self.servers:
            server.fail()

    def recover(self) -> None:
        """Clear a previously injected outage on every server."""
        for server in self.servers:
            server.recover()

    # ------------------------------------------------------------------ #
    # Per-server observability
    # ------------------------------------------------------------------ #
    @property
    def traces(self) -> List[Optional[AccessTrace]]:
        """Each server's own adversary trace (``None`` when not recorded)."""
        return [server.trace for server in self.servers]

    @property
    def trace(self) -> Optional[AccessTrace]:
        """A merged *snapshot* of every server's trace, ordered by time.

        Useful for whole-deployment diagnostics; the security analysis works
        on the per-server :attr:`traces` instead (each node's observer sees
        only its own requests).  Batch boundaries are merged in time order
        (ids renumbered), recording into the snapshot does not reach any
        server, and ``.clear()`` on it clears the per-server traces
        (equivalent to :meth:`clear_traces`), so the single-server idioms
        ``storage.trace.clear()`` / ``storage.trace.batch_shape()`` keep
        working.  Each access rebuilds the merge (O(total events) plus the
        sort) and returns a fresh object — hoist it out of hot loops.
        """
        recorded = [trace for trace in self.traces if trace is not None]
        if not recorded:
            return None
        return merge_traces(recorded, into=_MergedClusterTrace(self))

    def clear_traces(self) -> None:
        """Clear every server's recorded trace (between experiment phases)."""
        for trace in self.traces:
            if trace is not None:
                trace.clear()

    @property
    def stats_reads(self) -> int:
        """Total read requests across every server."""
        return sum(server.stats_reads for server in self.servers)

    @property
    def stats_writes(self) -> int:
        """Total write requests across every server."""
        return sum(server.stats_writes for server in self.servers)

    @property
    def stats_batches(self) -> int:
        """Total batches across every server."""
        return sum(server.stats_batches for server in self.servers)

    def per_server_stats(self) -> List[Dict[str, int]]:
        """Per-server request counters (``reads``/``writes``/``batches``)."""
        return [{"reads": server.stats_reads, "writes": server.stats_writes,
                 "batches": server.stats_batches} for server in self.servers]

    # ------------------------------------------------------------------ #
    # StorageServer interface — delegated to the metadata server
    # ------------------------------------------------------------------ #
    def read_batch(self, keys: Sequence[str], parallelism: int = 1,
                   record_batch: bool = True) -> BatchResult:
        """Read from the metadata server (WAL / checkpoint traffic)."""
        return self.metadata_server.read_batch(keys, parallelism=parallelism,
                                               record_batch=record_batch)

    def write_batch(self, items: Dict[str, bytes], parallelism: int = 1,
                    record_batch: bool = True) -> BatchResult:
        """Write to the metadata server (WAL / checkpoint traffic)."""
        return self.metadata_server.write_batch(items, parallelism=parallelism,
                                                record_batch=record_batch)

    def delete_batch(self, keys: Sequence[str], parallelism: int = 1) -> BatchResult:
        """Delete on the metadata server (checkpoint garbage collection)."""
        return self.metadata_server.delete_batch(keys, parallelism=parallelism)

    def contains(self, key: str) -> bool:
        """Whether the metadata server holds ``key``."""
        return self.metadata_server.contains(key)

    def keys(self) -> List[str]:
        """The metadata server's keys (see :meth:`all_keys` for every server)."""
        return self.metadata_server.keys()

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    def all_keys(self) -> List[str]:
        """Every key stored anywhere in the cluster (diagnostic)."""
        collected: List[str] = []
        for server in self.servers:
            collected.extend(server.keys())
        return collected

    def size_bytes(self) -> int:
        """Total bytes stored across every server (diagnostic)."""
        return sum(server.size_bytes() for server in self.servers)

    def snapshot(self) -> List[Dict[str, bytes]]:
        """Per-server copies of the stored data (recovery-test diffing)."""
        return [server.snapshot() for server in self.servers]


def build_storage(config, clock: Optional[SimClock] = None):
    """Construct the storage tier an :class:`~repro.core.config.ObladiConfig` asks for.

    ``storage_servers == 1`` (the default, and the only choice for a
    single-tree proxy) yields one :class:`InMemoryStorageServer` — byte-
    identical to the historical layout; ``storage_servers > 1`` yields a
    :class:`StorageCluster` whose servers host the data-layer partitions
    round-robin.
    """
    if config.storage_servers <= 1:
        return InMemoryStorageServer(latency=config.backend, clock=clock,
                                     charge_latency=False)
    return StorageCluster(latency=config.backend, num_servers=config.storage_servers,
                          clock=clock, charge_latency=False,
                          link_extra_rtt_ms=config.link_extra_rtt_ms)
