"""Per-partition namespaces over an untrusted storage server.

A partitioned Obladi proxy runs N independent Ring ORAM trees.  Each
partition addresses storage through a :class:`NamespacedStorage` view that
prefixes every key with the partition's namespace (``p<index>/``), so

* partitions can never collide (each has its own ``oram/...``, bucket
  versions, etc. under its prefix), and
* the adversary-visible trace records the *prefixed* keys, which is exactly
  what a real deployment exposes: the storage provider sees which partition
  (storage namespace) each request targets, and the obliviousness argument
  must therefore hold **per partition**
  (:mod:`repro.analysis.obliviousness` splits traces accordingly).

Which *server* a namespace lives on is the server-topology knob
(``ObladiConfig.storage_servers``), orthogonal to the namespacing: in the
colocated topology every ``p<i>/`` view wraps the one shared store (the
historical layout), while over a :class:`~repro.storage.cluster.StorageCluster`
partition ``i``'s view wraps its host server ``i % M`` — several partitions
may share a host when M < N, and their namespaces keep them apart there
exactly as they did on a single server.  The prefix is retained even with
one server per partition so traces, checkpoint components and the analysis
helpers parse identically across every topology.

The view shares its base server's clock, trace and latency model; only the
key space is remapped.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.storage.backend import BatchResult, StorageServer


def partition_prefix(index: int) -> str:
    """Storage namespace prefix of partition ``index`` (empty for a single ORAM)."""
    if index < 0:
        raise ValueError("partition index cannot be negative")
    return f"p{index}/"


class NamespacedStorage(StorageServer):
    """A prefixed view of another :class:`StorageServer`.

    All requests are forwarded to the base server with ``prefix`` prepended
    to every key; results are returned under the caller's unprefixed keys.
    Attributes not overridden here (``clock``, ``trace``, ``fail``...)
    delegate to the base server, so callers that inspect the trace or inject
    failures keep working against the shared store.
    """

    def __init__(self, base: StorageServer, prefix: str) -> None:
        self.base = base
        self.prefix = prefix

    def __getattr__(self, name):
        # Only reached for attributes not defined on the view itself:
        # clock, trace, charge_latency, fail/recover, stats_* ...
        return getattr(self.base, name)

    # ------------------------------------------------------------------ #
    # StorageServer interface
    # ------------------------------------------------------------------ #
    def read_batch(self, keys: Sequence[str], parallelism: int = 1,
                   record_batch: bool = True) -> BatchResult:
        result = self.base.read_batch([self.prefix + key for key in keys],
                                      parallelism=parallelism, record_batch=record_batch)
        values = {key: result.values.get(self.prefix + key) for key in keys}
        return BatchResult(values=values, elapsed_ms=result.elapsed_ms,
                           request_count=result.request_count)

    def write_batch(self, items: Dict[str, bytes], parallelism: int = 1,
                    record_batch: bool = True) -> BatchResult:
        prefixed = {self.prefix + key: payload for key, payload in items.items()}
        return self.base.write_batch(prefixed, parallelism=parallelism,
                                     record_batch=record_batch)

    def delete_batch(self, keys: Sequence[str], parallelism: int = 1) -> BatchResult:
        return self.base.delete_batch([self.prefix + key for key in keys],
                                      parallelism=parallelism)

    def contains(self, key: str) -> bool:
        return self.base.contains(self.prefix + key)

    def keys(self) -> List[str]:
        """Keys of this namespace, with the prefix stripped."""
        return [key[len(self.prefix):] for key in self.base.keys()
                if key.startswith(self.prefix)]
