"""Adversary-visible access trace.

Everything the honest-but-curious storage provider can observe is captured
here: per-request key, operation type, payload size and timestamp, plus
batch boundaries.  The obliviousness analysis (:mod:`repro.analysis`) works
entirely on these traces — if two different logical workloads produce traces
drawn from the same distribution, the adversary learns nothing about which
workload ran.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.storage.backend import StorageOp


@dataclass(frozen=True)
class TraceEvent:
    """One adversary-visible storage request."""

    seq: int
    time_ms: float
    op: StorageOp
    key: str
    size_bytes: int
    batch_id: int


@dataclass(frozen=True)
class BatchBoundary:
    """Marks the start of a physical batch as seen by the adversary."""

    batch_id: int
    time_ms: float
    kind: str          # "read" or "write"
    request_count: int


class AccessTrace:
    """Accumulates the sequence of requests observed by the storage server."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._batches: List[BatchBoundary] = []
        self._next_seq = 0
        self._next_batch = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def begin_batch(self, kind: str, time_ms: float, request_count: int) -> int:
        """Record the start of a batch; returns its id."""
        batch_id = self._next_batch
        self._next_batch += 1
        self._batches.append(BatchBoundary(batch_id, time_ms, kind, request_count))
        return batch_id

    def record(self, op: StorageOp, key: str, size_bytes: int, time_ms: float,
               batch_id: int = -1) -> TraceEvent:
        """Record one request and return the stored event."""
        event = TraceEvent(
            seq=self._next_seq,
            time_ms=time_ms,
            op=op,
            key=key,
            size_bytes=size_bytes,
            batch_id=batch_id,
        )
        self._next_seq += 1
        self._events.append(event)
        return event

    def clear(self) -> None:
        """Drop all recorded events (used between experiment phases)."""
        self._events.clear()
        self._batches.clear()
        self._next_seq = 0
        self._next_batch = 0

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @property
    def batches(self) -> List[BatchBoundary]:
        return list(self._batches)

    def __len__(self) -> int:
        return len(self._events)

    def keys_accessed(self, op: Optional[StorageOp] = None) -> List[str]:
        """Keys in access order, optionally filtered by operation kind."""
        return [e.key for e in self._events if op is None or e.op == op]

    def key_frequencies(self, op: Optional[StorageOp] = None) -> Counter:
        """How often each key was touched."""
        return Counter(self.keys_accessed(op))

    def ops_by_kind(self) -> Dict[StorageOp, int]:
        """Number of requests per operation kind."""
        counts: Dict[StorageOp, int] = {}
        for event in self._events:
            counts[event.op] = counts.get(event.op, 0) + 1
        return counts

    def batch_shape(self) -> List[Tuple[str, int]]:
        """The adversary-visible (kind, size) sequence of batches.

        Workload independence requires this sequence to depend only on the
        configuration, never on the data being accessed; tests compare the
        shapes produced by different logical workloads.
        """
        return [(b.kind, b.request_count) for b in self._batches]

    def events_in_window(self, start_ms: float, end_ms: float) -> List[TraceEvent]:
        """Events whose timestamp lies in [start_ms, end_ms)."""
        return [e for e in self._events if start_ms <= e.time_ms < end_ms]

    def keys_matching(self, prefix: str) -> List[str]:
        """Keys in access order restricted to those starting with ``prefix``."""
        return [e.key for e in self._events if e.key.startswith(prefix)]

    def filter_prefix(self, prefix: str, strip: bool = True) -> "AccessTrace":
        """New trace holding only events under ``prefix``.

        With ``strip`` (the default) the prefix is removed from the returned
        events' keys, so the view of one ORAM partition's storage namespace
        (``p<i>/``) looks exactly like a single-tree trace and all analysis
        helpers apply unchanged.
        """
        view = AccessTrace()
        for event in self._events:
            if not event.key.startswith(prefix):
                continue
            key = event.key[len(prefix):] if strip else event.key
            view.record(event.op, key, event.size_bytes, event.time_ms, event.batch_id)
        return view

    def total_bytes(self, op: Optional[StorageOp] = None) -> int:
        """Total payload bytes moved, optionally restricted to one op kind."""
        return sum(e.size_bytes for e in self._events if op is None or e.op == op)


def merge_traces(traces: Iterable[AccessTrace],
                 into: Optional[AccessTrace] = None) -> AccessTrace:
    """Merge several traces into one, re-sequencing events by time.

    Useful when an experiment runs multiple proxies against separate storage
    servers but the analysis wants a single adversary view.  Batch
    boundaries are carried over in time order so ``batch_shape()`` stays
    meaningful, but their ids are renumbered — events keep the batch id they
    had in their source trace, so event→batch links are not preserved across
    traces.  ``into`` lets callers supply the (empty) result instance.
    """
    merged = into if into is not None else AccessTrace()
    all_batches: List[BatchBoundary] = []
    all_events: List[TraceEvent] = []
    for trace in traces:
        all_events.extend(trace.events)
        all_batches.extend(trace.batches)
    all_batches.sort(key=lambda b: (b.time_ms, b.batch_id))
    for batch in all_batches:
        merged.begin_batch(batch.kind, batch.time_ms, batch.request_count)
    all_events.sort(key=lambda e: (e.time_ms, e.seq))
    for event in all_events:
        merged.record(event.op, event.key, event.size_bytes, event.time_ms, event.batch_id)
    return merged
