"""In-memory storage server with a pluggable latency model.

This plays the role of the untrusted cloud store (an in-memory hash map
behind a network in the paper's ``server`` and ``server WAN`` setups, or
DynamoDB in the ``dynamo`` setup).  Every request is recorded in an
:class:`~repro.storage.trace.AccessTrace`, and every batch's simulated
duration is computed from the latency model and the parallelism the caller
can extract.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel, get_latency_model
from repro.storage.backend import BatchResult, StorageOp, StorageServer
from repro.storage.trace import AccessTrace


class InMemoryStorageServer(StorageServer):
    """Key-value store over a simulated network.

    Parameters
    ----------
    latency:
        Backend name (``dummy``/``server``/``server_wan``/``dynamo``) or a
        :class:`LatencyModel` instance.
    clock:
        Shared simulated clock.  If omitted a private clock is created; the
        proxy normally supplies its own so that storage time and proxy time
        advance together.
    record_trace:
        Whether to record the adversary-visible trace (on by default; can be
        disabled for very large benchmark runs to save memory).
    """

    def __init__(self, latency="dummy", clock: Optional[SimClock] = None,
                 record_trace: bool = True, charge_latency: bool = True) -> None:
        self.latency: LatencyModel = get_latency_model(latency)
        self.clock = clock if clock is not None else SimClock()
        self.trace = AccessTrace() if record_trace else None
        self.charge_latency = charge_latency
        self._data: Dict[str, bytes] = {}
        self._failed = False
        self.stats_reads = 0
        self.stats_writes = 0
        self.stats_batches = 0

    # ------------------------------------------------------------------ #
    # Failure injection (the paper assumes storage is reliable; tests use
    # this to validate that the proxy surfaces storage unavailability).
    # ------------------------------------------------------------------ #
    def fail(self) -> None:
        """Make all subsequent requests raise, simulating an outage."""
        self._failed = True

    def recover(self) -> None:
        """Clear a previously injected failure."""
        self._failed = False

    def _check_available(self) -> None:
        if self._failed:
            raise ConnectionError("storage server is unavailable")

    # ------------------------------------------------------------------ #
    # Timing
    # ------------------------------------------------------------------ #
    def _batch_elapsed_ms(self, n_requests: int, is_write: bool, parallelism: int) -> float:
        """Simulated duration of a batch of ``n_requests`` homogeneous requests.

        With ``p`` usable parallel slots, ``n`` requests complete in
        ``ceil(n / p)`` waves of one round-trip each, plus a serialised
        server-side service term that models provisioned-throughput limits.
        """
        if n_requests == 0:
            return 0.0
        p = self.latency.effective_parallelism(parallelism)
        waves = math.ceil(n_requests / p)
        rtt = self.latency.rtt_ms(is_write)
        service = self.latency.per_request_server_ms * n_requests / p
        return waves * rtt + service

    # ------------------------------------------------------------------ #
    # StorageServer interface
    # ------------------------------------------------------------------ #
    def read_batch(self, keys: Sequence[str], parallelism: int = 1,
                   record_batch: bool = True) -> BatchResult:
        self._check_available()
        elapsed = self._batch_elapsed_ms(len(keys), is_write=False, parallelism=parallelism)
        start_ms = self.clock.now_ms
        if self.charge_latency:
            self.clock.advance(elapsed)
        self.stats_reads += len(keys)
        self.stats_batches += 1
        batch_id = -1
        if self.trace is not None and record_batch:
            batch_id = self.trace.begin_batch("read", start_ms, len(keys))
        values: Dict[str, Optional[bytes]] = {}
        for key in keys:
            value = self._data.get(key)
            values[key] = value
            if self.trace is not None:
                size = len(value) if value is not None else 0
                self.trace.record(StorageOp.READ, key, size, start_ms, batch_id)
        return BatchResult(values=values, elapsed_ms=elapsed, request_count=len(keys))

    def write_batch(self, items: Dict[str, bytes], parallelism: int = 1,
                    record_batch: bool = True) -> BatchResult:
        self._check_available()
        elapsed = self._batch_elapsed_ms(len(items), is_write=True, parallelism=parallelism)
        start_ms = self.clock.now_ms
        if self.charge_latency:
            self.clock.advance(elapsed)
        self.stats_writes += len(items)
        self.stats_batches += 1
        batch_id = -1
        if self.trace is not None and record_batch:
            batch_id = self.trace.begin_batch("write", start_ms, len(items))
        for key, payload in items.items():
            if not isinstance(payload, (bytes, bytearray)):
                raise TypeError(f"payload for {key!r} must be bytes, got {type(payload).__name__}")
            self._data[key] = bytes(payload)
            if self.trace is not None:
                self.trace.record(StorageOp.WRITE, key, len(payload), start_ms, batch_id)
        return BatchResult(values={}, elapsed_ms=elapsed, request_count=len(items))

    def delete_batch(self, keys: Sequence[str], parallelism: int = 1) -> BatchResult:
        self._check_available()
        elapsed = self._batch_elapsed_ms(len(keys), is_write=True, parallelism=parallelism)
        start_ms = self.clock.now_ms
        if self.charge_latency:
            self.clock.advance(elapsed)
        batch_id = -1
        if self.trace is not None:
            batch_id = self.trace.begin_batch("write", start_ms, len(keys))
        for key in keys:
            self._data.pop(key, None)
            if self.trace is not None:
                self.trace.record(StorageOp.DELETE, key, 0, start_ms, batch_id)
        return BatchResult(values={}, elapsed_ms=elapsed, request_count=len(keys))

    def contains(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> List[str]:
        return list(self._data.keys())

    def size_bytes(self) -> int:
        """Total bytes currently stored (diagnostic)."""
        return sum(len(v) for v in self._data.values())

    def snapshot(self) -> Dict[str, bytes]:
        """Copy of the stored data; used by recovery tests to diff state."""
        return dict(self._data)
