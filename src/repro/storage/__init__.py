"""Untrusted cloud storage.

The storage server is the *untrusted* half of Obladi's two-tier architecture:
it stores encrypted ORAM buckets, the write-ahead log, and checkpoints, and
it is controlled by an honest-but-curious adversary.  Everything the server
observes — which addresses are read or written, when, and in what sizes — is
recorded in an :class:`repro.storage.trace.AccessTrace` so the analysis
package can verify workload independence empirically.
"""

from repro.storage.backend import StorageServer, StorageRequest, StorageOp
from repro.storage.cluster import StorageCluster, build_storage, link_latency_models
from repro.storage.memory import InMemoryStorageServer
from repro.storage.namespace import NamespacedStorage, partition_prefix
from repro.storage.trace import AccessTrace, TraceEvent

__all__ = [
    "StorageServer",
    "StorageRequest",
    "StorageOp",
    "InMemoryStorageServer",
    "StorageCluster",
    "build_storage",
    "link_latency_models",
    "NamespacedStorage",
    "partition_prefix",
    "AccessTrace",
    "TraceEvent",
]
