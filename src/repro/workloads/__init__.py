"""Workloads used by the paper's evaluation.

* :mod:`repro.workloads.tpcc` — TPC-C (10 warehouses in the paper): the
  de-facto OLTP benchmark, with heterogeneous transaction sizes and heavy
  contention on the district rows.
* :mod:`repro.workloads.smallbank` — SmallBank: short, homogeneous banking
  transactions over checking/savings accounts.
* :mod:`repro.workloads.freehealth` — FreeHealth: a cloud EHR application
  (Figure 8's schema) with read-mostly transactions and contention on
  episode creation.
* :mod:`repro.workloads.ycsb` — YCSB-style key-value microbenchmark used for
  the ORAM-level experiments of Figure 10.
* :mod:`repro.workloads.driver` — legacy closed-loop entry points; the loop
  itself lives in :mod:`repro.api.loop` and runs any workload against any
  :class:`~repro.api.engine.TransactionEngine`.
"""

from repro.workloads.records import encode_record, decode_record
from repro.workloads.ycsb import YCSBWorkload, YCSBConfig
from repro.workloads.tpcc import TPCCWorkload, TPCCConfig
from repro.workloads.smallbank import SmallBankWorkload, SmallBankConfig
from repro.workloads.freehealth import FreeHealthWorkload, FreeHealthConfig
from repro.workloads.driver import run_obladi_closed_loop, run_baseline_closed_loop, WorkloadRun

__all__ = [
    "encode_record",
    "decode_record",
    "YCSBWorkload",
    "YCSBConfig",
    "TPCCWorkload",
    "TPCCConfig",
    "SmallBankWorkload",
    "SmallBankConfig",
    "FreeHealthWorkload",
    "FreeHealthConfig",
    "run_obladi_closed_loop",
    "run_baseline_closed_loop",
    "WorkloadRun",
]
