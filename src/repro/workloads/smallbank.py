"""SmallBank: short, homogeneous banking transactions.

SmallBank (from the OLTP-Bench suite the paper uses) models a bank with one
checking and one savings account per customer and six transaction types,
each touching between three and six rows — which is why the paper can pick a
much shorter epoch for it than for TPC-C.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.core.client import AbortRequest, Read, ReadMany, Write
from repro.workloads.records import encode_record, make_key, record_field, update_record


@dataclass(frozen=True)
class SmallBankConfig:
    """Scale and mix parameters.  The paper uses one million accounts."""

    num_accounts: int = 1000
    hotspot_fraction: float = 0.1       # fraction of accounts that are "hot"
    hotspot_probability: float = 0.25   # probability a transaction targets a hot account
    initial_checking: float = 100.0
    initial_savings: float = 500.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_accounts < 2:
            raise ValueError("SmallBank needs at least two accounts")
        if not 0.0 <= self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")


#: Standard SmallBank mix (uniform over the six transaction types).
STANDARD_MIX = {
    "balance": 15,
    "deposit_checking": 15,
    "transact_savings": 15,
    "amalgamate": 15,
    "write_check": 15,
    "send_payment": 25,
}


class SmallBankWorkload:
    """Initial population and the six SmallBank transaction programs."""

    def __init__(self, config: Optional[SmallBankConfig] = None) -> None:
        self.config = config if config is not None else SmallBankConfig()
        self.rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------ #
    # Keys and population
    # ------------------------------------------------------------------ #
    @staticmethod
    def checking_key(account: int) -> str:
        return make_key("checking", account)

    @staticmethod
    def savings_key(account: int) -> str:
        return make_key("savings", account)

    def initial_data(self) -> Dict[str, bytes]:
        cfg = self.config
        data: Dict[str, bytes] = {}
        for account in range(cfg.num_accounts):
            data[self.checking_key(account)] = encode_record(
                {"account": account, "balance": cfg.initial_checking})
            data[self.savings_key(account)] = encode_record(
                {"account": account, "balance": cfg.initial_savings})
        return data

    def _random_account(self) -> int:
        cfg = self.config
        hot_accounts = max(1, int(cfg.num_accounts * cfg.hotspot_fraction))
        if self.rng.random() < cfg.hotspot_probability:
            return self.rng.randrange(hot_accounts)
        return self.rng.randrange(cfg.num_accounts)

    def _two_accounts(self):
        a = self._random_account()
        b = self._random_account()
        while b == a:
            b = self._random_account()
        return a, b

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #
    def balance_program(self, account: Optional[int] = None) -> Callable[[], Iterator]:
        """Read-only: total balance of one customer."""
        acct = account if account is not None else self._random_account()

        def program():
            rows = yield ReadMany([self.checking_key(acct), self.savings_key(acct)])
            total = ((record_field(rows[self.checking_key(acct)], "balance", 0.0) or 0.0)
                     + (record_field(rows[self.savings_key(acct)], "balance", 0.0) or 0.0))
            return {"account": acct, "balance": round(total, 2)}

        return program

    def deposit_checking_program(self, account: Optional[int] = None,
                                 amount: Optional[float] = None) -> Callable[[], Iterator]:
        acct = account if account is not None else self._random_account()
        value = amount if amount is not None else round(self.rng.uniform(1.0, 100.0), 2)

        def program():
            checking = yield Read(self.checking_key(acct))
            balance = (record_field(checking, "balance", 0.0) or 0.0) + value
            yield Write(self.checking_key(acct),
                        update_record(checking, balance=round(balance, 2)))
            return {"account": acct, "balance": round(balance, 2)}

        return program

    def transact_savings_program(self, account: Optional[int] = None,
                                 amount: Optional[float] = None) -> Callable[[], Iterator]:
        """Add (or withdraw) from savings; aborts if it would go negative."""
        acct = account if account is not None else self._random_account()
        value = amount if amount is not None else round(self.rng.uniform(-50.0, 100.0), 2)

        def program():
            savings = yield Read(self.savings_key(acct))
            balance = (record_field(savings, "balance", 0.0) or 0.0) + value
            if balance < 0:
                yield AbortRequest("insufficient savings")
                return {"account": acct, "aborted": True}
            yield Write(self.savings_key(acct),
                        update_record(savings, balance=round(balance, 2)))
            return {"account": acct, "balance": round(balance, 2)}

        return program

    def amalgamate_program(self) -> Callable[[], Iterator]:
        """Move everything from one customer's accounts to another's checking."""
        src, dst = self._two_accounts()

        def program():
            rows = yield ReadMany([self.savings_key(src), self.checking_key(src),
                                   self.checking_key(dst)])
            src_savings = rows[self.savings_key(src)]
            src_checking = rows[self.checking_key(src)]
            dst_checking = rows[self.checking_key(dst)]
            moved = ((record_field(src_savings, "balance", 0.0) or 0.0)
                     + (record_field(src_checking, "balance", 0.0) or 0.0))
            yield Write(self.savings_key(src), update_record(src_savings, balance=0.0))
            yield Write(self.checking_key(src), update_record(src_checking, balance=0.0))
            new_balance = (record_field(dst_checking, "balance", 0.0) or 0.0) + moved
            yield Write(self.checking_key(dst),
                        update_record(dst_checking, balance=round(new_balance, 2)))
            return {"from": src, "to": dst, "moved": round(moved, 2)}

        return program

    def write_check_program(self, account: Optional[int] = None,
                            amount: Optional[float] = None) -> Callable[[], Iterator]:
        """Write a check against total funds, applying an overdraft penalty."""
        acct = account if account is not None else self._random_account()
        value = amount if amount is not None else round(self.rng.uniform(1.0, 200.0), 2)

        def program():
            rows = yield ReadMany([self.savings_key(acct), self.checking_key(acct)])
            savings = rows[self.savings_key(acct)]
            checking = rows[self.checking_key(acct)]
            total = ((record_field(savings, "balance", 0.0) or 0.0)
                     + (record_field(checking, "balance", 0.0) or 0.0))
            penalty = 1.0 if total < value else 0.0
            new_checking = (record_field(checking, "balance", 0.0) or 0.0) - value - penalty
            yield Write(self.checking_key(acct),
                        update_record(checking, balance=round(new_checking, 2)))
            return {"account": acct, "penalty": penalty}

        return program

    def send_payment_program(self) -> Callable[[], Iterator]:
        """Transfer between two checking accounts; aborts on insufficient funds."""
        src, dst = self._two_accounts()
        value = round(self.rng.uniform(1.0, 50.0), 2)

        def program():
            rows = yield ReadMany([self.checking_key(src), self.checking_key(dst)])
            src_checking = rows[self.checking_key(src)]
            src_balance = record_field(src_checking, "balance", 0.0) or 0.0
            if src_balance < value:
                yield AbortRequest("insufficient funds")
                return {"from": src, "aborted": True}
            dst_checking = rows[self.checking_key(dst)]
            dst_balance = record_field(dst_checking, "balance", 0.0) or 0.0
            yield Write(self.checking_key(src),
                        update_record(src_checking, balance=round(src_balance - value, 2)))
            yield Write(self.checking_key(dst),
                        update_record(dst_checking, balance=round(dst_balance + value, 2)))
            return {"from": src, "to": dst, "amount": value}

        return program

    # ------------------------------------------------------------------ #
    # Mix
    # ------------------------------------------------------------------ #
    def transaction_factory(self, mix: Optional[Dict[str, int]] = None) -> Callable[[], Iterator]:
        weights = mix if mix is not None else STANDARD_MIX
        names = list(weights)
        chosen = self.rng.choices(names, weights=[weights[n] for n in names], k=1)[0]
        builders = {
            "balance": self.balance_program,
            "deposit_checking": self.deposit_checking_program,
            "transact_savings": self.transact_savings_program,
            "amalgamate": self.amalgamate_program,
            "write_check": self.write_check_program,
            "send_payment": self.send_payment_program,
        }
        return builders[chosen]()

    def transaction_factories(self, count: int,
                              mix: Optional[Dict[str, int]] = None) -> List[Callable[[], Iterator]]:
        return [self.transaction_factory(mix) for _ in range(count)]
