"""YCSB-style key-value microbenchmark.

The paper uses the YCSB generator for its microbenchmarks (Figure 10): a
fixed population of records accessed with a configurable read/update mix and
key distribution (uniform or Zipfian).  This module provides both

* raw key streams for the ORAM-level experiments (batch-size sweeps and
  parallelism measurements operate below the transaction layer), and
* transaction programs for proxy-level experiments.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.client import Read, ReadMany, Write
from repro.workloads.records import encode_record, make_key


@dataclass(frozen=True)
class YCSBConfig:
    """Parameters of a YCSB workload instance."""

    num_records: int = 10_000
    value_size: int = 100
    read_proportion: float = 0.5
    update_proportion: float = 0.5
    ops_per_transaction: int = 4
    distribution: str = "uniform"        # "uniform" or "zipfian"
    zipfian_theta: float = 0.99
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_records < 1:
            raise ValueError("num_records must be positive")
        if not math.isclose(self.read_proportion + self.update_proportion, 1.0, abs_tol=1e-6):
            raise ValueError("read and update proportions must sum to 1")
        if self.distribution not in ("uniform", "zipfian"):
            raise ValueError("distribution must be 'uniform' or 'zipfian'")


class ZipfianGenerator:
    """Zipfian key index generator (the YCSB 'scrambled zipfian' shape).

    Uses the Gray/Jim Gray rejection-free method: precomputing zeta over the
    key space and inverting the CDF approximation.
    """

    def __init__(self, n: int, theta: float, rng: random.Random) -> None:
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n
        self.theta = theta
        self.rng = rng
        self.zetan = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1 - (2.0 / n) ** (1 - theta)) / (1 - self.zeta2 / self.zetan)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next_index(self) -> int:
        u = self.rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self.eta * u - self.eta + 1) ** self.alpha)) % self.n


class YCSBWorkload:
    """Key/operation generator plus transaction factories."""

    def __init__(self, config: Optional[YCSBConfig] = None) -> None:
        self.config = config if config is not None else YCSBConfig()
        self.rng = random.Random(self.config.seed)
        self._zipf: Optional[ZipfianGenerator] = None
        if self.config.distribution == "zipfian":
            self._zipf = ZipfianGenerator(self.config.num_records, self.config.zipfian_theta,
                                          self.rng)

    # ------------------------------------------------------------------ #
    # Keys and values
    # ------------------------------------------------------------------ #
    def key(self, index: int) -> str:
        return make_key("ycsb", index)

    def value(self, index: int) -> bytes:
        """A record payload of roughly ``value_size`` bytes."""
        filler = "x" * max(0, self.config.value_size - 24)
        return encode_record({"id": index, "f": filler})

    def initial_data(self) -> Dict[str, bytes]:
        """The full populated record set (used by proxy-level experiments)."""
        return {self.key(i): self.value(i) for i in range(self.config.num_records)}

    def next_key_index(self) -> int:
        if self._zipf is not None:
            return self._zipf.next_index()
        return self.rng.randrange(self.config.num_records)

    def key_stream(self, count: int) -> List[str]:
        """``count`` keys drawn from the configured distribution."""
        return [self.key(self.next_key_index()) for _ in range(count)]

    def block_id_stream(self, count: int) -> List[int]:
        """Raw block ids for ORAM-level experiments (key i maps to block i)."""
        return [self.next_key_index() for _ in range(count)]

    def operation_stream(self, count: int) -> List[Tuple[str, str, Optional[bytes]]]:
        """``(op, key, value)`` triples following the read/update mix."""
        ops: List[Tuple[str, str, Optional[bytes]]] = []
        for _ in range(count):
            index = self.next_key_index()
            if self.rng.random() < self.config.read_proportion:
                ops.append(("read", self.key(index), None))
            else:
                ops.append(("update", self.key(index), self.value(index)))
        return ops

    # ------------------------------------------------------------------ #
    # Transaction programs
    # ------------------------------------------------------------------ #
    def transaction_factory(self) -> Callable[[], Iterator]:
        """A factory producing one random multi-operation transaction.

        YCSB operations are independent point accesses, so the program reads
        all its keys in one round and then applies its updates.
        """
        ops = self.operation_stream(self.config.ops_per_transaction)

        def program():
            read_keys = [key for op, key, _value in ops if op == "read"]
            observed = {}
            if read_keys:
                observed = yield ReadMany(read_keys)
            for op, key, value in ops:
                if op == "update":
                    yield Write(key, value)
            return observed

        return program

    def transaction_factories(self, count: int) -> List[Callable[[], Iterator]]:
        """``count`` independent transaction factories."""
        return [self.transaction_factory() for _ in range(count)]
