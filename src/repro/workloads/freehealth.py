"""FreeHealth: an electronic health record (EHR) application.

FreeHealth is the real cloud EHR system the paper ports (Figure 8): doctors
create patients, open *episodes* (the core unit of care that groups
prescriptions, observations and history), look up medical history, and
prescribe drugs after checking interactions.  The workload is read-mostly
with short transactions, and both Obladi and NoPriv end up
contention-bottlenecked on episode creation — the episode counter is a hot
record, just like TPC-C's district rows.

The schema follows Figure 8:

=============================  =============================================
``user:{u}``                    clinician accounts (role, login)
``patient:{p}``                 patient demographics + status
``patient_episode_count:{p}``   per-patient episode counter (hot record)
``episode:{p}:{e}``             one episode (creator, type)
``episode_content:{p}:{e}:{n}`` content rows attached to an episode
``prescription:{p}:{n}``        prescriptions (drug, dosage)
``patient_rx_count:{p}``        per-patient prescription counter
``drug:{d}``                    drug reference data incl. interaction list
``pmh:{p}:{n}``                 past medical history entries
``pmh_count:{p}``               per-patient history counter
=============================  =============================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.core.client import AbortRequest, Read, ReadMany, Write
from repro.workloads.records import (encode_record, make_key, record_field, update_record)


@dataclass(frozen=True)
class FreeHealthConfig:
    """Scale parameters for the EHR database."""

    num_users: int = 20
    num_patients: int = 500
    num_drugs: int = 100
    initial_episodes_per_patient: int = 2
    initial_prescriptions_per_patient: int = 1
    interactions_per_drug: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_patients < 1 or self.num_drugs < 1 or self.num_users < 1:
            raise ValueError("FreeHealth needs at least one user, patient and drug")


#: Read-mostly mix modelled on the paper's description of the application:
#: episode creation is the contended write path; most traffic is lookups.
STANDARD_MIX = {
    "create_patient": 4,
    "create_episode": 14,
    "add_episode_content": 10,
    "prescribe": 12,
    "lookup_patient": 20,
    "medical_history": 16,
    "list_prescriptions": 14,
    "drug_interactions": 6,
    "update_patient": 4,
}


class FreeHealthWorkload:
    """Initial population and transaction programs for the EHR workload."""

    def __init__(self, config: Optional[FreeHealthConfig] = None) -> None:
        self.config = config if config is not None else FreeHealthConfig()
        self.rng = random.Random(self.config.seed)
        self._next_patient_id = self.config.num_patients

    # ------------------------------------------------------------------ #
    # Initial population
    # ------------------------------------------------------------------ #
    def initial_data(self) -> Dict[str, bytes]:
        cfg = self.config
        data: Dict[str, bytes] = {}
        for u in range(cfg.num_users):
            role = "doctor" if u % 3 else "nurse"
            data[make_key("user", u)] = encode_record({"id": u, "role": role,
                                                       "login": f"user{u}"})
        for d in range(cfg.num_drugs):
            interactions = [(d + k + 1) % cfg.num_drugs
                            for k in range(cfg.interactions_per_drug)]
            data[make_key("drug", d)] = encode_record(
                {"id": d, "name": f"drug-{d}", "interactions": interactions})
        for p in range(cfg.num_patients):
            data[make_key("patient", p)] = encode_record(
                {"id": p, "creator": p % cfg.num_users, "active": 1, "age": 20 + p % 60})
            data[make_key("patient_episode_count", p)] = encode_record(
                {"count": cfg.initial_episodes_per_patient})
            data[make_key("patient_rx_count", p)] = encode_record(
                {"count": cfg.initial_prescriptions_per_patient})
            data[make_key("pmh_count", p)] = encode_record({"count": 1})
            data[make_key("pmh", p, 0)] = encode_record(
                {"type": "allergy", "detail": f"allergen-{p % 7}"})
            for e in range(cfg.initial_episodes_per_patient):
                data[make_key("episode", p, e)] = encode_record(
                    {"id": e, "creator": p % cfg.num_users, "type": "consultation"})
                data[make_key("episode_content", p, e, 0)] = encode_record(
                    {"type": "note", "xml": f"visit-{e}"})
            for n in range(cfg.initial_prescriptions_per_patient):
                data[make_key("prescription", p, n)] = encode_record(
                    {"drug": (p + n) % cfg.num_drugs, "dosage": 1})
        data[make_key("patient_count", "global")] = encode_record(
            {"count": cfg.num_patients})
        return data

    # ------------------------------------------------------------------ #
    # Random input helpers
    # ------------------------------------------------------------------ #
    def _random_patient(self) -> int:
        return self.rng.randrange(self.config.num_patients)

    def _random_user(self) -> int:
        return self.rng.randrange(self.config.num_users)

    def _random_drug(self) -> int:
        return self.rng.randrange(self.config.num_drugs)

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #
    def create_patient_program(self) -> Callable[[], Iterator]:
        """Register a new patient (bumps the global patient counter)."""
        creator = self._random_user()

        def program():
            rows = yield ReadMany([make_key("user", creator),
                                   make_key("patient_count", "global")])
            counter_row = rows[make_key("patient_count", "global")]
            new_id = record_field(counter_row, "count", 0) or 0
            yield Write(make_key("patient_count", "global"),
                        update_record(counter_row, count=new_id + 1))
            yield Write(make_key("patient", new_id),
                        encode_record({"id": new_id, "creator": creator, "active": 1,
                                       "age": 30}))
            yield Write(make_key("patient_episode_count", new_id),
                        encode_record({"count": 0}))
            yield Write(make_key("patient_rx_count", new_id), encode_record({"count": 0}))
            yield Write(make_key("pmh_count", new_id), encode_record({"count": 0}))
            return {"patient": new_id}

        return program

    def create_episode_program(self, patient: Optional[int] = None) -> Callable[[], Iterator]:
        """Open a new episode of care: the contended write path of the app."""
        p = patient if patient is not None else self._random_patient()
        creator = self._random_user()

        def program():
            rows = yield ReadMany([make_key("patient", p),
                                   make_key("patient_episode_count", p)])
            patient_row = rows[make_key("patient", p)]
            if record_field(patient_row, "active", 0) != 1:
                yield AbortRequest("inactive patient")
                return {"patient": p, "aborted": True}
            counter_row = rows[make_key("patient_episode_count", p)]
            episode_id = record_field(counter_row, "count", 0) or 0
            yield Write(make_key("patient_episode_count", p),
                        update_record(counter_row, count=episode_id + 1))
            yield Write(make_key("episode", p, episode_id),
                        encode_record({"id": episode_id, "creator": creator,
                                       "type": "consultation"}))
            yield Write(make_key("episode_content", p, episode_id, 0),
                        encode_record({"type": "note", "xml": "initial"}))
            return {"patient": p, "episode": episode_id}

        return program

    def add_episode_content_program(self) -> Callable[[], Iterator]:
        """Attach an observation to the patient's most recent episode."""
        p = self._random_patient()
        content_type = self.rng.choice(["observation", "lab", "note"])

        def program():
            counter_row = yield Read(make_key("patient_episode_count", p))
            count = record_field(counter_row, "count", 0) or 0
            if count == 0:
                yield AbortRequest("patient has no episode")
                return {"patient": p, "aborted": True}
            episode_id = count - 1
            episode_row = yield Read(make_key("episode", p, episode_id))
            del episode_row
            yield Write(make_key("episode_content", p, episode_id, 1),
                        encode_record({"type": content_type, "xml": "update"}))
            return {"patient": p, "episode": episode_id}

        return program

    def prescribe_program(self) -> Callable[[], Iterator]:
        """Prescribe a drug after checking interactions with existing prescriptions."""
        p = self._random_patient()
        drug = self._random_drug()

        def program():
            rows = yield ReadMany([make_key("patient", p), make_key("drug", drug),
                                   make_key("patient_rx_count", p)])
            drug_row = rows[make_key("drug", drug)]
            interactions = set(record_field(drug_row, "interactions", []) or [])
            rx_counter = rows[make_key("patient_rx_count", p)]
            rx_count = record_field(rx_counter, "count", 0) or 0
            existing_rows = {}
            if rx_count > 0:
                rx_keys = [make_key("prescription", p, n) for n in range(min(rx_count, 3))]
                existing_rows = yield ReadMany(rx_keys)
            for existing in existing_rows.values():
                existing_drug = record_field(existing, "drug", -1)
                if existing_drug in interactions:
                    yield AbortRequest("drug interaction")
                    return {"patient": p, "drug": drug, "interaction": existing_drug}
            yield Write(make_key("patient_rx_count", p),
                        update_record(rx_counter, count=rx_count + 1))
            yield Write(make_key("prescription", p, rx_count),
                        encode_record({"drug": drug, "dosage": 1}))
            return {"patient": p, "drug": drug, "prescription": rx_count}

        return program

    def lookup_patient_program(self) -> Callable[[], Iterator]:
        """Read-only chart lookup: demographics plus the latest episode."""
        p = self._random_patient()

        def program():
            rows = yield ReadMany([make_key("patient", p),
                                   make_key("patient_episode_count", p)])
            patient_row = rows[make_key("patient", p)]
            count = record_field(rows[make_key("patient_episode_count", p)], "count", 0) or 0
            latest = None
            if count > 0:
                episode_row = yield Read(make_key("episode", p, count - 1))
                latest = record_field(episode_row, "type", None)
            return {"patient": p, "active": record_field(patient_row, "active", 0),
                    "latest_episode": latest}

        return program

    def medical_history_program(self) -> Callable[[], Iterator]:
        """Read-only: past medical history entries for a patient."""
        p = self._random_patient()

        def program():
            header = yield ReadMany([make_key("patient", p), make_key("pmh_count", p)])
            count = record_field(header[make_key("pmh_count", p)], "count", 0) or 0
            entries = []
            if count > 0:
                keys = [make_key("pmh", p, n) for n in range(min(count, 3))]
                rows = yield ReadMany(keys)
                entries = [record_field(rows[k], "type", None) for k in keys]
            return {"patient": p, "history": entries}

        return program

    def list_prescriptions_program(self) -> Callable[[], Iterator]:
        """Read-only: current prescriptions of a patient."""
        p = self._random_patient()

        def program():
            counter_row = yield Read(make_key("patient_rx_count", p))
            count = record_field(counter_row, "count", 0) or 0
            drugs = []
            if count > 0:
                keys = [make_key("prescription", p, n) for n in range(min(count, 4))]
                rows = yield ReadMany(keys)
                drugs = [record_field(rows[k], "drug", None) for k in keys]
            return {"patient": p, "drugs": drugs}

        return program

    def drug_interactions_program(self) -> Callable[[], Iterator]:
        """Read-only: interaction list of a pair of drugs."""
        a = self._random_drug()
        b = self._random_drug()

        def program():
            rows = yield ReadMany([make_key("drug", a), make_key("drug", b)])
            row_a = rows[make_key("drug", a)]
            row_b = rows[make_key("drug", b)]
            inter_a = set(record_field(row_a, "interactions", []) or [])
            conflict = b in inter_a or a in set(record_field(row_b, "interactions", []) or [])
            return {"drugs": (a, b), "conflict": conflict}

        return program

    def update_patient_program(self) -> Callable[[], Iterator]:
        """Update patient demographics / activation status."""
        p = self._random_patient()
        activate = self.rng.random() < 0.9

        def program():
            patient_row = yield Read(make_key("patient", p))
            yield Write(make_key("patient", p),
                        update_record(patient_row, active=1 if activate else 0))
            return {"patient": p, "active": activate}

        return program

    # ------------------------------------------------------------------ #
    # Mix
    # ------------------------------------------------------------------ #
    def transaction_factory(self, mix: Optional[Dict[str, int]] = None) -> Callable[[], Iterator]:
        weights = mix if mix is not None else STANDARD_MIX
        names = list(weights)
        chosen = self.rng.choices(names, weights=[weights[n] for n in names], k=1)[0]
        builders = {
            "create_patient": self.create_patient_program,
            "create_episode": self.create_episode_program,
            "add_episode_content": self.add_episode_content_program,
            "prescribe": self.prescribe_program,
            "lookup_patient": self.lookup_patient_program,
            "medical_history": self.medical_history_program,
            "list_prescriptions": self.list_prescriptions_program,
            "drug_interactions": self.drug_interactions_program,
            "update_patient": self.update_patient_program,
        }
        return builders[chosen]()

    def transaction_factories(self, count: int,
                              mix: Optional[Dict[str, int]] = None) -> List[Callable[[], Iterator]]:
        return [self.transaction_factory(mix) for _ in range(count)]
