"""Record encoding for the key-value workloads.

Obladi stores opaque byte values; the workloads encode their table rows as
compact JSON so that records stay small enough to fit in an ORAM block and
remain human-readable in tests.  Keys follow a ``table:part1:part2`` naming
convention; helpers here build and parse them consistently.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Union


Record = Dict[str, Union[int, float, str, List[int], List[str]]]


def encode_record(record: Record) -> bytes:
    """Serialise a row as compact JSON bytes (stable key order)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")


def decode_record(payload: Optional[bytes]) -> Optional[Record]:
    """Parse a row previously produced by :func:`encode_record`.

    ``None`` and empty payloads (deleted / never-written keys) decode to
    ``None`` so callers can treat "missing" uniformly.
    """
    if payload is None or len(payload) == 0:
        return None
    return json.loads(payload.decode("utf-8"))


def make_key(table: str, *parts: Union[int, str]) -> str:
    """Build a ``table:part:part`` key."""
    return ":".join([table] + [str(p) for p in parts])


def split_key(key: str) -> List[str]:
    """Inverse of :func:`make_key`."""
    return key.split(":")


def update_record(payload: Optional[bytes], **changes) -> bytes:
    """Return a new encoded record with ``changes`` applied.

    Missing records start from an empty row, which keeps workload code free
    of existence checks for counters and accumulator fields.
    """
    record = decode_record(payload) or {}
    record.update(changes)
    return encode_record(record)


def bump_counter(payload: Optional[bytes], field: str, delta: Union[int, float] = 1) -> bytes:
    """Increment a numeric field of an encoded record."""
    record = decode_record(payload) or {}
    record[field] = record.get(field, 0) + delta
    return encode_record(record)


def record_field(payload: Optional[bytes], field: str, default=None):
    """Read one field out of an encoded record."""
    record = decode_record(payload)
    if record is None:
        return default
    return record.get(field, default)
