"""TPC-C over a key-value interface.

The paper runs TPC-C with 10 warehouses and, following prior transactional
key-value stores, adds two explicit secondary-index tables: customers by
last name (used by payment and order-status) and each customer's latest
order (used by order-status).  This module reproduces that port: every table
row is a key-value record, the five standard transactions are generator
programs, and the scale factors are configurable so tests can run tiny
instances while benchmarks use the paper's 10 warehouses.

Key schema
----------
==========================  ===========================================
``warehouse:{w}``            warehouse row (ytd)
``district:{w}:{d}``         district row (next_o_id, ytd)
``customer:{w}:{d}:{c}``     customer row (balance, ytd_payment, name)
``cust_name_idx:{w}:{d}:{last}``  list of customer ids with that last name
``cust_last_order:{w}:{d}:{c}``   latest order id for the customer
``item:{i}``                 item row (price, name)
``stock:{w}:{i}``            stock row (quantity, ytd)
``order:{w}:{d}:{o}``        order row (customer, lines, carrier)
``order_line:{w}:{d}:{o}:{n}``  one order line
``new_order:{w}:{d}:{o}``    new-order queue entry
==========================  ===========================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from repro.core.client import Read, ReadMany, Write
from repro.workloads.records import (bump_counter, decode_record, encode_record, make_key,
                                     record_field, update_record)


#: Last names generated the TPC-C way: concatenating syllables indexed by digits.
_SYLLABLES = ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"]


def last_name(number: int) -> str:
    """TPC-C last-name generation from a number in [0, 999]."""
    digits = [(number // 100) % 10, (number // 10) % 10, number % 10]
    return "".join(_SYLLABLES[d] for d in digits)


@dataclass(frozen=True)
class TPCCConfig:
    """Scale factors.  The paper uses 10 warehouses at full TPC-C scale."""

    warehouses: int = 10
    districts_per_warehouse: int = 10
    customers_per_district: int = 30
    items: int = 1000
    initial_orders_per_district: int = 5
    max_items_per_order: int = 5
    payment_by_name_probability: float = 0.6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.warehouses < 1 or self.districts_per_warehouse < 1:
            raise ValueError("need at least one warehouse and district")
        if self.customers_per_district < 1 or self.items < 1:
            raise ValueError("need at least one customer and item")


#: Standard TPC-C transaction mix (weights sum to 100).
STANDARD_MIX = {
    "new_order": 45,
    "payment": 43,
    "order_status": 4,
    "delivery": 4,
    "stock_level": 4,
}


class TPCCWorkload:
    """Initial population and transaction programs for TPC-C."""

    def __init__(self, config: Optional[TPCCConfig] = None) -> None:
        self.config = config if config is not None else TPCCConfig()
        self.rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------ #
    # Initial population
    # ------------------------------------------------------------------ #
    def initial_data(self) -> Dict[str, bytes]:
        cfg = self.config
        data: Dict[str, bytes] = {}
        for i in range(cfg.items):
            data[make_key("item", i)] = encode_record(
                {"id": i, "price": round(1 + (i % 100) * 0.5, 2), "name": f"item-{i}"})

        for w in range(cfg.warehouses):
            data[make_key("warehouse", w)] = encode_record({"id": w, "ytd": 0})
            for i in range(cfg.items):
                data[make_key("stock", w, i)] = encode_record(
                    {"item": i, "qty": 50 + (i % 50), "ytd": 0})
            for d in range(cfg.districts_per_warehouse):
                data[make_key("district", w, d)] = encode_record(
                    {"id": d, "next_o_id": cfg.initial_orders_per_district, "ytd": 0})
                name_index: Dict[str, List[int]] = {}
                for c in range(cfg.customers_per_district):
                    lname = last_name(c % 100)
                    data[make_key("customer", w, d, c)] = encode_record(
                        {"id": c, "last": lname, "balance": -10.0, "ytd_payment": 10.0,
                         "payments": 1, "deliveries": 0})
                    name_index.setdefault(lname, []).append(c)
                    data[make_key("cust_last_order", w, d, c)] = encode_record({"order": -1})
                for lname, ids in name_index.items():
                    data[make_key("cust_name_idx", w, d, lname)] = encode_record({"ids": ids})
                for o in range(cfg.initial_orders_per_district):
                    customer = o % cfg.customers_per_district
                    data[make_key("order", w, d, o)] = encode_record(
                        {"id": o, "customer": customer, "lines": 1, "carrier": -1})
                    data[make_key("order_line", w, d, o, 0)] = encode_record(
                        {"item": o % cfg.items, "qty": 1, "amount": 1.0})
                    data[make_key("new_order", w, d, o)] = encode_record({"order": o})
                    data[make_key("cust_last_order", w, d, customer)] = encode_record(
                        {"order": o})
                data[make_key("district_oldest_new_order", w, d)] = encode_record({"oldest": 0})
        return data

    # ------------------------------------------------------------------ #
    # Random input helpers
    # ------------------------------------------------------------------ #
    def _random_warehouse(self) -> int:
        return self.rng.randrange(self.config.warehouses)

    def _random_district(self) -> int:
        return self.rng.randrange(self.config.districts_per_warehouse)

    def _random_customer(self) -> int:
        return self.rng.randrange(self.config.customers_per_district)

    def _random_item(self) -> int:
        return self.rng.randrange(self.config.items)

    # ------------------------------------------------------------------ #
    # Transactions
    # ------------------------------------------------------------------ #
    def new_order_program(self, warehouse: Optional[int] = None,
                          district: Optional[int] = None) -> Callable[[], Iterator]:
        """The new-order transaction: the write-heavy heart of TPC-C."""
        cfg = self.config
        w = warehouse if warehouse is not None else self._random_warehouse()
        d = district if district is not None else self._random_district()
        c = self._random_customer()
        n_items = self.rng.randint(1, cfg.max_items_per_order)
        items = [self._random_item() for _ in range(n_items)]
        quantities = [self.rng.randint(1, 10) for _ in range(n_items)]

        def program():
            # Round 1: the independent header rows.
            header = yield ReadMany([make_key("warehouse", w), make_key("district", w, d),
                                     make_key("customer", w, d, c)])
            district_row = header[make_key("district", w, d)]
            next_o_id = record_field(district_row, "next_o_id", 0)
            yield Write(make_key("district", w, d),
                        update_record(district_row, next_o_id=next_o_id + 1))

            # Round 2: item and stock rows for every order line (independent).
            item_keys = [make_key("item", item) for item in items]
            stock_keys = [make_key("stock", w, item) for item in items]
            rows = yield ReadMany(item_keys + stock_keys)

            total = 0.0
            for line, (item, qty) in enumerate(zip(items, quantities)):
                price = record_field(rows[make_key("item", item)], "price", 1.0)
                stock_row = rows[make_key("stock", w, item)]
                stock_qty = record_field(stock_row, "qty", 0)
                new_qty = stock_qty - qty if stock_qty - qty >= 10 else stock_qty - qty + 91
                yield Write(make_key("stock", w, item),
                            update_record(stock_row, qty=new_qty))
                amount = round(price * qty, 2)
                total += amount
                yield Write(make_key("order_line", w, d, next_o_id, line),
                            encode_record({"item": item, "qty": qty, "amount": amount}))

            yield Write(make_key("order", w, d, next_o_id),
                        encode_record({"id": next_o_id, "customer": c, "lines": n_items,
                                       "carrier": -1}))
            yield Write(make_key("new_order", w, d, next_o_id),
                        encode_record({"order": next_o_id}))
            yield Write(make_key("cust_last_order", w, d, c),
                        encode_record({"order": next_o_id}))
            return {"order": next_o_id, "total": round(total, 2)}

        return program

    def payment_program(self, warehouse: Optional[int] = None,
                        district: Optional[int] = None) -> Callable[[], Iterator]:
        """The payment transaction: updates warehouse/district/customer YTD."""
        cfg = self.config
        w = warehouse if warehouse is not None else self._random_warehouse()
        d = district if district is not None else self._random_district()
        amount = round(self.rng.uniform(1.0, 5000.0), 2)
        by_name = self.rng.random() < cfg.payment_by_name_probability
        customer = self._random_customer()
        lname = last_name(customer % 100)

        def program():
            # Round 1: warehouse + district (+ the last-name index when used).
            keys = [make_key("warehouse", w), make_key("district", w, d)]
            if by_name:
                keys.append(make_key("cust_name_idx", w, d, lname))
            header = yield ReadMany(keys)
            yield Write(make_key("warehouse", w),
                        bump_counter(header[make_key("warehouse", w)], "ytd", amount))
            yield Write(make_key("district", w, d),
                        bump_counter(header[make_key("district", w, d)], "ytd", amount))

            if by_name:
                ids = record_field(header[make_key("cust_name_idx", w, d, lname)],
                                   "ids", [customer]) or [customer]
                target = sorted(ids)[len(ids) // 2]
            else:
                target = customer
            customer_row = yield Read(make_key("customer", w, d, target))
            record = decode_record(customer_row) or {"balance": 0.0, "ytd_payment": 0.0,
                                                     "payments": 0}
            record["balance"] = round(record.get("balance", 0.0) - amount, 2)
            record["ytd_payment"] = round(record.get("ytd_payment", 0.0) + amount, 2)
            record["payments"] = record.get("payments", 0) + 1
            yield Write(make_key("customer", w, d, target), encode_record(record))
            return {"customer": target, "amount": amount}

        return program

    def order_status_program(self) -> Callable[[], Iterator]:
        """Read-only: a customer's latest order and its lines."""
        w = self._random_warehouse()
        d = self._random_district()
        customer = self._random_customer()
        by_name = self.rng.random() < 0.6
        lname = last_name(customer % 100)

        def program():
            if by_name:
                index_row = yield Read(make_key("cust_name_idx", w, d, lname))
                ids = record_field(index_row, "ids", [customer]) or [customer]
                target = sorted(ids)[len(ids) // 2]
            else:
                target = customer
            rows = yield ReadMany([make_key("customer", w, d, target),
                                   make_key("cust_last_order", w, d, target)])
            order_id = record_field(rows[make_key("cust_last_order", w, d, target)], "order", -1)
            if order_id is None or order_id < 0:
                return {"customer": target, "order": None}
            order_row = yield Read(make_key("order", w, d, order_id))
            lines = record_field(order_row, "lines", 0) or 0
            amounts = []
            if lines > 0:
                line_keys = [make_key("order_line", w, d, order_id, line)
                             for line in range(min(lines, 5))]
                line_rows = yield ReadMany(line_keys)
                amounts = [record_field(line_rows[k], "amount", 0.0) for k in line_keys]
            return {"customer": target, "order": order_id, "amounts": amounts}

        return program

    def delivery_program(self) -> Callable[[], Iterator]:
        """Deliver the oldest new order of a few districts of one warehouse."""
        w = self._random_warehouse()
        districts = list(range(min(3, self.config.districts_per_warehouse)))
        carrier = self.rng.randint(1, 10)

        def program():
            # Round 1: the oldest-new-order pointer of every district.
            pointer_keys = [make_key("district_oldest_new_order", w, d) for d in districts]
            pointers = yield ReadMany(pointer_keys)
            oldest_by_district = {
                d: (record_field(pointers[make_key("district_oldest_new_order", w, d)],
                                 "oldest", 0) or 0)
                for d in districts
            }

            # Round 2: the new-order queue entries and order rows.
            queue_keys = [make_key("new_order", w, d, oldest_by_district[d]) for d in districts]
            order_keys = [make_key("order", w, d, oldest_by_district[d]) for d in districts]
            rows = yield ReadMany(queue_keys + order_keys)

            pending = []
            for d in districts:
                oldest = oldest_by_district[d]
                queue_row = rows[make_key("new_order", w, d, oldest)]
                if queue_row is None or len(queue_row) == 0:
                    continue
                order_row = rows[make_key("order", w, d, oldest)]
                customer = record_field(order_row, "customer", 0) or 0
                pending.append((d, oldest, order_row, customer))

            # Round 3: the customers receiving the deliveries.
            customer_keys = [make_key("customer", w, d, customer)
                             for d, _oldest, _row, customer in pending]
            customer_rows = {}
            if customer_keys:
                customer_rows = yield ReadMany(customer_keys)

            delivered = []
            for d, oldest, order_row, customer in pending:
                yield Write(make_key("order", w, d, oldest),
                            update_record(order_row, carrier=carrier))
                yield Write(make_key("new_order", w, d, oldest), b"")
                yield Write(make_key("district_oldest_new_order", w, d),
                            encode_record({"oldest": oldest + 1}))
                customer_row = customer_rows.get(make_key("customer", w, d, customer))
                yield Write(make_key("customer", w, d, customer),
                            bump_counter(customer_row, "deliveries", 1))
                delivered.append((d, oldest))
            return {"warehouse": w, "delivered": delivered}

        return program

    def stock_level_program(self) -> Callable[[], Iterator]:
        """Count recently-ordered items whose stock is below a threshold."""
        w = self._random_warehouse()
        d = self._random_district()
        threshold = self.rng.randint(10, 20)
        recent_orders = 3

        def program():
            district_row = yield Read(make_key("district", w, d))
            next_o_id = record_field(district_row, "next_o_id", 0) or 0
            order_ids = list(range(max(0, next_o_id - recent_orders), next_o_id))
            if not order_ids:
                return {"district": d, "low_stock": 0}

            line_keys = [make_key("order_line", w, d, order_id, 0) for order_id in order_ids]
            line_rows = yield ReadMany(line_keys)
            items = []
            for key in line_keys:
                item = record_field(line_rows[key], "item", None)
                if item is not None and item not in items:
                    items.append(item)
            if not items:
                return {"district": d, "low_stock": 0}

            stock_keys = [make_key("stock", w, item) for item in items]
            stock_rows = yield ReadMany(stock_keys)
            low = sum(1 for key in stock_keys
                      if (record_field(stock_rows[key], "qty", 0) or 0) < threshold)
            return {"district": d, "low_stock": low}

        return program

    # ------------------------------------------------------------------ #
    # Mix
    # ------------------------------------------------------------------ #
    def transaction_factory(self, mix: Optional[Dict[str, int]] = None
                            ) -> Callable[[], Iterator]:
        """One random transaction drawn from the (standard) TPC-C mix."""
        weights = mix if mix is not None else STANDARD_MIX
        names = list(weights)
        chosen = self.rng.choices(names, weights=[weights[n] for n in names], k=1)[0]
        builders = {
            "new_order": self.new_order_program,
            "payment": self.payment_program,
            "order_status": self.order_status_program,
            "delivery": self.delivery_program,
            "stock_level": self.stock_level_program,
        }
        return builders[chosen]()

    def transaction_factories(self, count: int,
                              mix: Optional[Dict[str, int]] = None) -> List[Callable[[], Iterator]]:
        return [self.transaction_factory(mix) for _ in range(count)]
