"""Closed-loop workload drivers.

The evaluation runs every system the same way: ``C`` concurrent clients, each
submitting one transaction at a time and immediately submitting the next when
the previous one finishes, with aborted transactions retried a bounded number
of times.  The drivers here implement that loop for

* the Obladi proxy (transactions are admitted per epoch, and a client learns
  its transaction's fate only when the epoch commits), and
* the baselines (which commit transactions individually).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baseline.common import BaselineRunResult
from repro.core.proxy import ObladiProxy


ProgramFactory = Callable[[], object]
FactorySource = Callable[[], ProgramFactory]


@dataclass
class WorkloadRun:
    """Outcome of one closed-loop run against any of the systems."""

    system: str
    committed: int = 0
    aborted: int = 0
    retries: int = 0
    elapsed_ms: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    epochs: int = 0
    physical_reads: int = 0
    physical_writes: int = 0

    @property
    def throughput_tps(self) -> float:
        if self.elapsed_ms <= 0:
            return 0.0
        return self.committed * 1000.0 / self.elapsed_ms

    @property
    def average_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0


def run_obladi_closed_loop(proxy: ObladiProxy, factory_source: FactorySource,
                           total_transactions: int, clients: int = 32,
                           max_retries: int = 2, max_epochs: int = 10_000) -> WorkloadRun:
    """Run ``total_transactions`` through the Obladi proxy, closed loop.

    Each epoch admits one transaction per client slot (a client whose
    transaction aborted retries it in a later epoch up to ``max_retries``
    times; afterwards the driver draws a fresh transaction).
    """
    run = WorkloadRun(system="obladi")
    start_ms = proxy.clock.now_ms
    remaining = total_transactions
    retry_pool: List[ProgramFactory] = []
    retry_counts: Dict[int, int] = {}
    epochs = 0

    while (remaining > 0 or retry_pool) and epochs < max_epochs:
        batch: List[ProgramFactory] = []
        while retry_pool and len(batch) < clients:
            batch.append(retry_pool.pop(0))
        while remaining > 0 and len(batch) < clients:
            batch.append(factory_source())
            remaining -= 1
        if not batch:
            break
        for factory in batch:
            proxy.submit(factory)
        summary = proxy.run_epoch()
        epochs += 1
        run.physical_reads += summary.physical_reads
        run.physical_writes += summary.physical_writes

        # Collect the results of this epoch's transactions.
        epoch_results = [r for r in proxy.results.values() if r.epoch == summary.epoch_id]
        for result, factory in zip(sorted(epoch_results, key=lambda r: r.txn_id), batch):
            if result.committed:
                run.committed += 1
                run.latencies_ms.append(result.latency_ms)
            else:
                run.aborted += 1
                attempts = retry_counts.get(id(factory), 0)
                if attempts < max_retries:
                    retry_counts[id(factory)] = attempts + 1
                    retry_pool.append(factory)
                    run.retries += 1

    run.epochs = epochs
    run.elapsed_ms = proxy.clock.now_ms - start_ms
    return run


def run_baseline_closed_loop(baseline, factory_source: FactorySource,
                             total_transactions: int, clients: int = 32,
                             max_retries: int = 2) -> WorkloadRun:
    """Run a baseline (NoPriv or the 2PL store) closed loop."""
    factories = [factory_source() for _ in range(total_transactions)]
    start_ms = baseline.clock.now_ms
    result: BaselineRunResult = baseline.run_transactions(factories, clients=clients,
                                                          max_retries=max_retries)
    run = WorkloadRun(system=type(baseline).__name__.lower())
    run.committed = result.committed
    run.aborted = result.aborted
    run.retries = result.retries
    run.latencies_ms = list(result.latencies_ms)
    run.elapsed_ms = max(result.makespan_ms, baseline.clock.now_ms - start_ms)
    return run


def generate_mixed_factory_source(workload, mix: Optional[Dict[str, int]] = None
                                  ) -> FactorySource:
    """Adapt a workload object into a factory source for the drivers."""

    def source() -> ProgramFactory:
        return workload.transaction_factory(mix) if mix is not None \
            else workload.transaction_factory()

    return source
