"""Closed-loop workload drivers (legacy entry points).

The closed loop itself now lives in the unified engine layer — see
:func:`repro.api.loop.run_closed_loop` and
:meth:`repro.api.engine.TransactionEngine.run_closed_loop`.  This module
keeps the historical function names as thin shims that wrap a bare system
in its engine adapter and delegate, so older call sites and tests keep
working; new code should use :func:`repro.api.create_engine` directly.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Optional

from repro.api.adapters import wrap_engine
from repro.api.loop import run_closed_loop
from repro.api.results import RunStats
from repro.core.proxy import ObladiProxy

ProgramFactory = Callable[[], object]
FactorySource = Callable[[], ProgramFactory]

#: Unified result type; the historical name remains importable.
WorkloadRun = RunStats


def _warn_deprecated(name: str) -> None:
    warnings.warn(
        f"repro.workloads.driver.{name} is a legacy shim; build an engine with "
        f"repro.api.create_engine(...) and call engine.run_closed_loop(...) instead",
        DeprecationWarning, stacklevel=3)


def run_obladi_closed_loop(proxy: ObladiProxy, factory_source: FactorySource,
                           total_transactions: int, clients: int = 32,
                           max_retries: int = 2, max_epochs: int = 10_000) -> RunStats:
    """Run ``total_transactions`` through the Obladi proxy, closed loop.

    .. deprecated:: PR 2
        Use :func:`repro.api.create_engine` and
        :meth:`~repro.api.engine.TransactionEngine.run_closed_loop`.

    Each epoch admits one transaction per client slot (a client whose
    transaction aborted retries it in a later epoch up to ``max_retries``
    times; afterwards the driver draws a fresh transaction).
    """
    _warn_deprecated("run_obladi_closed_loop")
    return run_closed_loop(wrap_engine(proxy), factory_source, total_transactions,
                           clients=clients, max_retries=max_retries,
                           max_batches=max_epochs)


def run_baseline_closed_loop(baseline, factory_source: FactorySource,
                             total_transactions: int, clients: int = 32,
                             max_retries: int = 2) -> RunStats:
    """Run a baseline (NoPriv or the 2PL store) closed loop.

    .. deprecated:: PR 2
        Use :func:`repro.api.create_engine` and
        :meth:`~repro.api.engine.TransactionEngine.run_closed_loop`.
    """
    _warn_deprecated("run_baseline_closed_loop")
    return run_closed_loop(wrap_engine(baseline), factory_source, total_transactions,
                           clients=clients, max_retries=max_retries)


def generate_mixed_factory_source(workload, mix: Optional[Dict[str, int]] = None
                                  ) -> FactorySource:
    """Adapt a workload object into a factory source for the drivers."""

    def source() -> ProgramFactory:
        return workload.transaction_factory(mix) if mix is not None \
            else workload.transaction_factory()

    return source
