"""Concurrency control.

Obladi's proxy runs multiversion timestamp ordering (MVTSO): every
transaction gets a unique timestamp fixing its serialization order, writes
create new versions visible immediately to concurrent transactions, reads
return the latest version older than the reader and leave a read marker that
causes late writers to abort.  Transactions that observed uncommitted data
record write-read dependencies and abort in cascade if a dependency aborts.

The package also contains a strict two-phase-locking store used by the
"MySQL" baseline of Figure 9, a serialization-graph checker used by the
test suite to validate that every committed history really is serializable,
and the pluggable conflict-resolution seam (``repro.concurrency.repair``):
abort+retry as :class:`RetryStrategy` (the default) and transaction repair
as :class:`RepairStrategy`, with :meth:`MVTSOManager.stale_reads` supplying
the conflict witness (which reads went stale, which writer won).
"""

from repro.concurrency.transaction import TransactionRecord, TransactionStatus
from repro.concurrency.mvtso import MVTSOManager, WriteConflictError
from repro.concurrency.versions import Version, VersionChain, VersionStore
from repro.concurrency.serializability import (SerializationGraph,
                                               build_serialization_graph,
                                               check_recoverable,
                                               check_serializable)
from repro.concurrency.transaction import CommittedTransaction
from repro.concurrency.two_phase_locking import LockManager, LockMode, DeadlockError
from repro.concurrency.repair import (CONFLICT_STRATEGIES, ConflictStrategy,
                                      ConflictWitness, RepairStrategy,
                                      RetryStrategy, WaveEntry,
                                      as_conflict_strategy)

__all__ = [
    "TransactionRecord",
    "TransactionStatus",
    "CommittedTransaction",
    "MVTSOManager",
    "WriteConflictError",
    "Version",
    "VersionChain",
    "VersionStore",
    "SerializationGraph",
    "build_serialization_graph",
    "check_recoverable",
    "check_serializable",
    "LockManager",
    "LockMode",
    "DeadlockError",
    "CONFLICT_STRATEGIES",
    "ConflictStrategy",
    "ConflictWitness",
    "RetryStrategy",
    "RepairStrategy",
    "WaveEntry",
    "as_conflict_strategy",
]
