"""Conflict resolution as a pluggable strategy: retry vs transaction repair.

Obladi's MVTSO aborts a transaction the moment it loses a conflict — a late
write hits a younger reader's read marker, or a dependency on an uncommitted
writer collapses at the epoch boundary.  Historically the only recovery was
*retry*: the loop drivers re-queued the whole program through
:class:`~repro.api.loop.RetryPolicy` backoff and re-executed it from
scratch.  Under a hotspot that amplifies work quadratically — every loser
re-reads and re-computes everything, usually to conflict again.

This module makes the resolution step pluggable:

* :class:`RetryStrategy` is the historical behaviour, extracted verbatim.
  It resolves nothing itself; the loop drivers' existing re-queue path does
  the work, so fixed-seed runs stay byte-identical to the pre-seam code.
* :class:`RepairStrategy` implements *transaction repair* (see PAPERS.md —
  "Transaction Repair: Full Serializability Without Locks"): instead of
  re-queueing a loser, ask the engine to recompute only its stale reads
  against the winning versions and re-derive its writes by re-running the
  workload program's re-execution closure, then re-validate — inside the
  same epoch for the Obladi proxy (:meth:`repro.core.proxy.ObladiProxy`
  repairs under the epoch barrier before write-back), or as an immediate
  same-wave re-submission for engines that implement
  :meth:`~repro.api.engine.TransactionEngine.repair_many`.  Engines that
  support neither fall back to the retry path, so repair is always safe to
  request.

The conflict *witness* — which reads went stale and which writer won — comes
from :meth:`repro.concurrency.mvtso.MVTSOManager.stale_reads`;
:class:`ConflictWitness` packages it for observability and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.concurrency.transaction import TransactionRecord

#: The conflict-resolution strategies an engine or loop driver can run.
CONFLICT_STRATEGIES = ("retry", "repair")

#: Abort reasons a repair pass may attempt to fix.  Everything else —
#: epoch-boundary starvation, a full write batch, a crash, a voluntary
#: abort — is not a *conflict*: re-running the program against the same
#: epoch state cannot change the outcome.
REPAIRABLE_REASONS = ("write_conflict", "cascade")


@dataclass(frozen=True)
class ConflictWitness:
    """Why a transaction lost: its stale reads and the writers that won.

    ``stale_reads`` holds one ``(key, observed_writer_ts, winner_ts)``
    triple per read-set entry whose observed version is no longer what a
    fresh read would return (``-1`` names the pre-epoch base value on
    either side).  An empty tuple with a repairable reason means the loser
    itself was the conflicting writer (its late write hit a read marker):
    its reads are intact, but its writes must be re-derived after the
    winners'.
    """

    txn_id: int
    abort_reason: Optional[str]
    stale_reads: Tuple[Tuple[str, int, int], ...] = ()

    @classmethod
    def from_record(cls, mvtso, record: TransactionRecord) -> "ConflictWitness":
        """Build the witness for an aborted ``record`` from ``mvtso``'s chains."""
        reason = record.abort_reason.value if record.abort_reason else None
        return cls(txn_id=record.txn_id, abort_reason=reason,
                   stale_reads=tuple(mvtso.stale_reads(record)))

    @property
    def repairable(self) -> bool:
        """Whether the abort reason is one repair can, in principle, fix."""
        return self.abort_reason in REPAIRABLE_REASONS


@dataclass(frozen=True)
class WaveEntry:
    """One aborted attempt of a loop-driver wave, handed to a strategy.

    ``index`` is the attempt's position in the wave (and in the result
    list), ``factory`` the zero-argument program factory, ``attempts`` how
    many times the program has already been re-queued, and ``result`` the
    aborted :class:`~repro.core.client.TransactionResult`.
    """

    index: int
    factory: object
    attempts: int
    result: object


class ConflictStrategy:
    """How a loop driver resolves the aborted attempts of one wave.

    After every ``submit_many`` wave the driver collects the aborted
    attempts into :class:`WaveEntry` objects and calls :meth:`resolve`; the
    strategy may return replacement results (keyed by wave index) for
    attempts it salvaged.  Attempts left unresolved fall through to the
    driver's ordinary retry re-queue, so a strategy only ever *adds*
    recovery paths — it can never lose a transaction.
    """

    #: Stable strategy name (matches ``ObladiConfig.conflict_strategy``).
    name = "strategy"

    def resolve(self, engine, entries: Sequence[WaveEntry]) -> Dict[int, object]:
        """Resolve aborted wave entries; return replacements by wave index.

        The default resolves nothing (every abort falls through to retry).
        """
        del engine, entries
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


class RetryStrategy(ConflictStrategy):
    """Abort-and-retry, the historical default.

    Resolves nothing: the loop drivers' existing re-queue path (retries
    first in the next wave, bounded by ``max_retries``) handles every
    abort, exactly as before the strategy seam existed — fixed-seed runs
    are byte-identical.
    """

    name = "retry"

    def resolve(self, engine, entries: Sequence[WaveEntry]) -> Dict[int, object]:
        """Leave every abort to the driver's retry re-queue."""
        del engine, entries
        return {}


class RepairStrategy(ConflictStrategy):
    """Transaction repair: patch the loser instead of re-running it later.

    For engines with *in-wave* repair (the Obladi proxy repairs conflict
    losers inside the epoch that detected them, marking results
    ``repaired``/``repair_failed``), this strategy has nothing left to do —
    repaired attempts come back committed.  For the rest it offers the
    aborted factories to :meth:`~repro.api.engine.TransactionEngine.
    repair_many`, which re-executes them immediately against the wave's
    winning state instead of re-queueing them through backoff.  Engines
    that return ``None`` (the default: repair unsupported) — and attempts
    whose in-wave repair already failed — fall back to the retry path.
    """

    name = "repair"

    def resolve(self, engine, entries: Sequence[WaveEntry]) -> Dict[int, object]:
        """Ask ``engine`` to repair the wave's repairable aborted attempts."""
        candidates = [entry for entry in entries
                      if callable(entry.factory)
                      and not getattr(entry.result, "repair_failed", False)]
        if not candidates:
            return {}
        repaired = engine.repair_many([entry.factory for entry in candidates])
        if repaired is None:
            return {}
        replacements: Dict[int, object] = {}
        for entry, result in zip(candidates, repaired):
            if result is None:
                continue
            result.repaired = result.committed
            result.repair_failed = not result.committed
            replacements[entry.index] = result
        return replacements


def as_conflict_strategy(strategy) -> ConflictStrategy:
    """Normalise a strategy name or instance to a :class:`ConflictStrategy`.

    Accepts ``"retry"`` / ``"repair"`` (the names ``ObladiConfig.
    conflict_strategy`` takes) or an already-built strategy object.
    """
    if isinstance(strategy, ConflictStrategy):
        return strategy
    if strategy == "retry":
        return RetryStrategy()
    if strategy == "repair":
        return RepairStrategy()
    raise KeyError(f"unknown conflict strategy {strategy!r}; valid: "
                   f"{', '.join(CONFLICT_STRATEGIES)}")
