"""Transaction bookkeeping shared by the concurrency control schemes."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class TransactionStatus(enum.Enum):
    """Lifecycle of a transaction at the proxy."""

    ACTIVE = "active"
    COMMIT_REQUESTED = "commit_requested"   # client asked to commit; epoch not over
    COMMITTED = "committed"                 # durable; client has been notified
    ABORTED = "aborted"


class AbortReason(enum.Enum):
    """Why a transaction was aborted (used by metrics and tests)."""

    WRITE_CONFLICT = "write_conflict"        # MVTSO: wrote under a newer read marker
    CASCADE = "cascade"                      # a write-read dependency aborted
    EPOCH_BOUNDARY = "epoch_boundary"        # unfinished when the epoch closed
    BATCH_FULL = "batch_full"                # no read/write batch slot available
    CRASH = "crash"                          # proxy failure (epoch fate sharing)
    DEADLOCK = "deadlock"                    # 2PL baseline only
    USER = "user"                            # explicit client abort


@dataclass
class TransactionRecord:
    """Proxy-side state for one transaction."""

    txn_id: int
    timestamp: int
    epoch: int
    status: TransactionStatus = TransactionStatus.ACTIVE
    abort_reason: Optional[AbortReason] = None

    read_set: Dict[str, int] = field(default_factory=dict)       # key -> writer_ts observed
    write_set: Dict[str, Optional[bytes]] = field(default_factory=dict)
    dependencies: Set[int] = field(default_factory=set)          # txn ids whose writes we read
    dependents: Set[int] = field(default_factory=set)            # txns that read our writes
    start_time_ms: float = 0.0
    finish_time_ms: float = 0.0
    operations: int = 0

    # ------------------------------------------------------------------ #
    # State transitions
    # ------------------------------------------------------------------ #
    @property
    def is_active(self) -> bool:
        """Whether the transaction is still executing (not yet finalised)."""
        return self.status is TransactionStatus.ACTIVE

    @property
    def is_finished(self) -> bool:
        """Whether the transaction reached a terminal state."""
        return self.status in (TransactionStatus.COMMITTED, TransactionStatus.ABORTED)

    def request_commit(self) -> None:
        """Move an active transaction to COMMIT_REQUESTED (awaiting the boundary)."""
        if self.status is not TransactionStatus.ACTIVE:
            raise ValueError(f"cannot request commit from state {self.status}")
        self.status = TransactionStatus.COMMIT_REQUESTED

    def mark_committed(self, now_ms: float = 0.0) -> None:
        """Finalise the transaction as committed at ``now_ms``."""
        if self.status is TransactionStatus.ABORTED:
            raise ValueError("cannot commit an aborted transaction")
        self.status = TransactionStatus.COMMITTED
        self.finish_time_ms = now_ms

    def mark_aborted(self, reason: AbortReason, now_ms: float = 0.0) -> None:
        """Finalise the transaction as aborted for ``reason`` at ``now_ms``."""
        if self.status is TransactionStatus.COMMITTED:
            raise ValueError("cannot abort a committed transaction")
        self.status = TransactionStatus.ABORTED
        self.abort_reason = reason
        self.finish_time_ms = now_ms

    # ------------------------------------------------------------------ #
    # Read/write tracking
    # ------------------------------------------------------------------ #
    def record_read(self, key: str, writer_ts: int, writer_txn: Optional[int] = None) -> None:
        """Note that this transaction observed ``key``'s version written at ``writer_ts``."""
        self.read_set[key] = writer_ts
        self.operations += 1
        if writer_txn is not None and writer_txn != self.txn_id:
            self.dependencies.add(writer_txn)

    def record_write(self, key: str, value: Optional[bytes]) -> None:
        """Note that this transaction buffered ``value`` for ``key``."""
        self.write_set[key] = value
        self.operations += 1

    def latency_ms(self) -> float:
        """Client-observed latency once finished."""
        if not self.is_finished:
            raise ValueError("transaction has not finished")
        return max(0.0, self.finish_time_ms - self.start_time_ms)


@dataclass
class CommittedTransaction:
    """Immutable record of a committed transaction, for history checking."""

    txn_id: int
    timestamp: int
    epoch: int
    read_set: Dict[str, int]
    write_set: Dict[str, Optional[bytes]]

    @classmethod
    def from_record(cls, record: TransactionRecord) -> "CommittedTransaction":
        """Freeze a committed ``TransactionRecord`` into its history entry."""
        return cls(
            txn_id=record.txn_id,
            timestamp=record.timestamp,
            epoch=record.epoch,
            read_set=dict(record.read_set),
            write_set=dict(record.write_set),
        )
