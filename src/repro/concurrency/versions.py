"""Version chains for multiversion concurrency control.

Each key has a chain of versions ordered by the timestamp of the writing
transaction.  The chain also carries a *read marker*: the highest timestamp
of any transaction that has read some version of the key.  MVTSO uses the
marker to reject writes that arrive "too late" (a younger transaction already
read the older state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass
class Version:
    """One version of one key."""

    key: str
    value: Optional[bytes]
    writer_ts: int
    committed: bool = False
    aborted: bool = False

    def visible_to(self, reader_ts: int) -> bool:
        """Whether a reader with ``reader_ts`` may observe this version.

        MVTSO lets readers observe uncommitted versions (that is the point of
        the optimistic scheme); aborted versions are never visible.
        """
        return not self.aborted and self.writer_ts <= reader_ts


@dataclass
class VersionChain:
    """All versions of a single key, newest last, plus the read marker."""

    key: str
    versions: List[Version] = field(default_factory=list)
    read_marker_ts: int = -1

    def latest_visible(self, reader_ts: int) -> Optional[Version]:
        """Latest version with ``writer_ts <= reader_ts`` that is not aborted."""
        for version in reversed(self.versions):
            if version.visible_to(reader_ts):
                return version
        return None

    def latest_committed(self) -> Optional[Version]:
        """Latest committed version regardless of timestamp (epoch-tail reads)."""
        for version in reversed(self.versions):
            if version.committed and not version.aborted:
                return version
        return None

    def insert(self, version: Version) -> None:
        """Insert a version keeping the chain sorted by writer timestamp."""
        idx = len(self.versions)
        while idx > 0 and self.versions[idx - 1].writer_ts > version.writer_ts:
            idx -= 1
        self.versions.insert(idx, version)

    def record_read(self, reader_ts: int) -> None:
        """Advance the read marker to ``reader_ts`` if it is newer."""
        if reader_ts > self.read_marker_ts:
            self.read_marker_ts = reader_ts

    def remove_aborted(self) -> int:
        """Drop aborted versions; returns how many were removed."""
        before = len(self.versions)
        self.versions = [v for v in self.versions if not v.aborted]
        return before - len(self.versions)

    def writer_timestamps(self) -> List[int]:
        """The writer timestamps of every version, oldest first."""
        return [v.writer_ts for v in self.versions]

    def __len__(self) -> int:
        return len(self.versions)


class VersionStore:
    """Version chains for all keys touched in the current epoch or database."""

    def __init__(self) -> None:
        self._chains: Dict[str, VersionChain] = {}

    def chain(self, key: str) -> VersionChain:
        """The version chain for ``key``, created empty on first access."""
        chain = self._chains.get(key)
        if chain is None:
            chain = VersionChain(key=key)
            self._chains[key] = chain
        return chain

    def get_chain(self, key: str) -> Optional[VersionChain]:
        """The version chain for ``key``, or ``None`` if no write touched it."""
        return self._chains.get(key)

    def keys(self) -> List[str]:
        """Every key with a chain, sorted."""
        return sorted(self._chains)

    def __contains__(self, key: str) -> bool:
        return key in self._chains

    def __len__(self) -> int:
        return len(self._chains)

    def items(self) -> Iterator[Tuple[str, VersionChain]]:
        """Iterate over ``(key, chain)`` pairs."""
        return iter(self._chains.items())

    def clear(self) -> None:
        """Drop every chain (used when an epoch's cache is discarded)."""
        self._chains.clear()

    def latest_committed_values(self) -> Dict[str, Optional[bytes]]:
        """Map of key to latest committed value (the epoch's write-back set)."""
        out: Dict[str, Optional[bytes]] = {}
        for key, chain in self._chains.items():
            version = chain.latest_committed()
            if version is not None:
                out[key] = version.value
        return out

    def drop_aborted(self) -> int:
        """Remove aborted versions from every chain; returns total removed."""
        return sum(chain.remove_aborted() for chain in self._chains.values())
