"""Strict two-phase locking, used by the MySQL-like baseline.

Figure 9 compares Obladi and NoPriv against MySQL, whose InnoDB engine
acquires exclusive locks for the duration of conflicting transactions.  The
baseline here implements strict 2PL with deadlock detection via a
waits-for graph; locks are held until commit/abort, which is what makes the
new-order/payment contention in TPC-C serialise (and why NoPriv, running
MVTSO, slightly outperforms it in the paper).
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class DeadlockError(Exception):
    """Raised for the transaction chosen as the deadlock victim."""

    def __init__(self, txn_id: int, cycle: List[int]) -> None:
        super().__init__(f"transaction {txn_id} aborted to break deadlock {cycle}")
        self.txn_id = txn_id
        self.cycle = cycle


@dataclass
class LockState:
    """Current holders and waiters of one key's lock."""

    holders: Dict[int, LockMode] = field(default_factory=dict)
    waiters: List[Tuple[int, LockMode]] = field(default_factory=list)

    def compatible(self, txn_id: int, mode: LockMode) -> bool:
        """Whether ``txn_id`` may acquire the lock in ``mode`` right now."""
        others = {t: m for t, m in self.holders.items() if t != txn_id}
        if not others:
            return True
        if mode is LockMode.SHARED:
            return all(m is LockMode.SHARED for m in others.values())
        return False


class LockManager:
    """Strict 2PL lock table with waits-for deadlock detection."""

    def __init__(self) -> None:
        self._locks: Dict[str, LockState] = defaultdict(LockState)
        self._held_by_txn: Dict[int, Set[str]] = defaultdict(set)
        self._waits_for: Dict[int, Set[int]] = defaultdict(set)
        self.stats_lock_waits = 0
        self.stats_deadlocks = 0

    # ------------------------------------------------------------------ #
    # Acquisition
    # ------------------------------------------------------------------ #
    def acquire(self, txn_id: int, key: str, mode: LockMode) -> bool:
        """Try to acquire (or upgrade) a lock.

        Returns ``True`` if the lock was granted immediately.  If the lock
        conflicts, the transaction is registered as a waiter, the waits-for
        graph is updated, and ``False`` is returned — unless the wait would
        close a cycle, in which case :class:`DeadlockError` is raised and the
        caller must abort the transaction.
        """
        state = self._locks[key]
        held = state.holders.get(txn_id)
        if held is LockMode.EXCLUSIVE or (held is LockMode.SHARED and mode is LockMode.SHARED):
            return True
        if state.compatible(txn_id, mode):
            state.holders[txn_id] = mode
            self._held_by_txn[txn_id].add(key)
            return True

        blockers = {t for t in state.holders if t != txn_id}
        self._waits_for[txn_id].update(blockers)
        cycle = self._find_cycle_from(txn_id)
        if cycle is not None:
            self.stats_deadlocks += 1
            self._waits_for[txn_id].difference_update(blockers)
            raise DeadlockError(txn_id, cycle)
        state.waiters.append((txn_id, mode))
        self.stats_lock_waits += 1
        return False

    def release_all(self, txn_id: int) -> List[Tuple[int, str, LockMode]]:
        """Release every lock held by ``txn_id`` and grant eligible waiters.

        Returns the list of (txn, key, mode) grants performed so the caller
        can resume the corresponding waiting transactions.
        """
        granted: List[Tuple[int, str, LockMode]] = []
        for key in sorted(self._held_by_txn.pop(txn_id, set())):
            state = self._locks[key]
            state.holders.pop(txn_id, None)
            granted.extend(self._grant_waiters(key))
        # The transaction may also have been parked on someone else's lock
        # (e.g. it aborted as a deadlock victim while waiting): purge it from
        # every wait queue so it is never granted a lock posthumously.
        for state in self._locks.values():
            state.waiters = [(waiter, mode) for waiter, mode in state.waiters
                             if waiter != txn_id]
        self._waits_for.pop(txn_id, None)
        for waiters in self._waits_for.values():
            waiters.discard(txn_id)
        return granted

    def _grant_waiters(self, key: str) -> List[Tuple[int, str, LockMode]]:
        state = self._locks[key]
        granted: List[Tuple[int, str, LockMode]] = []
        still_waiting: List[Tuple[int, LockMode]] = []
        for txn_id, mode in state.waiters:
            if state.compatible(txn_id, mode):
                state.holders[txn_id] = mode
                self._held_by_txn[txn_id].add(key)
                self._waits_for[txn_id].clear()
                granted.append((txn_id, key, mode))
            else:
                still_waiting.append((txn_id, mode))
        state.waiters = still_waiting
        # Re-point the remaining waiters' waits-for edges at the *current*
        # holders: the original blocker may be gone and the lock granted to a
        # different transaction, and stale edges would hide real deadlocks.
        for txn_id, _mode in state.waiters:
            self._waits_for[txn_id] = {holder for holder in state.holders
                                       if holder != txn_id}
        return granted

    # ------------------------------------------------------------------ #
    # Deadlock detection
    # ------------------------------------------------------------------ #
    def _find_cycle_from(self, start: int) -> Optional[List[int]]:
        visited: Set[int] = set()
        path: List[int] = []

        def dfs(node: int) -> Optional[List[int]]:
            if node in path:
                return path[path.index(node):] + [node]
            if node in visited:
                return None
            visited.add(node)
            path.append(node)
            for nxt in sorted(self._waits_for.get(node, ())):
                cycle = dfs(nxt)
                if cycle is not None:
                    return cycle
            path.pop()
            return None

        return dfs(start)

    def find_any_cycle(self) -> Optional[List[int]]:
        """Search the whole waits-for graph for a deadlock cycle.

        Deadlocks are normally caught at acquire time, but a cycle can also
        form when a released lock is granted to a different waiter than the
        one an existing holder was waiting behind.  Executors call this when
        every runnable transaction is blocked, and abort a member of the
        returned cycle.
        """
        for start in sorted(self._waits_for):
            cycle = self._find_cycle_from(start)
            if cycle is not None:
                return cycle
        return None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def locks_held(self, txn_id: int) -> Set[str]:
        """The keys ``txn_id`` currently holds locks on."""
        return set(self._held_by_txn.get(txn_id, set()))

    def holders(self, key: str) -> Dict[int, LockMode]:
        """The transactions holding ``key`` and the mode each holds."""
        return dict(self._locks[key].holders)

    def is_waiting(self, txn_id: int) -> bool:
        """Whether ``txn_id`` is blocked in some key's waiter queue."""
        return any(txn_id == waiter for state in self._locks.values()
                   for waiter, _ in state.waiters)
