"""Multiversion timestamp ordering (MVTSO), as used by the Obladi proxy.

The scheme is the classic one (Reed 1979, Bernstein & Goodman 1983) with the
property Obladi relies on: uncommitted writes are immediately visible to
concurrently executing transactions, so delaying commit notifications to
epoch boundaries does not serialise writers behind readers the way two-phase
locking would (paper §6.1).

* Every transaction receives a unique, monotonically increasing timestamp.
* A write installs a new (uncommitted) version tagged with that timestamp,
  unless some transaction with a *higher* timestamp has already read an
  older version of the key — in that case the writer aborts (it would
  invalidate a read that is already fixed in the serialization order).
* A read returns the latest version with a timestamp at most the reader's,
  records the reader on the chain's read marker, and — if that version is
  uncommitted — registers a write-read dependency; the reader can only
  commit after the writer does, and must abort if the writer aborts
  (cascading abort).

The manager's version store can be sharded across trusted proxy workers
(:class:`repro.proxytier.ShardedMVTSOManager`, ``docs/ARCHITECTURE.md`` —
"Distributed proxy tier"): timestamps stay global while chain ownership and
the commit check move to per-worker slices and an epoch-barrier vote.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.concurrency.transaction import (AbortReason, TransactionRecord,
                                           TransactionStatus)
from repro.concurrency.versions import Version, VersionStore


class WriteConflictError(Exception):
    """A write arrived after a younger transaction already read the key."""

    def __init__(self, key: str, writer_ts: int, read_marker_ts: int) -> None:
        super().__init__(
            f"write to {key!r} by ts {writer_ts} rejected: read marker is {read_marker_ts}"
        )
        self.key = key
        self.writer_ts = writer_ts
        self.read_marker_ts = read_marker_ts


class MVTSOManager:
    """Timestamp allocation, version bookkeeping and dependency tracking."""

    def __init__(self) -> None:
        self._next_ts = 1
        self._next_txn_id = 1
        self.store = VersionStore()
        self.transactions: Dict[int, TransactionRecord] = {}
        self.stats_aborts_write_conflict = 0
        self.stats_aborts_cascade = 0
        # Lifetime operation counters: one version-chain read / one version
        # install each.  They are the unit the proxy charges concurrency-
        # control CPU in (``CpuCostModel.cc_op_ms``) and the quantity a
        # sharded proxy tier (``repro.proxytier``) divides across workers.
        self.stats_ops_read = 0
        self.stats_ops_write = 0

    # ------------------------------------------------------------------ #
    # Transaction lifecycle
    # ------------------------------------------------------------------ #
    def begin(self, epoch: int, now_ms: float = 0.0) -> TransactionRecord:
        """Start a transaction; its timestamp fixes its serialization order."""
        txn = TransactionRecord(
            txn_id=self._next_txn_id,
            timestamp=self._next_ts,
            epoch=epoch,
            start_time_ms=now_ms,
        )
        self._next_txn_id += 1
        self._next_ts += 1
        self.transactions[txn.txn_id] = txn
        return txn

    @property
    def next_timestamp(self) -> int:
        """The timestamp the next ``begin`` would assign (a high-water mark)."""
        return self._next_ts

    @property
    def next_txn_id(self) -> int:
        """The id the next ``begin`` would assign (a high-water mark)."""
        return self._next_txn_id

    def fast_forward(self, next_timestamp: int, next_txn_id: int) -> None:
        """Advance the timestamp/id counters to at least the given values.

        Used when a recovered proxy must *extend* a predecessor's
        serialization order rather than restart it: timestamps define the
        multiversion order, so a fresh manager re-issuing already-used
        timestamps would interleave its versions before history that has
        already committed (and re-used txn ids would alias nodes in the
        serialization graph).  Counters never move backwards.
        """
        self._next_ts = max(self._next_ts, next_timestamp)
        self._next_txn_id = max(self._next_txn_id, next_txn_id)

    def get(self, txn_id: int) -> TransactionRecord:
        """Look up a transaction record by id (KeyError if unknown)."""
        return self.transactions[txn_id]

    # ------------------------------------------------------------------ #
    # Reads and writes
    # ------------------------------------------------------------------ #
    def read(self, txn: TransactionRecord, key: str) -> Tuple[Optional[bytes], Optional[int]]:
        """MVTSO read.

        Returns ``(value, writer_txn_id)``; the value is ``None`` when no
        version of the key is visible (the caller falls back to the
        previous-epoch state fetched from the ORAM).  ``writer_txn_id`` is
        set when the observed version is still uncommitted, so the caller
        can register the write-read dependency.
        """
        if not txn.is_active:
            raise ValueError(f"transaction {txn.txn_id} is not active")
        self.stats_ops_read += 1
        chain = self.store.chain(key)
        chain.record_read(txn.timestamp)
        version = chain.latest_visible(txn.timestamp)
        if version is None:
            txn.record_read(key, writer_ts=-1)
            return None, None

        writer_txn_id: Optional[int] = None
        writer = self._transaction_with_ts(version.writer_ts)
        if writer is not None and writer.txn_id != txn.txn_id and not version.committed:
            writer_txn_id = writer.txn_id
            writer.dependents.add(txn.txn_id)
        txn.record_read(key, writer_ts=version.writer_ts, writer_txn=writer_txn_id)
        return version.value, writer_txn_id

    def write(self, txn: TransactionRecord, key: str, value: Optional[bytes]) -> Version:
        """MVTSO write; raises :class:`WriteConflictError` on a late write."""
        if not txn.is_active:
            raise ValueError(f"transaction {txn.txn_id} is not active")
        self.stats_ops_write += 1
        chain = self.store.chain(key)
        if chain.read_marker_ts > txn.timestamp:
            self.stats_aborts_write_conflict += 1
            raise WriteConflictError(key, txn.timestamp, chain.read_marker_ts)
        version = Version(key=key, value=value, writer_ts=txn.timestamp)
        chain.insert(version)
        txn.record_write(key, value)
        return version

    # ------------------------------------------------------------------ #
    # Commit / abort
    # ------------------------------------------------------------------ #
    def can_commit(self, txn: TransactionRecord) -> bool:
        """A transaction may commit once none of its dependencies is aborted
        and all of them have committed or requested commit."""
        for dep_id in txn.dependencies:
            dep = self.transactions.get(dep_id)
            if dep is None:
                continue
            if dep.status is TransactionStatus.ABORTED:
                return False
        return True

    def mark_version_state(self, txn: TransactionRecord) -> None:
        """Propagate the transaction's final state onto the versions it wrote."""
        for key in txn.write_set:
            chain = self.store.get_chain(key)
            if chain is None:
                continue
            for version in chain.versions:
                if version.writer_ts == txn.timestamp:
                    version.committed = txn.status is TransactionStatus.COMMITTED
                    version.aborted = txn.status is TransactionStatus.ABORTED

    def abort(self, txn: TransactionRecord, reason: AbortReason,
              now_ms: float = 0.0) -> List[TransactionRecord]:
        """Abort a transaction and cascade to every transaction that read it.

        Returns the list of transactions aborted by the cascade (excluding
        the initial one).
        """
        if txn.status is TransactionStatus.ABORTED:
            return []
        txn.mark_aborted(reason, now_ms)
        self.mark_version_state(txn)
        cascaded: List[TransactionRecord] = []
        for dependent_id in sorted(txn.dependents):
            dependent = self.transactions.get(dependent_id)
            if dependent is None or dependent.is_finished:
                continue
            self.stats_aborts_cascade += 1
            cascaded.append(dependent)
            cascaded.extend(self.abort(dependent, AbortReason.CASCADE, now_ms))
        return cascaded

    def commit(self, txn: TransactionRecord, now_ms: float = 0.0) -> None:
        """Mark a transaction committed and finalise its versions."""
        if not self.can_commit(txn):
            raise ValueError(
                f"transaction {txn.txn_id} has aborted dependencies and cannot commit")
        txn.mark_committed(now_ms)
        self.mark_version_state(txn)

    # ------------------------------------------------------------------ #
    # Conflict witnesses
    # ------------------------------------------------------------------ #
    def stale_reads(self, txn: TransactionRecord) -> List[Tuple[str, int, int]]:
        """The conflict witness for an epoch loser: which reads went stale.

        For every read-set entry whose observed version is no longer what a
        fresh read at the chain tip would return — the observed writer
        aborted, or a younger writer installed a newer live version —
        returns a ``(key, observed_writer_ts, winner_ts)`` triple, sorted
        by key.  ``-1`` stands for "the pre-epoch base value" on either
        side.  This is the input a repair pass needs: re-read exactly these
        keys against the winning versions, leave the rest of the read set
        untouched.
        """
        stale: List[Tuple[str, int, int]] = []
        for key, observed_ts in sorted(txn.read_set.items()):
            chain = self.store.get_chain(key)
            winner_ts = -1
            if chain is not None:
                # Chains are ordered by writer_ts; the winner is the last
                # non-aborted version.
                for version in reversed(chain.versions):
                    if not version.aborted:
                        winner_ts = version.writer_ts
                        break
            if winner_ts != observed_ts:
                stale.append((key, observed_ts, winner_ts))
        return stale

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _transaction_with_ts(self, ts: int) -> Optional[TransactionRecord]:
        # Timestamps are dense and assigned in order; a linear probe of the
        # dict would be O(n), so keep a reverse index lazily.
        txn_id = ts  # timestamps and ids advance together in begin()
        txn = self.transactions.get(txn_id)
        if txn is not None and txn.timestamp == ts:
            return txn
        for candidate in self.transactions.values():
            if candidate.timestamp == ts:
                return candidate
        return None

    def active_transactions(self) -> List[TransactionRecord]:
        """Transactions that have neither committed nor aborted yet."""
        return [t for t in self.transactions.values() if not t.is_finished]

    def committed_transactions(self) -> List[TransactionRecord]:
        """Transactions that have committed (in id order of the dict)."""
        return [t for t in self.transactions.values()
                if t.status is TransactionStatus.COMMITTED]

    def reset_epoch_state(self) -> None:
        """Clear per-epoch version chains (called after the epoch write-back).

        Transactions from later epochs are serialized after all transactions
        from earlier epochs, so the per-key version chains can be discarded
        once the final values have been flushed to the ORAM; re-reading the
        epoch tail then falls back to the ORAM state.
        """
        self.store.clear()
