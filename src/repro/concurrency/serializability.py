"""Serialization-graph testing for committed histories.

The test suite validates the concurrency control implementations by building
the direct serialization graph (DSG) of every committed history: nodes are
committed transactions; edges are write-read, write-write and read-write
dependencies on each key.  The history is (conflict-)serializable iff the
graph is acyclic.  For multiversioned histories we use the version order
induced by writer timestamps, which is the order both MVTSO and the epoch
write-back install.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.concurrency.transaction import CommittedTransaction


@dataclass
class SerializationGraph:
    """Direct serialization graph over committed transactions."""

    nodes: Set[int] = field(default_factory=set)
    edges: Dict[int, Set[int]] = field(default_factory=lambda: defaultdict(set))
    edge_labels: Dict[Tuple[int, int], Set[str]] = field(default_factory=lambda: defaultdict(set))

    def add_node(self, txn_id: int) -> None:
        """Add a committed transaction to the graph."""
        self.nodes.add(txn_id)

    def add_edge(self, src: int, dst: int, label: str) -> None:
        """Add a labelled dependency edge ``src -> dst`` (self-loops ignored)."""
        if src == dst:
            return
        self.nodes.add(src)
        self.nodes.add(dst)
        self.edges[src].add(dst)
        self.edge_labels[(src, dst)].add(label)

    def find_cycle(self) -> Optional[List[int]]:
        """Return one cycle as a list of txn ids, or ``None`` if acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in self.nodes}
        parent: Dict[int, Optional[int]] = {}

        def dfs(start: int) -> Optional[List[int]]:
            stack: List[Tuple[int, Iterable[int]]] = [(start, iter(sorted(self.edges[start])))]
            color[start] = GRAY
            parent[start] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color.get(nxt, WHITE) == WHITE:
                        color[nxt] = GRAY
                        parent[nxt] = node
                        stack.append((nxt, iter(sorted(self.edges[nxt]))))
                        advanced = True
                        break
                    if color.get(nxt) == GRAY:
                        cycle = [nxt, node]
                        cur = parent[node]
                        while cur is not None and cur != nxt:
                            cycle.append(cur)
                            cur = parent[cur]
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
            return None

        for node in sorted(self.nodes):
            if color[node] == WHITE:
                cycle = dfs(node)
                if cycle is not None:
                    return cycle
        return None

    def is_acyclic(self) -> bool:
        """Whether the graph admits a serial order (no dependency cycle)."""
        return self.find_cycle() is None

    def topological_order(self) -> List[int]:
        """A serialization order, if one exists.

        Deterministic: among the ready nodes the smallest txn id is always
        emitted first (a min-heap ready queue — O((V+E) log V), replacing a
        list that was popped from the front and re-sorted per node).
        """
        indegree = {node: 0 for node in self.nodes}
        for src, dsts in self.edges.items():
            for dst in dsts:
                indegree[dst] += 1
        ready = [node for node, deg in indegree.items() if deg == 0]
        heapq.heapify(ready)
        order: List[int] = []
        while ready:
            node = heapq.heappop(ready)
            order.append(node)
            for dst in self.edges[node]:
                indegree[dst] -= 1
                if indegree[dst] == 0:
                    heapq.heappush(ready, dst)
        if len(order) != len(self.nodes):
            raise ValueError("graph has a cycle; no serialization order exists")
        return order


def build_serialization_graph(history: Sequence[CommittedTransaction]) -> SerializationGraph:
    """Build the DSG of a committed multiversioned history.

    The version order for each key is the order of writer timestamps among
    committed transactions.  Reads record the writer timestamp they observed
    (``-1`` denotes the initial, pre-history version).
    """
    graph = SerializationGraph()
    by_ts: Dict[int, CommittedTransaction] = {}
    writers_per_key: Dict[str, List[CommittedTransaction]] = defaultdict(list)

    for txn in history:
        graph.add_node(txn.txn_id)
        by_ts[txn.timestamp] = txn
        for key in txn.write_set:
            writers_per_key[key].append(txn)

    for key, writers in writers_per_key.items():
        writers.sort(key=lambda t: t.timestamp)
        # Write-write edges follow the version order.
        for earlier, later in zip(writers, writers[1:]):
            graph.add_edge(earlier.txn_id, later.txn_id, f"ww:{key}")

    for txn in history:
        for key, observed_ts in txn.read_set.items():
            writers = writers_per_key.get(key, [])
            # Write-read edge from the observed writer.
            if observed_ts >= 0 and observed_ts in by_ts and by_ts[observed_ts].txn_id != txn.txn_id:
                graph.add_edge(by_ts[observed_ts].txn_id, txn.txn_id, f"wr:{key}")
            # Read-write (anti-dependency) edges to every later writer.
            for writer in writers:
                if writer.txn_id == txn.txn_id:
                    continue
                if writer.timestamp > observed_ts:
                    graph.add_edge(txn.txn_id, writer.txn_id, f"rw:{key}")
    return graph


def check_serializable(history: Sequence[CommittedTransaction]) -> Tuple[bool, Optional[List[int]]]:
    """Whether a committed history is serializable; returns (ok, cycle)."""
    graph = build_serialization_graph(history)
    cycle = graph.find_cycle()
    return cycle is None, cycle


def check_recoverable(history: Sequence[CommittedTransaction],
                      aborted_writer_ts: Iterable[int]) -> bool:
    """No committed transaction observed a write from an aborted transaction."""
    aborted = set(aborted_writer_ts)
    for txn in history:
        for observed_ts in txn.read_set.values():
            if observed_ts in aborted:
                return False
    return True
