"""The shared open-loop load generator.

:func:`run_closed_loop` measures "N clients in lockstep": a new transaction
is drawn only when a slot frees up, so the system is never offered more work
than it can absorb and queueing is invisible.  The paper's latency/throughput
trade-off (Figure 9) and epoch-size sensitivity (Figure 10) are statements
about *offered load* — how the system behaves as arrivals approach and pass
its service capacity — which only an open loop can express.

:func:`run_open_loop` is that second driver, shared by every
:class:`~repro.api.engine.TransactionEngine` exactly like the closed loop:

* an :class:`ArrivalProcess` (:class:`DeterministicArrivals` or seeded
  :class:`PoissonArrivals`) generates arrival instants on the engine's
  :class:`~repro.sim.clock.SimClock`, independent of how fast the engine is
  serving;
* arrivals are admitted into a bounded admission queue (``queue_limit``);
  an arrival that finds the queue full is *dropped* and counted, never
  executed;
* queued work is drained in batched ``submit_many`` waves sized to the
  engine (:meth:`~repro.api.engine.TransactionEngine.open_loop_wave_limit`:
  the Obladi proxy pipelines full epoch read batches, the baselines drain
  whatever is queued up to ``clients``);
* queueing delay (arrival/re-queue to wave dispatch) is recorded separately
  from service latency, so :class:`~repro.api.results.RunStats` can report
  offered vs achieved throughput and queue-inclusive latency percentiles.

Retry semantics mirror the closed loop: an aborted attempt re-enters a
retry pool that is served ahead of fresh arrivals (retries are already
admitted, so they bypass the queue bound), up to ``max_retries`` times.
With unbounded arrivals (``arrivals=None``) and ``clients=1`` the wave
schedule degenerates to the closed loop's, which the conformance suite pins
as an invariant.

One boundary rule matters enough to state: an arrival whose instant lands
*exactly* on a wave boundary (``arrival_ms == clock.now_ms`` when admission
runs) belongs to that wave, and to that wave only — each arrival is drawn
from the process exactly once and enqueued at most once, so it can never be
double-admitted, and the inclusive comparison means it is never skipped
either (``tests/api/test_loop.py`` pins both directions).
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional, Tuple, Union

from repro.api.engine import FactorySource, ProgramFactory, TransactionEngine
from repro.api.results import RunStats


class ArrivalProcess:
    """A pluggable arrival process: a stream of inter-arrival gaps.

    Subclasses implement :meth:`intervals`, yielding successive gaps in
    simulated milliseconds.  Arrival ``i`` occurs at
    ``start + sum(gaps[:i + 1])`` — the first gap separates the run's start
    from the first arrival.  A process must be *restartable*: every call to
    :meth:`intervals` yields the same stream, so two runs configured with
    the same process (and seed) see identical arrivals.
    """

    def intervals(self) -> Iterator[float]:
        """Yield successive inter-arrival gaps in simulated milliseconds."""
        raise NotImplementedError


@dataclass(frozen=True)
class DeterministicArrivals(ArrivalProcess):
    """Arrivals at a fixed rate: one every ``1000 / rate_tps`` ms.

    ``rate_tps=float("inf")`` means every transaction arrives at the run's
    start instant — the degenerate process :func:`run_open_loop` uses for
    ``arrivals=None``.
    """

    rate_tps: float

    def __post_init__(self) -> None:
        # NaN must be rejected explicitly: it fails every comparison, so a
        # NaN rate would slip past a plain <= 0 check and then make the
        # driver's admission/advance comparisons all False — an idle spin
        # that max_waves (which only counts dispatched waves) never bounds.
        if math.isnan(self.rate_tps) or self.rate_tps <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate_tps}")

    def intervals(self) -> Iterator[float]:
        """Yield the constant gap ``1000 / rate_tps`` (0 for an infinite rate)."""
        gap = 0.0 if math.isinf(self.rate_tps) else 1000.0 / self.rate_tps
        while True:
            yield gap


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at mean rate ``rate_tps``, reproducible by seed.

    Gaps are drawn ``Random(seed).expovariate(rate_tps / 1000)``; the
    generator is re-seeded on every :meth:`intervals` call, so the same
    process object replays the identical arrival sequence run after run —
    the property the props suite asserts as "a fixed ``arrival_seed`` makes
    the full ``RunStats`` deterministic".
    """

    rate_tps: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not (self.rate_tps > 0 and math.isfinite(self.rate_tps)):
            raise ValueError(f"Poisson rate must be positive and finite, "
                             f"got {self.rate_tps}")

    def intervals(self) -> Iterator[float]:
        """Yield exponential gaps from a fresh ``Random(seed)`` stream."""
        rng = random.Random(self.seed)
        rate_per_ms = self.rate_tps / 1000.0
        while True:
            yield rng.expovariate(rate_per_ms)


def as_arrival_process(arrivals: Union[ArrivalProcess, float, None]
                       ) -> ArrivalProcess:
    """Normalise the ``arrivals`` argument of :func:`run_open_loop`.

    ``None`` means unbounded offered load (everything arrives at the start),
    a number is shorthand for :class:`DeterministicArrivals` at that rate,
    and an :class:`ArrivalProcess` passes through unchanged.
    """
    if arrivals is None:
        return DeterministicArrivals(float("inf"))
    if isinstance(arrivals, ArrivalProcess):
        return arrivals
    if isinstance(arrivals, (int, float)):
        return DeterministicArrivals(float(arrivals))
    raise TypeError(f"arrivals must be an ArrivalProcess, a rate in txn/s, "
                    f"or None; got {type(arrivals).__name__}")


def run_open_loop(engine: TransactionEngine, factory_source: FactorySource,
                  total_transactions: int,
                  arrivals: Union[ArrivalProcess, float, None] = None,
                  clients: int = 32, queue_limit: Optional[int] = None,
                  max_retries: int = 2, max_waves: int = 100_000,
                  conflict_strategy=None) -> RunStats:
    """Offer ``total_transactions`` to ``engine`` according to ``arrivals``.

    Each iteration admits every arrival whose instant has passed into the
    bounded admission queue (capacity ``queue_limit``; ``None`` = unbounded;
    a full queue drops the arrival), then dispatches one wave — retries
    first, then queued arrivals in FIFO order — of at most
    ``min(clients, engine.open_loop_wave_limit())`` programs through
    ``engine.submit_many``.  When the queue is empty and arrivals remain,
    the clock jumps to the next arrival instant (the generator is the only
    idle party; the engine's time only advances by its own work).

    Queueing delay — admission (or re-queue, for retries) to wave dispatch —
    is recorded per committing attempt in ``RunStats.queue_delays_ms``,
    aligned with ``latencies_ms``; offered/dropped/queue-depth counters and
    the usual closed-loop accounting fill the rest of the
    :class:`~repro.api.results.RunStats`.  ``max_waves`` bounds the loop for
    pathological configurations, exactly like the closed loop's
    ``max_batches``.

    ``conflict_strategy`` mirrors the closed loop's: the wave's aborted
    attempts are offered to the strategy before the retry pool sees them
    (``None`` defers to the engine's preference).
    """
    from repro.api.loop import (CounterBaseline, account_final_result,
                                resolve_conflict_strategy)
    from repro.concurrency.repair import WaveEntry

    process = as_arrival_process(arrivals)
    strategy = resolve_conflict_strategy(engine, conflict_strategy)
    stats = RunStats(engine=engine.name)
    baseline = CounterBaseline.capture(engine)
    start_ms = baseline.start_ms

    wave_limit = engine.open_loop_wave_limit()
    capacity = clients if wave_limit is None else min(clients, max(1, wave_limit))

    gaps = process.intervals()
    next_arrival_ms = start_ms + next(gaps)
    generated = 0
    # Admission queue of (factory, enqueued_ms); retries carry their attempt
    # count and travel in a separate pool served first (as in the closed
    # loop), since they were already admitted once.
    queue: Deque[Tuple[ProgramFactory, float]] = deque()
    retry_pool: List[Tuple[ProgramFactory, int, float]] = []

    def admit_through(now_ms: float) -> None:
        """Admit every arrival with ``arrival_ms <= now_ms`` (inclusive:
        an arrival exactly on the boundary joins this wave, once)."""
        nonlocal generated, next_arrival_ms
        while generated < total_transactions and next_arrival_ms <= now_ms:
            generated += 1
            stats.offered += 1
            if queue_limit is not None and len(queue) >= queue_limit:
                stats.dropped += 1
            else:
                queue.append((factory_source(), next_arrival_ms))
                stats.max_queue_depth = max(stats.max_queue_depth, len(queue))
            next_arrival_ms += next(gaps)

    while stats.epochs < max_waves:
        admit_through(engine.clock.now_ms)
        if not retry_pool and not queue:
            if generated < total_transactions:
                engine.clock.advance_to(next_arrival_ms)
                continue
            break

        dispatch_ms = engine.clock.now_ms
        wave: List[Tuple[ProgramFactory, int, float]] = []
        while retry_pool and len(wave) < capacity:
            wave.append(retry_pool.pop(0))
        while queue and len(wave) < capacity:
            factory, enqueued_ms = queue.popleft()
            wave.append((factory, 0, enqueued_ms))
        if not wave:
            # Work is pending but the wave capacity admits none of it
            # (non-positive ``clients``): stop, as the closed loop does,
            # instead of spinning max_waves empty submissions.
            break
        backlog = len(queue)

        results = engine.submit_many([factory for factory, _, _ in wave])
        stats.epochs += 1
        engine.record_open_loop_wave(queue_depth=backlog, dropped=stats.dropped)

        replacements = strategy.resolve(engine, [
            WaveEntry(index=i, factory=factory, attempts=attempts, result=result)
            for i, ((factory, attempts, _), result) in enumerate(zip(wave, results))
            if not result.committed])
        for i, ((factory, attempts, enqueued_ms), result) in enumerate(zip(wave, results)):
            final = replacements.get(i, result)
            stats.results.append(final)
            account_final_result(stats, final)
            if final.committed:
                stats.committed += 1
                stats.latencies_ms.append(final.latency_ms)
                stats.queue_delays_ms.append(dispatch_ms - enqueued_ms)
            else:
                stats.aborted += 1
                if attempts < max_retries:
                    retry_pool.append((factory, attempts + 1,
                                       engine.clock.now_ms))
                    stats.retries += 1

    baseline.finalize(stats, engine)
    engine._notify_run_end(stats)
    return stats
