"""The one shared closed-loop driver.

Historically the repo had three copies of the closed-loop retry logic: the
Obladi epoch driver in ``workloads/driver.py`` and one hand-rolled retry
path inside each baseline's ``run_transactions``.  They have been folded
into this module:

* :func:`run_closed_loop` is the engine-agnostic loop every
  :class:`~repro.api.engine.TransactionEngine` uses: draw up to ``clients``
  programs (retries first), execute them as one wave via
  ``engine.submit_many``, record outcomes, re-queue aborted programs up to
  ``max_retries`` times.
* :class:`RetryPolicy` is the retry/backoff policy itself.  The closed loop
  uses its attempt accounting; the baselines' internal discrete-event
  simulations use its :meth:`RetryPolicy.backoff_ms` so a conflict-aborted
  transaction is not replayed in lockstep (the jitter formula that used to
  be duplicated in ``nopriv.py`` and ``mysql_like.py``).

Conflict resolution is a strategy seam (``repro.concurrency.repair``):
after each wave the driver hands the aborted attempts to a
:class:`~repro.concurrency.repair.ConflictStrategy`, which may replace them
with repaired results; whatever it leaves unresolved goes through the
re-queue path above.  The default :class:`~repro.concurrency.repair.
RetryStrategy` resolves nothing, keeping fixed-seed runs byte-identical to
the historical driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.api.engine import FactorySource, ProgramFactory, TransactionEngine
from repro.api.results import RunStats
from repro.concurrency.repair import WaveEntry, as_conflict_strategy


@dataclass(frozen=True)
class CounterBaseline:
    """Engine counter snapshot taken when a load-generation driver starts.

    Both drivers (:func:`run_closed_loop` here and
    :func:`repro.api.openloop.run_open_loop`) report *per-run deltas* of the
    engine's lifetime counters; this captures the "before" side once and
    :meth:`finalize` writes every delta into a ``RunStats``, so a counter
    added to the engine surface (as each topology PR has done) is wired in
    exactly one place.
    """

    start_ms: float
    io: Tuple[int, int]
    partitions: List[Tuple[int, int]]
    servers: List[Tuple[int, int]]
    workers: List[Tuple[int, int]]
    cpu_ms: float

    @classmethod
    def capture(cls, engine: TransactionEngine) -> "CounterBaseline":
        """Snapshot ``engine``'s clock and cumulative counters."""
        return cls(start_ms=engine.clock.now_ms,
                   io=engine.io_counters(),
                   partitions=engine.partition_io_counters(),
                   servers=engine.server_io_counters(),
                   workers=engine.worker_op_counters(),
                   cpu_ms=engine.cpu_ms())

    def finalize(self, stats: RunStats, engine: TransactionEngine) -> RunStats:
        """Fill ``stats`` with the elapsed time and counter deltas since capture."""
        stats.elapsed_ms = engine.clock.now_ms - self.start_ms
        reads_after, writes_after = engine.io_counters()
        stats.physical_reads = reads_after - self.io[0]
        stats.physical_writes = writes_after - self.io[1]
        stats.partition_physical = _counter_deltas(self.partitions,
                                                   engine.partition_io_counters())
        stats.server_physical = _counter_deltas(self.servers,
                                                engine.server_io_counters())
        stats.worker_ops = _counter_deltas(self.workers,
                                           engine.worker_op_counters())
        stats.cpu_ms = engine.cpu_ms() - self.cpu_ms
        return stats


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff applied when an aborted transaction is re-submitted.

    ``backoff_slope_ms`` grows the delay linearly with the attempt number;
    ``jitter_step_ms`` adds a deterministic per-transaction phase
    (``txn_id % jitter_buckets``) so concurrent retries do not re-align.
    Real clients get the same effect from scheduling noise.  (How *many*
    retries are allowed is a call-site parameter — ``max_retries`` on
    :func:`run_closed_loop` and the baselines' ``run_transactions`` — not
    part of the backoff policy.)
    """

    backoff_slope_ms: float = 0.2
    jitter_step_ms: float = 0.05
    jitter_buckets: int = 7

    def backoff_ms(self, txn_id: int, attempts: int) -> float:
        """Delay before re-submitting ``txn_id``'s ``attempts``-th retry."""
        jitter = (txn_id % self.jitter_buckets) * self.jitter_step_ms
        return jitter + self.backoff_slope_ms * attempts


DEFAULT_RETRY_POLICY = RetryPolicy()


def _counter_deltas(before: List[Tuple[int, int]],
                    after: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Per-entry ``after - before`` for (reads, writes) counter lists.

    ``before`` may be shorter than ``after`` (an engine can grow entries,
    e.g. after a topology-preserving recovery); missing entries count as 0.
    """
    return [(reads - (before[i][0] if i < len(before) else 0),
             writes - (before[i][1] if i < len(before) else 0))
            for i, (reads, writes) in enumerate(after)]


def resolve_conflict_strategy(engine: TransactionEngine, conflict_strategy):
    """The strategy a loop driver should run ``engine`` with.

    ``None`` defers to the engine's own preference
    (:meth:`~repro.api.engine.TransactionEngine.conflict_strategy`), so an
    engine configured for repair gets repair-aware driving without the
    caller threading the knob through; a name or strategy instance wins
    over the engine preference.
    """
    if conflict_strategy is None:
        conflict_strategy = engine.conflict_strategy()
    return as_conflict_strategy(conflict_strategy)


def account_final_result(stats: RunStats, result) -> None:
    """Fold one final (post-strategy) result into the abort breakdown.

    Shared by both loop drivers.  ``wasted_attempts`` counts discarded
    work: every aborted attempt wastes one, and a failed repair wastes one
    more on top of the abort it could not prevent — while a *successful*
    repair salvages its attempt and wastes nothing.
    """
    if getattr(result, "repaired", False):
        stats.repaired += 1
    if getattr(result, "repair_failed", False):
        stats.repair_failed += 1
        stats.wasted_attempts += 1
    if not result.committed:
        stats.wasted_attempts += 1
        if result.abort_reason:
            stats.aborts_by_reason[result.abort_reason] = (
                stats.aborts_by_reason.get(result.abort_reason, 0) + 1)


def run_closed_loop(engine: TransactionEngine, factory_source: FactorySource,
                    total_transactions: int, clients: int = 32,
                    max_retries: int = 2, max_batches: int = 10_000,
                    conflict_strategy=None) -> RunStats:
    """Run ``total_transactions`` through ``engine``, closed loop.

    Each iteration fills up to ``clients`` slots — retried programs first,
    then fresh draws from ``factory_source`` — and hands the wave to
    ``engine.submit_many``.  The wave's aborted attempts are offered to the
    ``conflict_strategy`` (see :func:`resolve_conflict_strategy`); whatever
    it leaves aborted is re-queued until the program has been retried
    ``max_retries`` times; afterwards its abort is final and the slot draws
    fresh work.  ``max_batches`` bounds the loop for pathological
    configurations (e.g. an epoch too small for any transaction to finish).
    """
    strategy = resolve_conflict_strategy(engine, conflict_strategy)
    stats = RunStats(engine=engine.name)
    baseline = CounterBaseline.capture(engine)

    remaining = total_transactions
    # Attempt counts travel with their factory; keying a dict by id(factory)
    # would alias once a finished factory is garbage-collected and its
    # address reused by a fresh one.
    retry_pool: List[Tuple[ProgramFactory, int]] = []

    while (remaining > 0 or retry_pool) and stats.epochs < max_batches:
        wave: List[Tuple[ProgramFactory, int]] = []
        while retry_pool and len(wave) < clients:
            wave.append(retry_pool.pop(0))
        while remaining > 0 and len(wave) < clients:
            wave.append((factory_source(), 0))
            remaining -= 1
        if not wave:
            break

        results = engine.submit_many([factory for factory, _ in wave])
        stats.epochs += 1

        replacements = strategy.resolve(engine, [
            WaveEntry(index=i, factory=factory, attempts=attempts, result=result)
            for i, ((factory, attempts), result) in enumerate(zip(wave, results))
            if not result.committed])
        for i, ((factory, attempts), result) in enumerate(zip(wave, results)):
            final = replacements.get(i, result)
            stats.results.append(final)
            account_final_result(stats, final)
            if final.committed:
                stats.committed += 1
                stats.latencies_ms.append(final.latency_ms)
            else:
                stats.aborted += 1
                if attempts < max_retries:
                    retry_pool.append((factory, attempts + 1))
                    stats.retries += 1

    baseline.finalize(stats, engine)
    engine._notify_run_end(stats)
    return stats
