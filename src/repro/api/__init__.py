"""Unified engine layer: one transaction API over Obladi and the baselines.

The paper evaluates Obladi by running *identical* workloads through Obladi,
NoPriv and a MySQL-like store.  This package is that idea as an API:

* :class:`~repro.api.engine.TransactionEngine` — the interface every system
  implements (``submit`` / ``submit_many`` / ``transaction()`` /
  ``run_closed_loop`` / ``stats`` / ``crash``/``recover`` where supported);
* :class:`~repro.api.results.RunStats` — the one closed-loop result type
  (replacing the old ``BaselineRunResult`` / ``WorkloadRun`` split);
* :func:`~repro.api.factory.create_engine` and the fluent
  :class:`~repro.api.factory.EngineConfig` — construction;
* :func:`~repro.api.loop.run_closed_loop` and
  :class:`~repro.api.loop.RetryPolicy` — the single shared closed-loop
  driver with its retry/backoff policy;
* :func:`~repro.api.openloop.run_open_loop` with its pluggable
  :class:`~repro.api.openloop.ArrivalProcess`es
  (:class:`~repro.api.openloop.DeterministicArrivals`,
  :class:`~repro.api.openloop.PoissonArrivals`) — the open-loop driver:
  offered load through a bounded admission queue into batched waves, with
  queueing delay measured separately from service latency.

Engines also expose an *observer seam* (``engine.attach_observer(...)``):
passive observers — most notably the streaming serializability auditor of
:mod:`repro.audit` — are notified after every wave and at run end, and
publish their verdict on ``RunStats.audit`` without perturbing the run.

Every future scaling direction (sharded proxies, alternate storage
backends, async batching) plugs in by implementing ``TransactionEngine``
and registering a kind with ``create_engine``.
"""

from repro.api.adapters import (MySQLEngine, NoPrivEngine, ObladiEngine,
                                wrap_engine)
from repro.api.engine import (EngineFeatureUnavailable, FactorySource,
                              ProgramFactory, TransactionEngine)
from repro.api.factory import (DIAGNOSTIC_KINDS, ENGINE_KINDS, EngineConfig,
                               create_engine)
from repro.api.loop import DEFAULT_RETRY_POLICY, RetryPolicy, run_closed_loop
from repro.api.openloop import (ArrivalProcess, DeterministicArrivals,
                                PoissonArrivals, run_open_loop)
from repro.api.results import RunStats

__all__ = [
    "TransactionEngine",
    "EngineFeatureUnavailable",
    "RunStats",
    "EngineConfig",
    "create_engine",
    "ENGINE_KINDS",
    "DIAGNOSTIC_KINDS",
    "run_closed_loop",
    "run_open_loop",
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "ObladiEngine",
    "NoPrivEngine",
    "MySQLEngine",
    "wrap_engine",
    "ProgramFactory",
    "FactorySource",
]
