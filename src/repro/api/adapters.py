"""Engine adapters for the three evaluated systems.

Each adapter is thin: it owns one underlying system (the Obladi proxy, the
NoPriv executor, or the strict-2PL store) and maps the uniform
:class:`~repro.api.engine.TransactionEngine` surface onto it.  The closed
loop, retry policy and result bookkeeping all live in :mod:`repro.api.loop`
and :mod:`repro.api.results`; nothing here duplicates them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.api.engine import ProgramFactory, TransactionEngine
from repro.api.results import RunStats
from repro.core.client import TransactionResult


def _as_factory(program) -> ProgramFactory:
    """Normalise a program (callable or generator object) to a factory."""
    if callable(program):
        return program
    if hasattr(program, "send"):
        return lambda generator=program: generator
    raise TypeError("transaction programs must be generator functions or generators")


class ObladiEngine(TransactionEngine):
    """The Obladi proxy behind the engine interface.

    One ``submit_many`` wave is one proxy epoch: the wave's programs are
    queued, ``run_epoch`` executes them, and the epoch's results are
    returned in submission order (admission preserves queue order and MVTSO
    assigns monotonically increasing transaction ids).

    The engine must own the proxy's queue: programs submitted directly on
    the wrapped proxy in the middle of a wave would shift the id-to-program
    correspondence.
    """

    name = "obladi"
    supports_crash_recovery = True

    def __init__(self, proxy) -> None:
        self.proxy = proxy
        # Lifetime stats are measured from here, not from clock zero: a
        # shared clock may already have advanced before this engine existed.
        self._start_ms = proxy.clock.now_ms
        # Contributions of proxies retired by crash/recover cycles (and by
        # reshard cutovers), so the engine's lifetime accounting survives
        # proxy replacement.
        self._retired = RunStats(engine=self.name)
        self._retired_history: list = []
        # Live-resharding state (repro.elasticity): a staged plan waits for
        # the next wave boundary, a running migration rides epoch barriers,
        # and completed windows leave their reports for RunStats.migrations.
        self._pending_reshard = None
        self._reshard_target = None
        self._migration = None
        self._migration_reports: list = []

    # -- data plane ----------------------------------------------------- #
    def load_initial_data(self, items: Dict[str, bytes]) -> None:
        self.proxy.load_initial_data(items)

    def submit(self, program) -> TransactionResult:
        result = self.proxy.execute_transaction(program)
        self._notify_wave([result])
        return result

    def submit_many(self, programs: Sequence[ProgramFactory]) -> List[TransactionResult]:
        if not programs:
            return []
        self._begin_staged_reshard()
        for program in programs:
            self.proxy.submit(program)
        summary = self.proxy.run_epoch()
        epoch_results = [r for r in self.proxy.results.values()
                         if r.epoch == summary.epoch_id]
        ordered = sorted(epoch_results, key=lambda r: r.txn_id)
        if self._migration is not None and self._migration.done:
            self._cutover()
        self._notify_wave(ordered)
        return ordered

    def conflict_strategy(self) -> str:
        """The proxy's configured conflict-resolution strategy.

        Loop drivers default to this, so an engine built with
        ``EngineConfig.with_conflict_strategy("repair")`` drives its waves
        repair-aware without the call sites changing.  The repair itself
        happens *inside* the proxy's epochs (``_repair_conflict_losers``);
        the engine keeps the default ``repair_many`` of ``None``.
        """
        return self.proxy.config.conflict_strategy

    def open_loop_wave_limit(self) -> int:
        """One open-loop wave is one epoch: pipeline a full epoch batch.

        The epoch's read batch capacity (``b_read``) is how many concurrent
        first-round fetches an epoch can serve, so it is the natural
        admission size — waves larger than it would only convert queueing
        delay into batch-full aborts.
        """
        return max(1, self.proxy.config.read_batch_size)

    def record_open_loop_wave(self, queue_depth: int, dropped: int) -> None:
        """Mirror the wave's admission-queue counters into its epoch summary."""
        if not self.proxy.epoch_summaries:
            return
        from dataclasses import replace
        self.proxy.epoch_summaries[-1] = replace(self.proxy.epoch_summaries[-1],
                                                 queue_depth=queue_depth,
                                                 arrivals_dropped=dropped)

    # -- introspection -------------------------------------------------- #
    def stats(self) -> RunStats:
        results = list(self.proxy.results.values())
        reads, writes = self.io_counters()
        retired = self._retired
        aborted = retired.aborted + self.proxy.stats_aborted
        repair_failed = retired.repair_failed + self.proxy.stats_repair_failed
        aborts_by_reason = dict(retired.aborts_by_reason)
        for result in results:
            if not result.committed and result.abort_reason:
                aborts_by_reason[result.abort_reason] = (
                    aborts_by_reason.get(result.abort_reason, 0) + 1)
        return RunStats(
            engine=self.name,
            committed=retired.committed + self.proxy.stats_committed,
            aborted=aborted,
            elapsed_ms=self.clock.now_ms - self._start_ms,
            epochs=retired.epochs + len(self.proxy.epoch_summaries),
            physical_reads=reads,
            physical_writes=writes,
            latencies_ms=(list(retired.latencies_ms)
                          + [r.latency_ms for r in results if r.committed]),
            results=list(retired.results) + results,
            cpu_ms=self.cpu_ms(),
            partition_physical=self._partition_physical(),
            server_physical=self.server_io_counters(),
            worker_ops=self.worker_op_counters(),
            repaired=retired.repaired + self.proxy.stats_repaired,
            repair_failed=repair_failed,
            # Every abort wasted its attempt; a failed repair wasted one
            # more on top (see ``account_final_result``).
            wasted_attempts=aborted + repair_failed,
            aborts_by_reason=aborts_by_reason,
            migrations=tuple(self._migration_reports),
        )

    def _notify_run_end(self, stats: RunStats) -> None:
        """Stamp completed migration windows before observers see the stats.

        Loop drivers build their own ``RunStats``; the engine owns the
        migration record, so it is attached here — ahead of observer
        callbacks like the autoscale controller's, which publishes its
        decisions on the same object.
        """
        stats.migrations = tuple(self._migration_reports)
        super()._notify_run_end(stats)

    @staticmethod
    def _merge_counters(current: List[Tuple[int, int]],
                        retired: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Entry-wise sum of two (reads, writes) counter lists (ragged ok)."""
        merged = []
        for index in range(max(len(current), len(retired))):
            reads = writes = 0
            if index < len(current):
                reads, writes = current[index]
            if index < len(retired):
                reads, writes = reads + retired[index][0], writes + retired[index][1]
            merged.append((reads, writes))
        return merged

    def _partition_physical(self) -> List[Tuple[int, int]]:
        """Lifetime per-partition I/O: current proxy plus retired proxies."""
        return self._merge_counters(self.proxy.data_layer.per_partition_physical(),
                                    self._retired.partition_physical)

    @property
    def clock(self):
        """The proxy's simulated clock."""
        return self.proxy.clock

    @property
    def committed_history(self):
        """Committed transactions across every proxy incarnation (crash-safe)."""
        return self._retired_history + self.proxy.committed_history

    @property
    def storage(self):
        """The untrusted storage server (its trace is the adversary's view)."""
        return self.proxy.storage

    def io_counters(self) -> Tuple[int, int]:
        reads, writes = self.proxy.data_layer.lifetime_physical()
        return (self._retired.physical_reads + reads,
                self._retired.physical_writes + writes)

    def partition_io_counters(self) -> List[Tuple[int, int]]:
        return self._partition_physical()

    def worker_op_counters(self) -> List[Tuple[int, int]]:
        """Lifetime per-proxy-worker CC op counters (sharded proxy tier only).

        Empty for the single-proxy path; merged across proxy incarnations
        when crash/recover replaced the coordinator.
        """
        totals = getattr(self.proxy, "worker_op_totals", None)
        current = totals() if totals is not None else []
        return self._merge_counters(current, self._retired.worker_ops)

    def cpu_ms(self) -> float:
        """Simulated trusted-tier CC CPU charged so far (0 when unpriced)."""
        return self._retired.cpu_ms + self.proxy.cc_cpu_ms

    def server_io_counters(self) -> List[Tuple[int, int]]:
        """Per-storage-server lifetime ``(reads, writes)`` request counters.

        Read straight off the storage tier: the untrusted servers survive
        proxy crashes (recovery reuses the same store), so their counters
        are already lifetime totals and include durability traffic — this is
        the per-node observer's ledger, not the data layer's ORAM I/O.
        """
        storage = self.proxy.storage
        servers = getattr(storage, "servers", None)
        if servers is None:
            return [(storage.stats_reads, storage.stats_writes)]
        return [(server.stats_reads, server.stats_writes) for server in servers]

    # -- elastic topology ------------------------------------------------ #
    @property
    def supports_reshard(self) -> bool:
        """The Obladi adapter reshards live (see :mod:`repro.elasticity`)."""
        return True

    @property
    def reshard_in_flight(self) -> bool:
        """Whether a staged plan or running migration has yet to cut over."""
        return self._pending_reshard is not None or self._migration is not None

    def reshard(self, plan) -> None:
        """Stage a live topology change; it begins at the next wave boundary.

        Plans that move ORAM data (``shards``/``storage_servers``) run a
        padded background migration across the following epochs and cut over
        when the copy drains; pure ``proxy_workers`` changes cut over
        instantly at the boundary.  The plan is validated here, loudly,
        before anything is staged; a second reshard while one is in flight
        is rejected.
        """
        if self.reshard_in_flight:
            raise ValueError("a reshard is already in flight; "
                             "wait for its cutover")
        if plan.is_noop(self.proxy.config):
            return
        plan.resolve(self.proxy.config)   # surface invalid targets now
        self._pending_reshard = plan

    def _begin_staged_reshard(self) -> None:
        """Start the staged plan, if any, at this wave boundary."""
        if self._pending_reshard is None:
            return
        from repro.elasticity.migration import TopologyMigration, prepare_storage
        plan = self._pending_reshard
        self._pending_reshard = None
        target = plan.resolve(self.proxy.config)
        self._reshard_target = target
        if not plan.requires_migration(self.proxy.config):
            # Pure proxy-tier rebalance: the data layer is handed over
            # untouched, so the barrier itself is the whole change.
            self._cutover()
            return
        storage = prepare_storage(self.proxy.storage, target)
        self._migration = TopologyMigration(self.proxy, target, storage)
        self.proxy._migration = self._migration

    def _cutover(self) -> None:
        """Retire the proxy and install the target topology behind a new one.

        Mirrors :meth:`recover`'s retirement bookkeeping — a cutover is a
        bloodless crash/recover: the engine's lifetime stats and committed
        history absorb the old proxy, the (migration-populated or handed-
        over) data layer moves behind a freshly built proxy, and MVTSO
        timestamps/transaction ids keep extending the same serialization
        order.  With durability on, a full checkpoint is written as the
        migration *fence*: recovery from any later crash finds only the new
        generation's chain, while a crash before this point never sees it.
        """
        from repro.core.version_cache import VersionCache
        from repro.proxytier.coordinator import build_proxy
        old = self.proxy
        target = self._reshard_target
        migration = self._migration
        if migration is not None:
            layer, storage = migration.layer, migration.storage
            self._migration_reports.append(migration.report())
            old._migration = None
            self._migration = None
        else:
            layer, storage = old.data_layer, old.storage
        self._retire_proxy(old)
        # The layer follows the target topology; its epoch cache is re-built
        # so a coordinator's sharded cache never outlives its workers (the
        # new proxy re-points it again if it shards the trusted tier).
        layer.config = target
        cache = VersionCache()
        layer.cache = cache
        for part in layer.partitions:
            part.handler.cache = cache
        fresh = build_proxy(config=target, storage=storage, clock=old.clock,
                            master_key=old.master_key, data_layer=layer)
        fresh.mvtso.fast_forward(old.mvtso.next_timestamp, old.mvtso.next_txn_id)
        fresh._last_writer_ts.update(old._last_writer_ts)
        fresh._epoch_counter = old._epoch_counter
        self.proxy = fresh
        self._reshard_target = None
        if fresh.recovery is not None:
            fresh._checkpoint(full=True)

    # -- fault injection ------------------------------------------------ #
    def crash(self) -> None:
        self.proxy.crash()

    def _retire_proxy(self, old) -> None:
        """Fold a proxy's lifetime contribution into the retired accumulators.

        Shared by :meth:`recover` and the reshard cutover: both replace
        ``self.proxy`` and must not lose the old incarnation's committed
        work, I/O counters or history.
        """
        old_results = list(old.results.values())
        self._retired.committed += old.stats_committed
        self._retired.aborted += old.stats_aborted
        self._retired.epochs += len(old.epoch_summaries)
        self._retired.latencies_ms.extend(
            r.latency_ms for r in old_results if r.committed)
        self._retired.results.extend(old_results)
        old_reads, old_writes = old.data_layer.lifetime_physical()
        self._retired.physical_reads += old_reads
        self._retired.physical_writes += old_writes
        self._retired.partition_physical = self._merge_counters(
            old.data_layer.per_partition_physical(),
            self._retired.partition_physical)
        old_worker_totals = getattr(old, "worker_op_totals", None)
        self._retired.worker_ops = self._merge_counters(
            old_worker_totals() if old_worker_totals is not None else [],
            self._retired.worker_ops)
        self._retired.cpu_ms += old.cc_cpu_ms
        self._retired.repaired += old.stats_repaired
        self._retired.repair_failed += old.stats_repair_failed
        for result in old_results:
            if not result.committed and result.abort_reason:
                self._retired.aborts_by_reason[result.abort_reason] = (
                    self._retired.aborts_by_reason.get(result.abort_reason, 0) + 1)
        self._retired_history.extend(old.committed_history)

    def recover(self):
        """Build a fresh proxy from the untrusted store; returns the report.

        The crashed proxy's committed work stays in the engine's lifetime
        stats and history — a crash loses in-flight state, not the record of
        what already committed durably.  An in-flight reshard dies with the
        crash: its staged plan and half-copied target generation are
        volatile, and recovery lands on whichever side of the migration
        fence the durable chain reflects.
        """
        from repro.recovery.manager import recover_proxy
        old = self.proxy
        self._retire_proxy(old)
        self._pending_reshard = None
        self._reshard_target = None
        self._migration = None

        recovered, report = recover_proxy(old.storage, old.config,
                                          master_key=old.master_key)
        # The engine's lifetime history spans proxy incarnations, so the new
        # proxy must *extend* the old serialization order, not restart it:
        # MVTSO timestamps define the multiversion order (and txn ids name
        # serialization-graph nodes), and the version-provenance map lets
        # post-crash reads of pre-crash values name their true writer.  In a
        # real deployment both ride the durable checkpoint with the epoch
        # counter; the simulation carries them across directly.
        recovered.mvtso.fast_forward(old.mvtso.next_timestamp,
                                     old.mvtso.next_txn_id)
        recovered._last_writer_ts.update(old._last_writer_ts)
        self.proxy = recovered
        return report


class _ClosedLoopBaselineEngine(TransactionEngine):
    """Shared adapter over the baselines' discrete-event executors.

    A ``submit_many`` wave maps to one ``run_transactions`` call with as
    many client slots as programs, with the executor's *internal* retries
    disabled — retry/backoff across waves belongs to the shared closed loop.
    """

    def __init__(self, impl) -> None:
        self.impl = impl
        self._lifetime = RunStats(engine=self.name)
        # See ObladiEngine: shared clocks may predate this engine.
        self._start_ms = impl.clock.now_ms

    # -- data plane ----------------------------------------------------- #
    def load_initial_data(self, items: Dict[str, bytes]) -> None:
        self.impl.load_initial_data(items)

    def submit(self, program) -> TransactionResult:
        return self.submit_many([program])[0]

    def submit_many(self, programs: Sequence[ProgramFactory]) -> List[TransactionResult]:
        if not programs:
            return []
        factories = [_as_factory(p) for p in programs]
        wave = self.impl.run_transactions(factories, clients=len(factories),
                                          retry_aborted=False)
        self._absorb(wave)
        # With retries off each factory resolves exactly once, and slots pick
        # factories up in queue order with monotonically increasing txn ids,
        # so sorting by id restores submission order.
        ordered = sorted(wave.results, key=lambda r: r.txn_id)
        self._notify_wave(ordered)
        return ordered

    def _absorb(self, wave: RunStats) -> None:
        total = self._lifetime
        total.committed += wave.committed
        total.aborted += wave.aborted
        total.retries += wave.retries
        total.cpu_ms += wave.cpu_ms
        total.epochs += 1
        total.latencies_ms.extend(wave.latencies_ms)
        total.results.extend(wave.results)

    # -- introspection -------------------------------------------------- #
    def stats(self) -> RunStats:
        total = self._lifetime
        reads, writes = self.io_counters()
        # Snapshot, not the live accumulator: callers may hold or mutate it.
        return RunStats(
            engine=self.name,
            committed=total.committed,
            aborted=total.aborted,
            retries=total.retries,
            elapsed_ms=self.clock.now_ms - self._start_ms,
            cpu_ms=total.cpu_ms,
            epochs=total.epochs,
            physical_reads=reads,
            physical_writes=writes,
            latencies_ms=list(total.latencies_ms),
            results=list(total.results),
            server_physical=self.server_io_counters(),
        )

    @property
    def clock(self):
        return self.impl.clock

    @property
    def committed_history(self):
        return self.impl.committed_history

    @property
    def storage(self):
        return self.impl.storage

    def io_counters(self) -> Tuple[int, int]:
        return (self.impl.storage.stats_reads, self.impl.storage.stats_writes)

    def server_io_counters(self) -> List[Tuple[int, int]]:
        """The baselines run one storage server; one counter entry."""
        return [self.io_counters()]

    def cpu_ms(self) -> float:
        return self._lifetime.cpu_ms


class NoPrivEngine(_ClosedLoopBaselineEngine):
    """The paper's NoPriv baseline (MVTSO over plain remote storage)."""

    name = "nopriv"


class MySQLEngine(_ClosedLoopBaselineEngine):
    """The MySQL/InnoDB stand-in (strict 2PL over local storage)."""

    name = "mysql"


def wrap_engine(system) -> TransactionEngine:
    """Wrap an already-constructed system in its engine adapter."""
    if isinstance(system, TransactionEngine):
        return system
    from repro.baseline.mysql_like import TwoPhaseLockingStore
    from repro.baseline.nopriv import NoPrivProxy
    from repro.core.proxy import ObladiProxy
    if isinstance(system, ObladiProxy):
        return ObladiEngine(system)
    if isinstance(system, NoPrivProxy):
        return NoPrivEngine(system)
    if isinstance(system, TwoPhaseLockingStore):
        return MySQLEngine(system)
    raise TypeError(f"no engine adapter for {type(system).__name__}")
