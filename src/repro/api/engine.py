"""The :class:`TransactionEngine` interface.

Every system the evaluation compares — the Obladi proxy, the NoPriv
baseline, the MySQL-like strict-2PL store — implements this one interface,
so workloads, experiments, examples and benchmarks are written once and run
against all of them.  The interface deliberately mirrors how the paper
treats its systems: identical transaction programs in, commit/abort
decisions and timing out.

Transaction *programs* are the generator programs of
:mod:`repro.core.client`: a zero-argument callable returning a generator
that yields :class:`~repro.core.client.Read` / ``ReadMany`` / ``Write`` /
``AbortRequest`` operations.  Engines accept either the callable (preferred;
required wherever a program may be retried) or a bare generator object.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.client import (Read, Transaction, TransactionProgram,
                               TransactionResult)

ProgramFactory = Callable[[], object]
FactorySource = Callable[[], ProgramFactory]


class EngineFeatureUnavailable(NotImplementedError):
    """Raised when an engine does not support an optional capability.

    Crash/recovery is the paper's example: Obladi checkpoints obliviously and
    can lose its proxy, while the baselines have no durability story, so
    ``crash()`` on a baseline engine raises this.
    """

    def __init__(self, engine: str, feature: str) -> None:
        super().__init__(f"engine {engine!r} does not support {feature}")
        self.engine = engine
        self.feature = feature


class TransactionEngine(abc.ABC):
    """One serializable transaction system behind a uniform API.

    Concrete engines are created with :func:`repro.api.create_engine`; the
    adapters in :mod:`repro.api.adapters` wrap the underlying systems.
    """

    #: Stable engine name (matches the ``create_engine`` kind).
    name: str = "engine"
    #: Whether :meth:`crash` / :meth:`recover` are meaningful.
    supports_crash_recovery: bool = False

    # ------------------------------------------------------------------ #
    # Data plane
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def load_initial_data(self, items: Dict[str, bytes]) -> None:
        """Bulk-load a dataset before serving transactions."""

    @abc.abstractmethod
    def submit(self, program) -> TransactionResult:
        """Execute one transaction program to completion and return its fate."""

    @abc.abstractmethod
    def submit_many(self, programs: Sequence[ProgramFactory]) -> List[TransactionResult]:
        """Execute a wave of programs concurrently.

        Results are returned in submission order (``results[i]`` is the fate
        of ``programs[i]``).  This is the primitive the shared closed loop
        builds on: for the Obladi proxy one wave is one epoch; for the
        baselines it is one batch of concurrent client slots.
        """

    def read(self, key: str) -> Optional[bytes]:
        """Read a single committed value through a one-off transaction."""

        def program():
            value = yield Read(key)
            return value

        result = self.submit(program)
        return result.return_value if result.committed else None

    def transaction(self) -> Transaction:
        """Interactive transaction context manager.

        Reads and writes are buffered client-side (reads see the engine's
        committed state, plus the transaction's own buffered writes) and
        submitted as one program on ``commit()`` / context exit.
        """
        return Transaction(submit=self.submit, read_now=self.read)

    # ------------------------------------------------------------------ #
    # Closed-loop execution
    # ------------------------------------------------------------------ #
    def run_closed_loop(self, factory_source: FactorySource, total_transactions: int,
                        clients: int = 32, max_retries: int = 2,
                        max_batches: int = 10_000, conflict_strategy=None):
        """Run ``total_transactions`` closed loop and return a ``RunStats``.

        All engines share one loop implementation
        (:func:`repro.api.loop.run_closed_loop`): ``clients`` concurrent
        slots, aborted transactions retried up to ``max_retries`` times.
        ``conflict_strategy`` picks how aborted attempts are resolved
        (``"retry"``/``"repair"`` or a
        :class:`~repro.concurrency.repair.ConflictStrategy`); ``None``
        defers to the engine's own preference (:meth:`conflict_strategy`).
        """
        from repro.api.loop import run_closed_loop
        return run_closed_loop(self, factory_source, total_transactions,
                               clients=clients, max_retries=max_retries,
                               max_batches=max_batches,
                               conflict_strategy=conflict_strategy)

    def conflict_strategy(self) -> str:
        """The conflict-resolution strategy this engine prefers.

        Loop drivers consult this when the caller passes
        ``conflict_strategy=None``: ``"retry"`` (the default) leaves every
        abort to the drivers' re-queue path; the Obladi adapter reports its
        proxy's configured strategy, so an engine built with
        ``EngineConfig.with_conflict_strategy("repair")`` gets repair-aware
        driving without every call site threading the knob through.
        """
        return "retry"

    def repair_many(self, factories: Sequence[ProgramFactory]
                    ) -> Optional[List[TransactionResult]]:
        """Hook: repair a wave's aborted programs immediately, or ``None``.

        :class:`~repro.concurrency.repair.RepairStrategy` offers the
        factories of a wave's aborted attempts here.  Engines that can
        re-execute them against the wave's winning state return one result
        per factory (entries may be ``None`` for attempts they could not
        take); returning ``None`` — the default — declares repair
        unsupported, and every abort falls back to the retry path.  The
        Obladi engine repairs *inside* the epoch instead (the proxy's
        repair pass), so it keeps this default.
        """
        del factories
        return None

    # ------------------------------------------------------------------ #
    # Open-loop execution
    # ------------------------------------------------------------------ #
    def run_open_loop(self, factory_source: FactorySource, total_transactions: int,
                      arrivals=None, clients: int = 32,
                      queue_limit: Optional[int] = None, max_retries: int = 2,
                      max_waves: int = 100_000, conflict_strategy=None):
        """Offer ``total_transactions`` open loop and return a ``RunStats``.

        Arrivals follow ``arrivals`` — an
        :class:`~repro.api.openloop.ArrivalProcess`, a rate in transactions
        per simulated second (:class:`~repro.api.openloop.DeterministicArrivals`),
        or ``None`` for unbounded offered load — and pass through a bounded
        admission queue (``queue_limit``; full = arrival dropped) before
        being dispatched in batched ``submit_many`` waves of at most
        ``min(clients, open_loop_wave_limit())`` programs.  All engines
        share one driver (:func:`repro.api.openloop.run_open_loop`), just as
        they share the closed loop.
        """
        from repro.api.openloop import run_open_loop
        return run_open_loop(self, factory_source, total_transactions,
                             arrivals=arrivals, clients=clients,
                             queue_limit=queue_limit, max_retries=max_retries,
                             max_waves=max_waves,
                             conflict_strategy=conflict_strategy)

    def open_loop_wave_limit(self) -> Optional[int]:
        """Engine-specific cap on one open-loop wave's size, or ``None``.

        ``None`` (the default) means the engine has no batching cadence of
        its own: the open loop drains the admission queue up to ``clients``
        per wave — right for the baselines, whose discrete-event executors
        take any number of concurrent slots.  Engines with a natural batch
        shape override this; the Obladi adapter returns its epoch's read
        batch capacity so each wave pipelines one full epoch.
        """
        return None

    def record_open_loop_wave(self, queue_depth: int, dropped: int) -> None:
        """Hook: one open-loop wave was dispatched; mirror queue counters.

        ``queue_depth`` is the admission-queue backlog left behind after the
        wave was drawn, ``dropped`` the run's cumulative dropped arrivals.
        The default is a no-op; the Obladi adapter mirrors both into the
        epoch's :class:`~repro.core.epoch.EpochSummary`, since for that
        engine one wave is exactly one epoch.
        """

    # ------------------------------------------------------------------ #
    # Observers
    # ------------------------------------------------------------------ #
    @property
    def observers(self) -> List["object"]:
        """Attached :class:`~repro.audit.observer.EngineObserver`\\ s (read-only view)."""
        return list(getattr(self, "_observers", ()))

    def attach_observer(self, observer):
        """Attach an observer and return it.

        Observers (:class:`repro.audit.observer.EngineObserver`) receive
        ``on_wave`` after every ``submit_many`` wave and ``on_run_end`` when
        a closed- or open-loop driver finishes.  They are passive: attaching
        one never changes the engine's simulated behaviour, so fixed-seed
        runs stay byte-identical.  Returns the observer for chaining
        (``auditor = engine.attach_observer(AuditingObserver())``).
        """
        if not hasattr(self, "_observers"):
            self._observers: List[object] = []
        self._observers.append(observer)
        observer.on_attach(self)
        return observer

    def detach_observer(self, observer) -> None:
        """Detach a previously attached observer (no-op if absent)."""
        if hasattr(self, "_observers") and observer in self._observers:
            self._observers.remove(observer)

    def _notify_wave(self, results) -> None:
        """Notify observers that a wave committed (engines call this)."""
        for observer in getattr(self, "_observers", ()):
            observer.on_wave(self, results)

    def _notify_run_end(self, stats) -> None:
        """Notify observers that a loop driver finished (drivers call this)."""
        for observer in getattr(self, "_observers", ()):
            observer.on_run_end(self, stats)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def stats(self):
        """Cumulative :class:`~repro.api.results.RunStats` over the engine's lifetime."""

    @property
    @abc.abstractmethod
    def clock(self):
        """The engine's simulated clock (:class:`repro.sim.clock.SimClock`)."""

    @property
    def committed_history(self):
        """Committed transactions, for serializability checking."""
        return []

    def io_counters(self) -> Tuple[int, int]:
        """Cumulative ``(physical_reads, physical_writes)`` issued to storage."""
        return (0, 0)

    def partition_io_counters(self) -> List[Tuple[int, int]]:
        """Cumulative per-ORAM-partition ``(reads, writes)``, where sharded.

        Engines without a partitioned data layer return an empty list (or a
        single entry for one tree); the totals in :meth:`io_counters` are
        always the sums of whatever this reports.
        """
        return []

    def server_io_counters(self) -> List[Tuple[int, int]]:
        """Cumulative per-storage-server ``(reads, writes)`` request counters.

        One entry per storage server of the engine's deployment — what each
        node of the untrusted tier observed, durability traffic included.
        Engines without per-server accounting return an empty list.
        """
        return []

    def worker_op_counters(self) -> List[Tuple[int, int]]:
        """Cumulative per-proxy-worker ``(cc_reads, cc_writes)`` counters.

        One entry per trusted proxy worker for engines whose concurrency
        control is sharded (``repro.proxytier``): the version-chain reads
        and version installs each worker's slice performed.  Engines without
        a sharded proxy tier return an empty list.
        """
        return []

    def cpu_ms(self) -> float:
        """Cumulative simulated proxy CPU, where the engine models it."""
        return 0.0

    # ------------------------------------------------------------------ #
    # Elastic topology
    # ------------------------------------------------------------------ #
    @property
    def supports_reshard(self) -> bool:
        """Whether :meth:`reshard` can change this engine's topology live."""
        return False

    @property
    def reshard_in_flight(self) -> bool:
        """Whether a staged or running topology change has yet to cut over."""
        return False

    def reshard(self, plan) -> None:
        """Stage a live topology change (a :class:`repro.elasticity.ReshardPlan`).

        The change takes effect at an epoch barrier: data migrations run as
        padded background batches across the following epochs and cut over
        when the copy completes.  Engines without an elastic topology raise
        :class:`EngineFeatureUnavailable` (the default).
        """
        raise EngineFeatureUnavailable(self.name, "reshard()")

    # ------------------------------------------------------------------ #
    # Fault injection
    # ------------------------------------------------------------------ #
    def crash(self) -> None:
        """Simulate losing the engine's volatile state (where supported)."""
        raise EngineFeatureUnavailable(self.name, "crash()")

    def recover(self):
        """Recover after :meth:`crash`; returns an engine-specific report."""
        raise EngineFeatureUnavailable(self.name, "recover()")

    def close(self) -> None:
        """Release resources.  Engines are simulation-backed; default no-op."""

    def __enter__(self) -> "TransactionEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
