"""Engine construction: :func:`create_engine` and the fluent :class:`EngineConfig`.

The one entry point callers need::

    from repro.api import EngineConfig, create_engine

    engine = create_engine(
        "obladi",
        EngineConfig().with_workload("smallbank").with_backend("server_wan")
                      .with_oram(num_blocks=4096, z_real=16, block_size=192)
                      .with_seed(7))
    engine.load_initial_data(data)
    stats = engine.run_closed_loop(workload.transaction_factory,
                                   total_transactions=256, clients=32)

The same :class:`EngineConfig` configures all three engines; fields that do
not apply to a given engine (e.g. ORAM sizing for the baselines) are simply
ignored, so one config object can drive a full Figure-9-style comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.api.adapters import MySQLEngine, NoPrivEngine, ObladiEngine
from repro.api.engine import TransactionEngine
from repro.core.config import ObladiConfig, RingOramConfig

#: The evaluated engine kinds — what comparison harnesses iterate over.
ENGINE_KINDS = ("obladi", "nopriv", "mysql")

#: Additional kinds :func:`create_engine` accepts but comparisons skip.
#: ``buggy`` is the adversarial conformance mode: an Obladi engine whose
#: *reported* history is corrupted with injected serializability violations,
#: used to prove the streaming auditor catches real bugs (``repro.audit``).
#: It is deliberately not in :data:`ENGINE_KINDS` — its history must never
#: feed a figure.
DIAGNOSTIC_KINDS = ("buggy",)

_KIND_ALIASES = {
    "2pl": "mysql",
    "mysql_like": "mysql",
    "twophaselockingstore": "mysql",
    "noprivproxy": "nopriv",
    "obladiproxy": "obladi",
}


@dataclass(frozen=True)
class EngineConfig:
    """Engine-agnostic configuration with a fluent builder surface.

    Every ``with_*`` method returns a new config (the dataclass is frozen),
    so partially-built configs can be shared and specialised::

        base = EngineConfig().with_workload("tpcc").with_seed(7)
        lan, wan = base.with_backend("server"), base.with_backend("server_wan")

    ``None`` fields mean "use the workload preset / system default".
    """

    #: Workload profile for :meth:`ObladiConfig.for_workload` presets.
    workload: Optional[str] = None
    #: Storage latency model (``server``, ``server_wan``, ``dynamo``, ``dummy``).
    backend: str = "server"
    #: ORAM sizing (Obladi only).
    oram: Optional[RingOramConfig] = None
    num_blocks: Optional[int] = None

    # Epoch/batching overrides (Obladi only; ``None`` = preset value).
    read_batches: Optional[int] = None
    read_batch_size: Optional[int] = None
    write_batch_size: Optional[int] = None
    batch_interval_ms: Optional[float] = None

    # Sharding (Obladi only): number of parallel Ring ORAM partitions the
    # keyspace is hashed across, and the hash perturbation seed.
    shards: Optional[int] = None
    partition_seed: Optional[int] = None

    # Server topology (Obladi only): number of distinct simulated storage
    # servers hosting the partitions (1 = colocated namespaces on one
    # server), optional per-link extra RTT, and the proxy's request-driving
    # parallelism (which also caps concurrent partition-batch fan-out).
    storage_servers: Optional[int] = None
    link_extra_rtt_ms: Optional[tuple] = None
    parallelism: Optional[int] = None

    # Proxy tier (Obladi only): number of trusted proxy workers the MVTSO
    # version store / version cache are sharded across (1 = the paper's
    # single proxy; see ``repro.proxytier``).
    proxy_workers: Optional[int] = None

    # Conflict resolution (Obladi only): what the proxy does with MVTSO
    # conflict losers — ``"retry"`` (abort and let the loop drivers requeue,
    # the historical default) or ``"repair"`` (re-execute against the
    # winning versions inside the detecting epoch; ``repro.concurrency.
    # repair``).  ``None`` = the system default ("retry").
    conflict_strategy: Optional[str] = None

    # Durability / security toggles (Obladi only).
    durability: Optional[bool] = None
    encrypt: Optional[bool] = None
    checkpoint_frequency: Optional[int] = None

    # Locking behaviour (MySQL-like engine only).
    local_execution: bool = True
    exclusive_reads: bool = True

    # Fault plan (``buggy`` engine only): which violation kinds the wrapper
    # injects into the reported history, how many commits apart, and the
    # RNG seed for choosing victims.  ``None`` kinds = all known kinds.
    fault_kinds: Optional[tuple] = None
    fault_period: int = 4
    fault_seed: int = 0

    # Autoscaling (Obladi only): an ``repro.elasticity.AutoscalePolicy``
    # attached as an AutoscaleController observer at engine creation.
    # ``None`` (the default) attaches nothing and leaves every run
    # byte-identical to the historical path.  Typed as object to avoid
    # importing repro.elasticity here (it sits above the api layer).
    autoscale: Optional[object] = None

    # Concurrency-control CPU per MVTSO operation (Obladi only); ``None``
    # keeps the cost model's 0.0 default (no CC CPU charged — the seed
    # behaviour).  Raising it makes epochs proxy-CPU-bound, which is what
    # gives a larger ``proxy_workers`` topology a genuine throughput edge
    # (the elasticity experiments scale along exactly that axis).
    cc_op_ms: Optional[float] = None

    seed: Optional[int] = 0

    # ------------------------------------------------------------------ #
    # Fluent builder methods
    # ------------------------------------------------------------------ #
    def with_workload(self, profile: str) -> "EngineConfig":
        """Adopt a paper workload preset (``tpcc``/``smallbank``/``freehealth``/``ycsb``)."""
        return replace(self, workload=profile)

    def with_backend(self, backend: str) -> "EngineConfig":
        """Target a storage latency model (``server``/``server_wan``/``dynamo``/``dummy``)."""
        return replace(self, backend=backend)

    def with_oram(self, oram: Optional[RingOramConfig] = None, *,
                  num_blocks: Optional[int] = None, **oram_fields) -> "EngineConfig":
        """Set the Ring ORAM sizing, either whole or field-by-field.

        Field overrides compose: they apply on top of ``oram`` when both are
        given, and on top of the config's current ORAM otherwise.
        """
        if num_blocks is not None:
            oram_fields["num_blocks"] = num_blocks
        if oram_fields:
            base = oram if oram is not None else (
                self.oram if self.oram is not None else RingOramConfig())
            oram = replace(base, **oram_fields)
        if oram is None:
            oram = self.oram
        return replace(self, oram=oram,
                       num_blocks=oram.num_blocks if oram is not None else self.num_blocks)

    def with_batching(self, *, read_batches: Optional[int] = None,
                      read_batch_size: Optional[int] = None,
                      write_batch_size: Optional[int] = None,
                      batch_interval_ms: Optional[float] = None) -> "EngineConfig":
        """Override the epoch shape (R / b_read / b_write / Δ); ``None`` keeps the preset."""
        updates = {key: value for key, value in (
            ("read_batches", read_batches),
            ("read_batch_size", read_batch_size),
            ("write_batch_size", write_batch_size),
            ("batch_interval_ms", batch_interval_ms)) if value is not None}
        return replace(self, **updates)

    def with_sharding(self, shards: int,
                      partition_seed: Optional[int] = None) -> "EngineConfig":
        """Partition the keyspace across ``shards`` parallel ORAM trees.

        ``shards=1`` is the paper's single-tree proxy.  Each partition gets
        its own position map, stash, metadata, storage namespace and share
        of every epoch batch; epoch batch time is the maximum over
        partitions (they run in parallel).
        """
        config = replace(self, shards=shards)
        if partition_seed is not None:
            config = replace(config, partition_seed=partition_seed)
        return config

    def with_storage_servers(self, storage_servers: int,
                             link_extra_rtt_ms: Optional[tuple] = None
                             ) -> "EngineConfig":
        """Host the ORAM partitions on ``storage_servers`` distinct servers.

        ``storage_servers=1`` (the default) colocates every partition on one
        simulated server via key namespaces; ``storage_servers == shards``
        gives every partition its own server; values in between group
        partitions round-robin (partition ``i`` on server ``i % M``).  Each
        server keeps its own adversary trace and its link its own latency
        model; ``link_extra_rtt_ms[i]`` adds round-trip time to server
        ``i``'s link for heterogeneous-network experiments.
        """
        config = replace(self, storage_servers=storage_servers)
        if link_extra_rtt_ms is not None:
            config = replace(config, link_extra_rtt_ms=tuple(link_extra_rtt_ms))
        return config

    def with_proxy_workers(self, proxy_workers: int) -> "EngineConfig":
        """Shard the trusted MVTSO/version-cache tier across N proxy workers.

        ``proxy_workers=1`` is the paper's single proxy (and stays
        byte-identical to it); larger values route each key's version chain
        and cached base value to one of N ``ProxyWorker`` slices, charge
        concurrency-control CPU as parallel worker lanes, and commit each
        epoch through a cross-worker vote barrier (``repro.proxytier``).
        Orthogonal to :meth:`with_sharding` (ORAM partitions) and
        :meth:`with_storage_servers` (untrusted hosts).
        """
        return replace(self, proxy_workers=proxy_workers)

    def with_conflict_strategy(self, strategy: str) -> "EngineConfig":
        """Pick the conflict-resolution strategy (``"retry"``/``"repair"``).

        ``"retry"`` (the default) aborts MVTSO conflict losers and lets the
        loop drivers requeue them through ``RetryPolicy`` backoff —
        byte-identical to the historical behaviour at fixed seeds.
        ``"repair"`` re-executes losers against the winning versions inside
        the epoch that detected the conflict, so salvaged transactions ride
        the same padded write batch instead of costing a full extra
        attempt (see ``repro.concurrency.repair`` and the "Conflict
        resolution" chapter of ``docs/ARCHITECTURE.md``).
        """
        return replace(self, conflict_strategy=strategy)

    def with_parallelism(self, parallelism: int) -> "EngineConfig":
        """Cap the proxy's in-flight physical requests (and fan-out lanes).

        Beyond throttling requests inside one partition batch, this bounds
        how many partition batches the proxy can drive concurrently: with
        ``shards > parallelism`` the epoch fan-out is *staggered* and its
        wall-time lands between the ideal-parallel and serial bounds.
        """
        return replace(self, parallelism=parallelism)

    def with_durability(self, enabled: bool = True,
                        checkpoint_frequency: Optional[int] = None) -> "EngineConfig":
        """Toggle WAL + checkpointing, optionally setting the full-checkpoint period."""
        config = replace(self, durability=enabled)
        if checkpoint_frequency is not None:
            config = replace(config, checkpoint_frequency=checkpoint_frequency)
        return config

    def with_encryption(self, enabled: bool = True) -> "EngineConfig":
        """Toggle ORAM block / WAL / checkpoint encryption (ablation benchmarks)."""
        return replace(self, encrypt=enabled)

    def with_locking(self, *, local_execution: Optional[bool] = None,
                     exclusive_reads: Optional[bool] = None) -> "EngineConfig":
        """Tune the MySQL-like engine's 2PL behaviour; ``None`` keeps the default."""
        updates = {}
        if local_execution is not None:
            updates["local_execution"] = local_execution
        if exclusive_reads is not None:
            updates["exclusive_reads"] = exclusive_reads
        return replace(self, **updates)

    def with_autoscale(self, policy) -> "EngineConfig":
        """Attach an autoscaling control loop to the engine at creation.

        ``policy`` is a :class:`repro.elasticity.AutoscalePolicy`; the
        factory attaches an :class:`~repro.elasticity.AutoscaleController`
        observer that watches open-loop pressure and reshards the engine
        along the policy's topology ladder.  Only the ``obladi`` engine
        supports live resharding; ``None`` detaches.
        """
        return replace(self, autoscale=policy)

    def with_cc_cost(self, cc_op_ms: float) -> "EngineConfig":
        """Charge ``cc_op_ms`` milliseconds of proxy CPU per MVTSO operation.

        The seed default is 0.0 (no explicit CC CPU).  A positive cost makes
        epochs proxy-CPU-bound: a single proxy pays it serially while a
        sharded proxy tier (:meth:`with_proxy_workers`) schedules each
        worker's share as parallel lanes — the throughput axis the
        autoscaling experiments (:mod:`repro.elasticity`) scale along.
        """
        return replace(self, cc_op_ms=cc_op_ms)

    def with_seed(self, seed: Optional[int]) -> "EngineConfig":
        """Fix the deterministic RNG seed (``None`` = non-reproducible run)."""
        return replace(self, seed=seed)

    def with_faults(self, kinds: Optional[tuple] = None, *,
                    period: Optional[int] = None,
                    fault_seed: Optional[int] = None) -> "EngineConfig":
        """Configure the ``buggy`` engine's violation injection plan.

        ``kinds`` restricts the injected violation kinds (subset of
        :data:`repro.audit.buggy.FAULT_KINDS`; ``None`` = all of them),
        ``period`` sets how many commits apart injections are attempted and
        ``fault_seed`` the RNG seed used to pick victims.  Ignored by every
        other engine kind.
        """
        config = self
        if kinds is not None:
            config = replace(config, fault_kinds=tuple(kinds))
        if period is not None:
            config = replace(config, fault_period=period)
        if fault_seed is not None:
            config = replace(config, fault_seed=fault_seed)
        return config

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def to_obladi_config(self) -> ObladiConfig:
        """Resolve to a full :class:`ObladiConfig` (presets + overrides)."""
        overrides = {}
        for field_name in ("read_batches", "read_batch_size", "write_batch_size",
                           "batch_interval_ms", "durability", "encrypt",
                           "checkpoint_frequency", "shards", "partition_seed",
                           "storage_servers", "link_extra_rtt_ms", "parallelism",
                           "proxy_workers", "conflict_strategy"):
            value = getattr(self, field_name)
            if value is not None:
                overrides[field_name] = value
        overrides["seed"] = self.seed
        if self.cc_op_ms is not None:
            from repro.sim.latency import CpuCostModel
            overrides["cost_model"] = CpuCostModel(cc_op_ms=self.cc_op_ms)

        num_blocks = self.num_blocks
        oram = self.oram
        if oram is None and num_blocks is not None:
            oram = RingOramConfig(num_blocks=num_blocks)
        if oram is not None:
            overrides["oram"] = oram
            num_blocks = oram.num_blocks

        if self.workload is not None:
            return ObladiConfig.for_workload(
                self.workload, num_blocks=num_blocks if num_blocks else 10_000,
                backend=self.backend, **overrides)
        return ObladiConfig(backend=self.backend, **overrides)


def create_engine(kind: str,
                  config: Optional[Union[EngineConfig, ObladiConfig]] = None,
                  *, storage=None, clock=None, **overrides) -> TransactionEngine:
    """Create a :class:`TransactionEngine` of the given ``kind``.

    Parameters
    ----------
    kind:
        ``"obladi"``, ``"nopriv"``, ``"mysql"`` or ``"buggy"`` — the latter
        an Obladi engine whose reported history is corrupted per the
        config's fault plan (a few legacy aliases such as ``"2pl"`` are
        accepted).
    config:
        An :class:`EngineConfig`, or — for the Obladi engine only — a fully
        resolved :class:`ObladiConfig`.  Defaults to ``EngineConfig()``.
    storage:
        Optional pre-built storage tier to run against (shared-storage and
        trace-inspection scenarios): an
        :class:`~repro.storage.memory.InMemoryStorageServer`, or — for a
        multi-server Obladi topology — a
        :class:`~repro.storage.cluster.StorageCluster` whose server count
        matches ``storage_servers``.
    clock:
        Optional shared :class:`~repro.sim.clock.SimClock`.
    overrides:
        ``EngineConfig`` field overrides applied on top of ``config``, so
        quick one-offs read ``create_engine("nopriv", backend="server_wan")``.
    """
    normalized = _KIND_ALIASES.get(kind.lower(), kind.lower())
    if normalized not in ENGINE_KINDS + DIAGNOSTIC_KINDS:
        raise KeyError(f"unknown engine kind {kind!r}; valid: "
                       f"{', '.join(ENGINE_KINDS + DIAGNOSTIC_KINDS)}")

    obladi_config: Optional[ObladiConfig] = None
    if isinstance(config, ObladiConfig):
        if normalized != "obladi":
            raise TypeError("an ObladiConfig can only configure the 'obladi' engine")
        if overrides:
            raise TypeError("pass EngineConfig (not ObladiConfig) to combine overrides")
        obladi_config = config
        engine_config = EngineConfig(backend=config.backend, seed=config.seed)
    else:
        engine_config = config if config is not None else EngineConfig()
        if overrides:
            engine_config = replace(engine_config, **overrides)

    if normalized in ("obladi", "buggy"):
        from repro.proxytier import build_proxy
        if obladi_config is None:
            obladi_config = engine_config.to_obladi_config()
        engine = ObladiEngine(build_proxy(obladi_config, storage=storage, clock=clock))
        if normalized == "buggy":
            from repro.audit.buggy import BuggyEngine
            return BuggyEngine(engine, kinds=engine_config.fault_kinds,
                               period=engine_config.fault_period,
                               seed=engine_config.fault_seed)
        if engine_config.autoscale is not None:
            from repro.elasticity import AutoscaleController
            engine.attach_observer(AutoscaleController(engine_config.autoscale))
        return engine

    if normalized == "nopriv":
        from repro.baseline.nopriv import NoPrivProxy
        return NoPrivEngine(NoPrivProxy(backend=engine_config.backend, clock=clock,
                                        storage=storage, seed=engine_config.seed))

    from repro.baseline.mysql_like import TwoPhaseLockingStore
    return MySQLEngine(TwoPhaseLockingStore(
        backend=engine_config.backend, clock=clock, storage=storage,
        seed=engine_config.seed, local_execution=engine_config.local_execution,
        exclusive_reads=engine_config.exclusive_reads))
