"""The unified run-result type shared by every transaction engine.

Before the :mod:`repro.api` layer existed, closed-loop runs produced two
incompatible result types: ``BaselineRunResult`` (the baselines' discrete
event simulations) and ``WorkloadRun`` (the Obladi epoch driver).  Harness
code had to know which system produced a run before it could read a
throughput number.  :class:`RunStats` replaces both: every engine's
``run_closed_loop`` returns one, with identical field semantics, so rows of
Figure 9 can be computed without a single ``isinstance`` check.

``BaselineRunResult`` and ``WorkloadRun`` remain importable as aliases of
this class; the legacy attribute names (``system``, ``makespan_ms``) are
provided as read/write properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.client import TransactionResult


@dataclass
class RunStats:
    """Aggregate outcome of a closed-loop run against any engine.

    Attributes
    ----------
    engine:
        Name of the engine that produced the run (``"obladi"``, ``"nopriv"``,
        ``"mysql"``, ...).
    committed / aborted:
        Final transaction outcomes.  A transaction that aborts and later
        commits on retry counts once in each column, so
        ``committed + aborted == len(results)`` (total attempts), and
        ``committed + aborted - retries`` equals the number of distinct
        programs that reached a final verdict.
    retries:
        Number of aborted attempts that were re-queued.
    elapsed_ms:
        Simulated wall-clock duration of the run (the baselines' makespan;
        the proxy's epoch span).
    cpu_ms:
        Simulated proxy CPU consumed, where the engine models it (0 otherwise).
    epochs:
        Scheduling waves executed: epochs for the Obladi proxy, client
        batches for the baselines.
    physical_reads / physical_writes:
        Physical storage requests issued during the run (ORAM bucket I/O for
        Obladi, raw key I/O for the baselines).
    partition_physical:
        Per-ORAM-partition ``(physical_reads, physical_writes)`` breakdown
        for partitioned Obladi engines (one entry per shard; the totals
        above are its sums).  Empty for baselines and legacy consumers.
    server_physical:
        Per-storage-server ``(reads, writes)`` request counters — what each
        *node* of the storage tier observed, durability traffic included
        (one entry per server; a colocated topology has exactly one).
        Empty for engines that do not report a server breakdown.
    worker_ops:
        Per-proxy-worker ``(cc_reads, cc_writes)`` concurrency-control
        operation counters for engines whose *trusted* tier is sharded
        (``repro.proxytier``): the version-chain reads and version installs
        each worker's slice performed during the run.  Empty for the
        single-proxy path and the baselines.
    latencies_ms:
        Per-committed-transaction latency samples.  Latency is measured over
        the *committing attempt* (submission of that attempt to its commit),
        identically for every engine; queueing time spent between retry
        waves is not included.  This is the one measurement model of the
        unified closed loop — the pre-engine-layer baselines measured some
        of that waiting, so their absolute numbers shifted slightly when
        they were folded in (the paper's qualitative relationships are
        unchanged).
    results:
        Every :class:`~repro.core.client.TransactionResult` observed,
        including aborted attempts that were later retried.
    offered / dropped:
        Open-loop load accounting (:func:`repro.api.openloop.run_open_loop`):
        arrivals the arrival process generated, and arrivals turned away by
        the bounded admission queue (dropped arrivals never execute, so
        ``committed + aborted == (offered - dropped) + retries`` for an
        open-loop run that ran to completion; a run truncated by
        ``max_waves`` may leave offered arrivals queued and a final-wave
        re-queued retry unattempted, so the identity holds only as ``<=``
        there).  Both stay 0 for closed-loop runs.
    max_queue_depth:
        Largest admission-queue depth observed while admitting open-loop
        arrivals (0 for closed-loop runs, where no queue exists).
    queue_delays_ms:
        Per-committed-transaction *queueing* delay samples — admission (or
        re-queue, for the committing retry) to wave dispatch — aligned
        index-by-index with ``latencies_ms``.  Empty for closed-loop runs:
        queueing delay is exactly what the closed loop cannot express.
    audit:
        The :class:`~repro.audit.streaming.AuditReport` published by an
        attached :class:`~repro.audit.observer.AuditingObserver` when the
        run finished, or ``None`` when no auditor was attached.  Excluded
        from ``repr`` and ``==`` so audited fixed-seed runs compare
        byte-identical to unaudited ones.
    repaired / repair_failed:
        Conflict-repair accounting (``repro.concurrency.repair``): final
        results whose transaction lost an MVTSO conflict but was repaired
        and committed, and repair attempts that still ended in an abort.
        Both stay 0 under the default retry strategy.
    wasted_attempts:
        Work discarded before commit: every aborted attempt counts one,
        and a failed repair counts one more (the repair work on top of the
        abort it could not prevent); a successful repair salvages its
        attempt and adds nothing.  This is the retry-vs-repair
        amplification measure of the knee sweep.
    aborts_by_reason:
        Final aborts broken out by ``AbortReason.value`` (e.g.
        ``{"write_conflict": 3, "epoch_boundary": 1}``).
        Like ``audit``, the four fields above are excluded from ``repr``
        and ``==`` so fixed-seed retry runs stay byte-identical to
        pre-repair output.
    """

    engine: str = ""
    committed: int = 0
    aborted: int = 0
    retries: int = 0
    elapsed_ms: float = 0.0
    cpu_ms: float = 0.0
    epochs: int = 0
    physical_reads: int = 0
    physical_writes: int = 0
    latencies_ms: List[float] = field(default_factory=list)
    results: List[TransactionResult] = field(default_factory=list)
    partition_physical: List[Tuple[int, int]] = field(default_factory=list)
    server_physical: List[Tuple[int, int]] = field(default_factory=list)
    worker_ops: List[Tuple[int, int]] = field(default_factory=list)
    offered: int = 0
    dropped: int = 0
    max_queue_depth: int = 0
    queue_delays_ms: List[float] = field(default_factory=list)
    # Typed as object to avoid importing repro.audit here (the audit package
    # sits above the api layer); holds an AuditReport when an auditor ran.
    audit: Optional[object] = field(default=None, repr=False, compare=False)
    repaired: int = field(default=0, repr=False, compare=False)
    repair_failed: int = field(default=0, repr=False, compare=False)
    wasted_attempts: int = field(default=0, repr=False, compare=False)
    aborts_by_reason: dict = field(default_factory=dict, repr=False, compare=False)
    # Elastic-topology observability (repro.elasticity): the run's completed
    # migration windows (MigrationReport tuple, stamped by the Obladi engine)
    # and the autoscale controller's decision record (ControllerReport, set
    # by AutoscaleController.on_run_end).  Both are excluded from repr and
    # comparisons like the other observability extras, so runs that never
    # reshard stay byte-identical to the historical output.
    migrations: tuple = field(default=(), repr=False, compare=False)
    controller: Optional[object] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def attempts(self) -> int:
        """Total transaction attempts (committed + aborted)."""
        return self.committed + self.aborted

    @property
    def throughput_tps(self) -> float:
        """Committed transactions per simulated second."""
        if self.elapsed_ms <= 0:
            return 0.0
        return self.committed * 1000.0 / self.elapsed_ms

    @property
    def average_latency_ms(self) -> float:
        """Mean committed-transaction latency (0.0 when nothing committed)."""
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    @property
    def p50_latency_ms(self) -> float:
        """Median committed-transaction latency."""
        return self._percentile(0.50)

    @property
    def p95_latency_ms(self) -> float:
        """95th-percentile committed-transaction latency."""
        return self._percentile(0.95)

    @property
    def p99_latency_ms(self) -> float:
        """99th-percentile committed-transaction latency."""
        return self._percentile(0.99)

    def _percentile(self, fraction: float,
                    samples: Optional[List[float]] = None) -> float:
        data = self.latencies_ms if samples is None else samples
        if not data:
            return 0.0
        ordered = sorted(data)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def abort_rate(self) -> float:
        """Fraction of attempts that aborted (0.0 with no attempts)."""
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0

    # ------------------------------------------------------------------ #
    # Open-loop metrics (offered load, queueing)
    # ------------------------------------------------------------------ #
    @property
    def offered_tps(self) -> float:
        """Offered load in arrivals per simulated second (0 when closed loop)."""
        if self.elapsed_ms <= 0:
            return 0.0
        return self.offered * 1000.0 / self.elapsed_ms

    @property
    def achieved_tps(self) -> float:
        """Achieved throughput — an alias of :attr:`throughput_tps` that
        reads naturally next to :attr:`offered_tps` in saturation sweeps."""
        return self.throughput_tps

    @property
    def total_latencies_ms(self) -> List[float]:
        """Queue-inclusive latency samples (queueing delay + service latency).

        For closed-loop runs (no queueing-delay samples) this is simply the
        service latencies, so the property reads uniformly in either mode.
        """
        if not self.queue_delays_ms:
            return list(self.latencies_ms)
        return [queue + service for queue, service
                in zip(self.queue_delays_ms, self.latencies_ms)]

    @property
    def average_queue_delay_ms(self) -> float:
        """Mean queueing delay of committed transactions (0.0 closed loop)."""
        if not self.queue_delays_ms:
            return 0.0
        return sum(self.queue_delays_ms) / len(self.queue_delays_ms)

    @property
    def average_total_latency_ms(self) -> float:
        """Mean queue-inclusive latency (equals the mean service latency
        for closed-loop runs)."""
        totals = self.total_latencies_ms
        if not totals:
            return 0.0
        return sum(totals) / len(totals)

    @property
    def p50_total_latency_ms(self) -> float:
        """Median queue-inclusive latency."""
        return self._percentile(0.50, self.total_latencies_ms)

    @property
    def p95_total_latency_ms(self) -> float:
        """95th-percentile queue-inclusive latency."""
        return self._percentile(0.95, self.total_latencies_ms)

    @property
    def p99_total_latency_ms(self) -> float:
        """99th-percentile queue-inclusive latency."""
        return self._percentile(0.99, self.total_latencies_ms)

    # ------------------------------------------------------------------ #
    # Legacy attribute names
    # ------------------------------------------------------------------ #
    @property
    def system(self) -> str:
        """Legacy alias of :attr:`engine` (``WorkloadRun.system``)."""
        return self.engine

    @system.setter
    def system(self, value: str) -> None:
        self.engine = value

    @property
    def makespan_ms(self) -> float:
        """Legacy alias of :attr:`elapsed_ms` (``BaselineRunResult.makespan_ms``)."""
        return self.elapsed_ms

    @makespan_ms.setter
    def makespan_ms(self, value: float) -> None:
        self.elapsed_ms = value
