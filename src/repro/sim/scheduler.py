"""Parallel-schedule solver for physical storage operations.

The Obladi executor issues many physical bucket reads/writes that are mostly
independent but occasionally conflict (e.g. every path read touches the root
bucket's metadata).  Section 7 of the paper parallelises Ring ORAM by
tracking those dependencies and pipelining everything else.

In this reproduction the executor does not actually run threads; it builds a
set of :class:`ScheduledOp` records — each with a duration, an optional list
of dependencies, and a resource class — and asks :class:`ParallelScheduler`
for the *makespan*: the simulated time at which all operations complete given
a bound on how many can run concurrently.  This is a classic list-scheduling
computation (greedy earliest-start on a bounded worker pool, respecting
precedence edges), which is exactly the behaviour of a thread pool executing
a dependency DAG.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class ScheduledOp:
    """One unit of schedulable work.

    Attributes
    ----------
    op_id:
        Unique identifier within the schedule.
    duration_ms:
        How long the operation occupies a worker slot.
    deps:
        Identifiers of operations that must finish before this one starts.
    tag:
        Free-form label (e.g. ``"read:bucket:3"``) used by tests and traces.
    """

    op_id: int
    duration_ms: float
    deps: Tuple[int, ...] = ()
    tag: str = ""

    def __post_init__(self) -> None:
        if self.duration_ms < 0:
            raise ValueError(f"operation {self.op_id} has negative duration")


@dataclass
class ScheduleResult:
    """Outcome of scheduling a DAG of operations."""

    makespan_ms: float
    finish_times: Dict[int, float] = field(default_factory=dict)
    total_work_ms: float = 0.0
    critical_path_ms: float = 0.0

    @property
    def parallel_speedup(self) -> float:
        """Ratio of total work to makespan; 1.0 means fully serial."""
        if self.makespan_ms <= 0:
            return 1.0
        return self.total_work_ms / self.makespan_ms


class ParallelScheduler:
    """Greedy list scheduler over a bounded pool of workers.

    The scheduler is deterministic: ties are broken by operation id, so two
    runs over the same DAG produce identical makespans.  This determinism
    matters for the reproduction — the paper's security argument relies on
    the physical schedule being a deterministic function of the sequential
    access sequence (Lemma 2), and tests assert exactly that.
    """

    def __init__(self, max_parallelism: int) -> None:
        if max_parallelism < 1:
            raise ValueError("max_parallelism must be at least 1")
        self.max_parallelism = max_parallelism

    def schedule(self, ops: Sequence[ScheduledOp], start_ms: float = 0.0) -> ScheduleResult:
        """Compute finish times for ``ops`` starting at ``start_ms``.

        Raises ``ValueError`` on duplicate ids, unknown dependencies, or
        dependency cycles.
        """
        if not ops:
            return ScheduleResult(makespan_ms=start_ms, finish_times={}, total_work_ms=0.0,
                                  critical_path_ms=0.0)

        by_id: Dict[int, ScheduledOp] = {}
        for op in ops:
            if op.op_id in by_id:
                raise ValueError(f"duplicate operation id {op.op_id}")
            by_id[op.op_id] = op

        indegree: Dict[int, int] = {op.op_id: 0 for op in ops}
        children: Dict[int, List[int]] = {op.op_id: [] for op in ops}
        for op in ops:
            for dep in op.deps:
                if dep not in by_id:
                    raise ValueError(f"operation {op.op_id} depends on unknown op {dep}")
                indegree[op.op_id] += 1
                children[dep].append(op.op_id)

        # Ready queue holds (earliest_start, op_id); workers is a heap of
        # times at which a worker slot frees up.
        ready: List[Tuple[float, int]] = []
        earliest_start: Dict[int, float] = {}
        for op in ops:
            if indegree[op.op_id] == 0:
                earliest_start[op.op_id] = start_ms
                heapq.heappush(ready, (start_ms, op.op_id))

        workers: List[float] = [start_ms] * self.max_parallelism
        heapq.heapify(workers)

        finish_times: Dict[int, float] = {}
        critical: Dict[int, float] = {}
        scheduled = 0

        while ready:
            avail_ms, op_id = heapq.heappop(ready)
            op = by_id[op_id]
            worker_free = heapq.heappop(workers)
            begin = max(avail_ms, worker_free)
            end = begin + op.duration_ms
            heapq.heappush(workers, end)
            finish_times[op_id] = end
            critical[op_id] = max(
                (critical[d] for d in op.deps), default=start_ms
            ) + op.duration_ms
            scheduled += 1

            for child in children[op_id]:
                indegree[child] -= 1
                child_start = max(earliest_start.get(child, start_ms), end)
                earliest_start[child] = child_start
                if indegree[child] == 0:
                    heapq.heappush(ready, (child_start, child))

        if scheduled != len(ops):
            raise ValueError("dependency cycle detected in operation DAG")

        makespan = max(finish_times.values())
        total_work = sum(op.duration_ms for op in ops)
        critical_path = max(critical.values()) - start_ms if critical else 0.0
        return ScheduleResult(
            makespan_ms=makespan,
            finish_times=finish_times,
            total_work_ms=total_work,
            critical_path_ms=critical_path,
        )

    def makespan_ms(self, ops: Sequence[ScheduledOp], start_ms: float = 0.0) -> float:
        """Convenience wrapper returning only the makespan."""
        return self.schedule(ops, start_ms=start_ms).makespan_ms


def serial_duration_ms(ops: Iterable[ScheduledOp]) -> float:
    """Total duration if the operations were executed one after another."""
    return sum(op.duration_ms for op in ops)


def build_ops(durations: Sequence[float],
              deps: Optional[Sequence[Sequence[int]]] = None,
              tags: Optional[Sequence[str]] = None) -> List[ScheduledOp]:
    """Helper to build a list of ScheduledOps from parallel arrays.

    ``deps[i]`` lists the *indices* of operations that operation ``i`` waits
    for.  Used heavily by tests and by the ORAM executor.
    """
    ops: List[ScheduledOp] = []
    for i, duration in enumerate(durations):
        dep_list: Tuple[int, ...] = ()
        if deps is not None and i < len(deps) and deps[i]:
            dep_list = tuple(deps[i])
        tag = tags[i] if tags is not None and i < len(tags) else ""
        ops.append(ScheduledOp(op_id=i, duration_ms=duration, deps=dep_list, tag=tag))
    return ops
