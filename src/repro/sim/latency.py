"""Latency and CPU cost models for the evaluation's storage backends.

Section 11.2 of the paper instantiates the ORAM over four backends:

* ``dummy``   — a local no-op store (0.0 ms "network"), used to expose CPU
  bottlenecks of the proxy itself;
* ``server``  — a remote in-memory hash map with a 0.3 ms ping;
* ``server_wan`` — the same store behind a 10 ms WAN ping;
* ``dynamo``  — DynamoDB provisioned at 80K req/s, ~1 ms reads and ~3 ms
  writes, with a client API that issues *blocking* HTTP calls and therefore
  caps usable parallelism early.

The reproduction charges each physical storage request a round-trip latency
from these models and each unit of proxy work a CPU cost from
:class:`CpuCostModel`.  The CPU constants are calibrated so the *relative*
magnitudes match the paper's observations (metadata computation dominates on
``dummy``; the network dominates everywhere else); they are not wall-clock
measurements of this Python code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class LatencyModel:
    """Round-trip latency model for an untrusted storage backend.

    Attributes
    ----------
    name:
        Identifier used throughout the harness (``dummy``, ``server``, ...).
    read_rtt_ms / write_rtt_ms:
        Round-trip time of a single physical read / write request.
    max_parallel_requests:
        How many physical requests the backend (or its client library) can
        usefully serve concurrently.  DynamoDB's blocking HTTP client caps
        this early, as the paper notes for Figure 10b.
    per_request_server_ms:
        Server-side service time added per request even when requests are
        pipelined; models the provisioned-throughput ceiling.
    """

    name: str
    read_rtt_ms: float
    write_rtt_ms: float
    max_parallel_requests: int = 256
    per_request_server_ms: float = 0.0
    dispatch_ms_per_request: float = 0.0

    def rtt_ms(self, is_write: bool) -> float:
        """Round-trip latency for one request of the given kind."""
        return self.write_rtt_ms if is_write else self.read_rtt_ms

    def effective_parallelism(self, proxy_parallelism: int) -> int:
        """Parallelism usable once both proxy and backend caps are applied."""
        return max(1, min(proxy_parallelism, self.max_parallel_requests))


@dataclass(frozen=True)
class CpuCostModel:
    """Proxy-side CPU costs charged to the simulated clock (milliseconds).

    The constants model, per physical block: decrypting / re-encrypting the
    block, computing Ring ORAM metadata (remapping, permutation updates), and
    the coordination overhead the paper attributes to multilevel
    serializability tracking when running in parallel mode.
    """

    crypto_per_block_ms: float = 0.0004
    metadata_per_block_ms: float = 0.0002
    coordination_per_block_ms: float = 0.0012
    dependency_tracking_per_op_ms: float = 0.0004
    mac_per_block_ms: float = 0.0001
    #: Concurrency-control CPU charged per MVTSO operation at the *trusted*
    #: proxy tier.  The default is 0.0 — the seed proxy never charged
    #: explicit CC CPU and every recorded timing depends on that — so
    #: proxy-CPU-bound experiments opt in by raising it.  A single proxy
    #: pays this serially for its version-chain reads/inserts (its commit
    #: check stays unpriced); a sharded proxy tier (``repro.proxytier``)
    #: divides the same reads/inserts across worker lanes but additionally
    #: prices its epoch-barrier votes at this rate — the genuine extra cost
    #: of running commit as a cross-worker protocol.
    cc_op_ms: float = 0.0

    def sequential_block_cost_ms(self, encrypted: bool = True) -> float:
        """CPU cost of handling one physical block in sequential mode."""
        cost = self.metadata_per_block_ms
        if encrypted:
            cost += self.crypto_per_block_ms
        return cost

    def parallel_block_cost_ms(self, encrypted: bool = True) -> float:
        """CPU cost of handling one physical block in parallel mode.

        Parallel execution pays the extra coordination cost the paper
        measures as a 3x slowdown on the ``dummy`` backend (Figure 10a).
        """
        return self.sequential_block_cost_ms(encrypted) + self.coordination_per_block_ms


#: The four storage backends used throughout Section 11.
#:
#: ``dispatch_ms_per_request`` models the serial cost the proxy pays per
#: physical request it puts on the wire (serialisation, framing, socket
#: writes); it is what ultimately caps the parallel speedup on remote
#: backends, matching the paper's observation that throughput is limited by
#: dependencies and request handling at the top of the tree rather than by
#: the raw round-trip time.  ``max_parallel_requests`` caps in-flight
#: requests; DynamoDB's blocking HTTP client caps out early (Figure 10b).
BACKENDS: Dict[str, LatencyModel] = {
    "dummy": LatencyModel(
        name="dummy",
        read_rtt_ms=0.0,
        write_rtt_ms=0.0,
        max_parallel_requests=1024,
        per_request_server_ms=0.0,
        dispatch_ms_per_request=0.0,
    ),
    "server": LatencyModel(
        name="server",
        read_rtt_ms=0.3,
        write_rtt_ms=0.3,
        max_parallel_requests=1024,
        per_request_server_ms=0.002,
        dispatch_ms_per_request=0.005,
    ),
    "server_wan": LatencyModel(
        name="server_wan",
        read_rtt_ms=10.0,
        write_rtt_ms=10.0,
        max_parallel_requests=1024,
        per_request_server_ms=0.002,
        dispatch_ms_per_request=0.006,
    ),
    "dynamo": LatencyModel(
        name="dynamo",
        read_rtt_ms=1.0,
        write_rtt_ms=3.0,
        max_parallel_requests=64,
        per_request_server_ms=0.0125,
        dispatch_ms_per_request=0.02,
    ),
}


def get_latency_model(name_or_model) -> LatencyModel:
    """Resolve a backend name (or pass through a model) to a LatencyModel.

    Raises ``KeyError`` listing the valid names when the name is unknown, so
    misconfigured experiments fail loudly.
    """
    if isinstance(name_or_model, LatencyModel):
        return name_or_model
    try:
        return BACKENDS[name_or_model]
    except KeyError:
        valid = ", ".join(sorted(BACKENDS))
        raise KeyError(f"unknown storage backend {name_or_model!r}; valid: {valid}") from None


@dataclass
class NetworkConditions:
    """Mutable overlay on a latency model, used for WAN experiments.

    The end-to-end experiments (Figure 9) run the same applications in a LAN
    setting (0.3 ms proxy-to-storage ping) and a WAN setting (10 ms).  Rather
    than duplicating every backend, experiments wrap a base model with extra
    one-way delay.
    """

    base: LatencyModel
    extra_rtt_ms: float = 0.0
    name_suffix: str = ""
    _cached: Optional[LatencyModel] = field(default=None, repr=False)

    def resolve(self) -> LatencyModel:
        """Materialise the overlay as a concrete LatencyModel."""
        if self._cached is None:
            self._cached = LatencyModel(
                name=self.base.name + self.name_suffix,
                read_rtt_ms=self.base.read_rtt_ms + self.extra_rtt_ms,
                write_rtt_ms=self.base.write_rtt_ms + self.extra_rtt_ms,
                max_parallel_requests=self.base.max_parallel_requests,
                per_request_server_ms=self.base.per_request_server_ms,
                dispatch_ms_per_request=self.base.dispatch_ms_per_request,
            )
        return self._cached


def wan_variant(model: LatencyModel, extra_rtt_ms: float = 9.7) -> LatencyModel:
    """Return a WAN flavour of ``model`` with ``extra_rtt_ms`` added per request."""
    return NetworkConditions(base=model, extra_rtt_ms=extra_rtt_ms, name_suffix="_wan").resolve()


def link_latency_models(base, num_links: int,
                        link_extra_rtt_ms=()) -> "list[LatencyModel]":
    """Resolve one :class:`LatencyModel` per proxy-to-server link.

    A multi-server storage tier (:mod:`repro.storage.cluster`) gives every
    server its own link.  ``base`` is a backend name or model shared by all
    of them; ``link_extra_rtt_ms[i]`` (when provided) adds per-link
    round-trip time to link ``i`` via :class:`NetworkConditions` — links
    beyond the end of the sequence get no extra delay.
    """
    base_model = get_latency_model(base)
    models = []
    for index in range(num_links):
        extra = link_extra_rtt_ms[index] if index < len(link_extra_rtt_ms) else 0.0
        if extra:
            models.append(NetworkConditions(base=base_model, extra_rtt_ms=extra,
                                            name_suffix=f"_s{index}").resolve())
        else:
            models.append(base_model)
    return models
