"""A simulated clock.

All performance numbers reported by the reproduction are expressed in
*simulated milliseconds*.  Components that perform work (network round trips,
encryption, dependency tracking) advance the clock explicitly by the cost of
that work.  The clock is deliberately tiny: it is a float with bookkeeping,
so that every subsystem can share one instance without coupling.
"""

from __future__ import annotations


class SimClock:
    """Monotonically advancing simulated clock, in milliseconds.

    The clock supports two styles of use:

    * ``advance(delta)`` — move time forward by ``delta`` ms (work performed
      serially on the critical path).
    * ``advance_to(t)`` — move time to an absolute instant if it is later
      than now (used when a parallel schedule reports its makespan).
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError("clock cannot start at a negative time")
        self._now_ms = float(start_ms)
        self._total_advances = 0

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_ms / 1000.0

    @property
    def total_advances(self) -> int:
        """Number of times the clock has been advanced (for introspection)."""
        return self._total_advances

    def advance(self, delta_ms: float) -> float:
        """Advance the clock by ``delta_ms`` and return the new time.

        Negative deltas are rejected: simulated time never runs backwards.
        """
        if delta_ms < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta_ms}")
        self._now_ms += delta_ms
        self._total_advances += 1
        return self._now_ms

    def advance_to(self, t_ms: float) -> float:
        """Advance the clock to the absolute instant ``t_ms`` if it is later.

        Returns the (possibly unchanged) current time.  Advancing to an
        earlier instant is a no-op rather than an error because parallel
        branches may finish before the current critical path.
        """
        if t_ms > self._now_ms:
            self._now_ms = t_ms
            self._total_advances += 1
        return self._now_ms

    def fork(self) -> "SimClock":
        """Return a new clock starting at the current instant.

        Used by components that compute a tentative schedule (e.g. an epoch's
        write-back) before deciding whether to apply it.
        """
        return SimClock(self._now_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now_ms={self._now_ms:.3f})"
