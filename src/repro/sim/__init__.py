"""Simulated-time substrate.

The Obladi paper evaluates a Java prototype over real EC2 networks; the
throughput and latency numbers it reports are dominated by storage round-trip
times and by how many physical requests can be in flight concurrently.  This
package provides the discrete-event machinery the reproduction uses instead of
real networks:

* :mod:`repro.sim.clock` — a simulated clock, advanced explicitly.
* :mod:`repro.sim.latency` — latency/cost models for the four storage
  backends of the evaluation (``dummy``, ``server``, ``server_wan``,
  ``dynamo``) plus calibrated CPU cost constants.
* :mod:`repro.sim.scheduler` — a small parallel-schedule solver: given a set
  of operations with durations, dependencies and a parallelism cap, it
  computes the simulated makespan (critical-path length under limited
  resources).
"""

from repro.sim.clock import SimClock
from repro.sim.latency import LatencyModel, CpuCostModel, BACKENDS, get_latency_model
from repro.sim.scheduler import ParallelScheduler, ScheduledOp

__all__ = [
    "SimClock",
    "LatencyModel",
    "CpuCostModel",
    "BACKENDS",
    "get_latency_model",
    "ParallelScheduler",
    "ScheduledOp",
]
