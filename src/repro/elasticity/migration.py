"""Oblivious live partition migration: move the keyspace between layouts.

A :class:`TopologyMigration` copies every materialised key from the
deployment's current data layer (the *source*) into a freshly built layer at
the target topology (the *target generation*), while foreground epochs keep
running.  The copy is structured so that each storage server's adversary
trace stays workload-independent throughout:

* **Padded, fixed-shape batches.**  One copy step runs at each epoch
  barrier, immediately after the epoch's own write batch.  A step is one
  padded read batch on the source layer (the same per-partition quota and
  dummy padding as any foreground read batch) followed by one padded write
  batch plus flush on the target layer.  Which keys ride a batch — and how
  few real ones do — is invisible, exactly as for foreground batches.
* **Write-through replication.**  Keys the foreground rewrites mid-migration
  are re-enqueued with their committed values
  (:meth:`TopologyMigration.observe_writes`), so the copy never re-reads
  them and never publishes a stale value, no matter how the copy order
  interleaves with updates.
* **Barrier drain.**  When the remainder fits one batch, the migration
  finishes at that barrier with extra fixed-shape batches instead of
  trickling on, so a cutover always happens at a clean epoch boundary.

**What the adversary learns.**  Every batch has configuration-determined
shape, so the only new signal is the *number* of copy steps: it depends on
how many keys the deployment has materialised and on the foreground write
volume during the window — aggregate, data-independent quantities of the
kind epoch scheduling already reveals (cf. the paper's epoch-level leakage
discussion).  Key identities, values and access skew stay hidden.

The cutover itself — retiring the old proxy and installing the populated
target layer behind a new one — is the engine's job
(``ObladiEngine.reshard``); this module only moves data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import ObladiConfig
from repro.storage.cluster import StorageCluster

__all__ = ["MigrationReport", "TopologyMigration", "prepare_storage"]


def prepare_storage(storage, target: ObladiConfig):
    """The storage tier the target topology will run over.

    Reuses what is already deployed wherever possible: growing from a single
    server promotes it to a cluster's metadata server
    (:meth:`~repro.storage.cluster.StorageCluster.from_server`), growing a
    cluster appends fresh servers in place, and scaling *down* keeps the
    existing tier — departing servers simply stop receiving traffic once the
    cutover lands, which is also what keeps a mid-migration crash safe: the
    retiring layout's servers are never touched.
    """
    if target.storage_servers > 1:
        if isinstance(storage, StorageCluster):
            if storage.num_servers < target.storage_servers:
                storage.resize(target.storage_servers, latency=target.backend,
                               link_extra_rtt_ms=target.link_extra_rtt_ms)
            return storage
        return StorageCluster.from_server(storage, latency=target.backend,
                                          num_servers=target.storage_servers,
                                          link_extra_rtt_ms=target.link_extra_rtt_ms)
    return storage


@dataclass(frozen=True)
class MigrationReport:
    """Summary of one completed migration (``RunStats.migrations`` entry).

    ``initial_keys`` counts the keys enqueued when the migration began;
    ``copied_keys`` every key a copy batch published (re-copies included);
    ``write_through_keys`` the re-enqueues caused by foreground writes to
    keys already copied.  ``epochs`` is how many epoch barriers the window
    spanned, ``copy_batches`` the total padded batches (``drain_batches`` of
    which ran at the final barrier).
    """

    from_generation: int
    to_generation: int
    from_topology: Tuple[int, int, int]
    to_topology: Tuple[int, int, int]
    epochs: int
    copy_batches: int
    drain_batches: int
    initial_keys: int
    copied_keys: int
    write_through_keys: int


class TopologyMigration:
    """One in-flight background copy from a live proxy to a target layout.

    Construction builds the target generation's data layer over ``storage``
    (already resized by :func:`prepare_storage`) and snapshots the set of
    keys to move — the union of every source partition's key directory.
    The proxy then drives the migration: each ``run_epoch`` calls
    :meth:`step` at the barrier, and the epoch finaliser feeds committed
    writes through :meth:`observe_writes`.  When :attr:`done` turns true the
    engine may cut over; the populated layer is :attr:`layer`.
    """

    def __init__(self, proxy, target: ObladiConfig, storage) -> None:
        from repro.sharding import build_data_layer
        self.source = proxy.data_layer
        self.target_config = target
        self.storage = storage
        self.layer = build_data_layer(target, storage=storage,
                                      clock=proxy.clock,
                                      master_key=proxy.master_key)
        seeds = sorted({key for part in self.source.partitions
                        for key in part.directory.keys()})
        # Insertion-ordered copy queue: ``None`` means "read the committed
        # value from the source layer at copy time"; bytes mean the value is
        # already known (write-through from a foreground epoch).
        self.pending: Dict[str, Optional[bytes]] = {key: None for key in seeds}
        self.initial_keys = len(seeds)
        self.copied_keys = 0
        self.write_through_keys = 0
        self.copy_batches = 0
        self.drain_batches = 0
        self.epochs = 0
        self.done = not self.pending

    # ------------------------------------------------------------------ #
    # Foreground hooks (called by the proxy)
    # ------------------------------------------------------------------ #
    def observe_writes(self, items: Dict[str, bytes]) -> None:
        """Enqueue an epoch's committed write batch for (re-)copy.

        Values are carried into the queue directly, so a key that keeps
        being rewritten is always published at its *latest* committed value
        and never costs a source read.
        """
        if self.done:
            return
        for key, value in items.items():
            if key not in self.pending:
                self.write_through_keys += 1
            self.pending[key] = value

    def step(self, proxy, state=None) -> None:
        """Run this epoch barrier's copy work: one batch, or the final drain."""
        del proxy, state  # the hook signature mirrors the other epoch hooks
        if self.done:
            return
        self.epochs += 1
        self._copy_batch()
        while self.pending and len(self.pending) <= self._batch_capacity():
            before = len(self.pending)
            self.drain_batches += 1
            self._copy_batch()
            if len(self.pending) >= before:  # pragma: no cover - defensive
                break
        if not self.pending:
            self.done = True

    # ------------------------------------------------------------------ #
    # Copy mechanics
    # ------------------------------------------------------------------ #
    def _batch_capacity(self) -> int:
        """Keys one copy batch can move while both layers keep their quotas."""
        src = (self.source.config.partition_read_batch_size
               * self.source.num_partitions)
        dst = (self.layer.config.partition_write_batch_size
               * self.layer.num_partitions)
        return max(1, min(src, dst))

    def _select(self) -> Tuple[List[str], List[str]]:
        """Pick the next batch's keys without overflowing either layout.

        Greedy prefix of the queue, capped per *source* partition at the
        source's read quota (only keys that still need a read consume it)
        and per *target* partition at the target's write quota — so both
        layers run exactly their configured padded shapes.  Keys that do not
        fit stay queued for the next barrier.
        """
        src_quota = self.source.config.partition_read_batch_size
        dst_quota = self.layer.config.partition_write_batch_size
        src_fill = [0] * self.source.num_partitions
        dst_fill = [0] * self.layer.num_partitions
        capacity = dst_quota * len(dst_fill)
        selected: List[str] = []
        reads: List[str] = []
        for key, value in self.pending.items():
            dst = self.layer.partition_of(key)
            if dst_fill[dst] >= dst_quota:
                continue
            if value is None:
                src = self.source.partition_of(key)
                if src_fill[src] >= src_quota:
                    continue
                src_fill[src] += 1
                reads.append(key)
            dst_fill[dst] += 1
            selected.append(key)
            if len(selected) >= capacity:
                break
        return selected, reads

    def _copy_batch(self) -> None:
        """One padded source read batch + one padded target write batch."""
        self.copy_batches += 1
        selected, reads = self._select()
        # Always run both fixed-shape batches, even when nothing (or only
        # write-through values) rides them: a copy step's physical shape
        # must not depend on what the queue happens to hold.
        values = self.source.execute_read_batch(
            reads, self.source.config.read_batch_size)
        # The reads buffer bucket rewrites (reshuffles) exactly like
        # foreground batches do; flush them now — the epoch's own flush has
        # already run, and the next epoch asserts an empty buffer.
        self.source.flush()
        items: Dict[str, bytes] = {}
        for key in selected:
            value = self.pending[key]
            if value is None:
                value = values.get(key)
            if value:
                # Directory entries without a stored value (keys only ever
                # read) have nothing to copy: absent reads as None in the
                # target layout exactly as it did in the source.
                items[key] = value
        self.layer.begin_epoch()
        self.layer.execute_write_batch(items, self.layer.config.write_batch_size)
        self.layer.flush()
        for key in selected:
            del self.pending[key]
        self.copied_keys += len(selected)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def report(self) -> MigrationReport:
        """The migration's summary (stamped into ``RunStats.migrations``)."""
        source = self.source.config
        target = self.target_config
        return MigrationReport(
            from_generation=source.generation,
            to_generation=target.generation,
            from_topology=(source.shards, source.storage_servers,
                           source.proxy_workers),
            to_topology=(target.shards, target.storage_servers,
                         target.proxy_workers),
            epochs=self.epochs,
            copy_batches=self.copy_batches,
            drain_batches=self.drain_batches,
            initial_keys=self.initial_keys,
            copied_keys=self.copied_keys,
            write_through_keys=self.write_through_keys,
        )
