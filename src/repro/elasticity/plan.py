"""Reshard plans: declarative topology changes for a live deployment.

A :class:`ReshardPlan` names the topology knobs a live engine should move
to — ORAM ``shards``, ``storage_servers``, ``proxy_workers`` — leaving the
rest of the configuration untouched.  Resolving a plan against the current
:class:`~repro.core.config.ObladiConfig` yields the *target* configuration:
the same workload parameters, batch quotas, seeds and keys, with the
requested topology and — when data actually has to move — the next
topology *generation*, which namespaces the new layout's storage keys away
from the one it replaces (``ObladiConfig.generation_prefix``).

Plans are pure data: they perform no I/O and touch no engine.  The engine
surface that consumes them is ``TransactionEngine.reshard(plan)``; the
mechanics of executing one live are in :mod:`repro.elasticity.migration`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.core.config import ObladiConfig

__all__ = ["ReshardPlan"]


@dataclass(frozen=True)
class ReshardPlan:
    """A declarative live topology change for one Obladi deployment.

    Every field is optional; ``None`` means "keep the current value".  A
    plan must name at least one knob, and resolving it re-runs the full
    configuration validation, so an inconsistent target (for example more
    storage servers than ORAM partitions to place on them) fails loudly at
    plan time, before any data moves.

    >>> from repro.core.config import ObladiConfig
    >>> plan = ReshardPlan(shards=4)
    >>> target = plan.resolve(ObladiConfig())
    >>> (target.shards, target.generation)
    (4, 1)
    """

    shards: Optional[int] = None
    storage_servers: Optional[int] = None
    proxy_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.shards, self.storage_servers, self.proxy_workers) == (None, None, None):
            raise ValueError("a reshard plan must name at least one topology knob")
        for name in ("shards", "storage_servers", "proxy_workers"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be at least 1, got {value}")

    def target_topology(self, config: ObladiConfig) -> Tuple[int, int, int]:
        """The ``(shards, storage_servers, proxy_workers)`` the plan lands on."""
        return (self.shards if self.shards is not None else config.shards,
                self.storage_servers if self.storage_servers is not None
                else config.storage_servers,
                self.proxy_workers if self.proxy_workers is not None
                else config.proxy_workers)

    def is_noop(self, config: ObladiConfig) -> bool:
        """Whether the plan leaves ``config``'s topology exactly as it is."""
        return self.target_topology(config) == (
            config.shards, config.storage_servers, config.proxy_workers)

    def requires_migration(self, config: ObladiConfig) -> bool:
        """Whether executing the plan must move ORAM data between layouts.

        Changing ``shards`` re-partitions the keyspace and changing
        ``storage_servers`` re-homes partitions onto different hosts; both
        need the padded background copy of
        :class:`~repro.elasticity.migration.TopologyMigration`.  A pure
        ``proxy_workers`` change only re-slices *trusted* proxy state, which
        is re-built instantly at an epoch barrier — the adversary-visible
        data layer is handed over untouched.
        """
        shards, servers, _ = self.target_topology(config)
        return shards != config.shards or servers != config.storage_servers

    def resolve(self, config: ObladiConfig) -> ObladiConfig:
        """The target configuration this plan moves ``config`` to.

        The generation counter is bumped exactly when data must move
        (:meth:`requires_migration`): the new layout's storage keys then live
        under ``g<generation>/`` so both generations coexist on the same
        servers while the migration runs.  Workload parameters, batch
        quotas, cipher keys and seeds all carry over unchanged.
        """
        shards, servers, workers = self.target_topology(config)
        generation = config.generation + (1 if self.requires_migration(config) else 0)
        return replace(config, shards=shards, storage_servers=servers,
                       proxy_workers=workers, generation=generation)
