"""The autoscaling control loop: open-loop signals in, reshard plans out.

:class:`AutoscaleController` is an engine observer that closes the loop
between the open-loop load generator's admission signals — queue depth and
dropped arrivals, mirrored into each epoch's summary by
``record_open_loop_wave`` — and the live-resharding API
(``TransactionEngine.reshard``).  A :class:`AutoscalePolicy` gives it a
*ladder* of topologies; sustained pressure climbs a rung, sustained idleness
steps back down, and every actuation is recorded as an
:class:`AutoscaleDecision` and published on ``RunStats.controller`` when the
run ends.

Unlike every other observer in this codebase the controller is deliberately
**not** passive: issuing a reshard changes the run.  It is the one sanctioned
exception to the observer contract, and it preserves the contract's spirit —
attached to an engine whose policy never triggers (or to an engine without
``reshard`` support) it changes nothing and the run stays byte-identical.

Signals lag one wave: wave *N*'s queue counters are stamped onto its epoch
summary only after the wave returns, so the controller acting during wave
*N+1* reads wave *N*'s state.  That one-epoch delay is inherent to acting at
epoch barriers and is why the policy has ``patience`` (consecutive breaching
waves required) rather than reacting to single samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.audit.observer import EngineObserver
from repro.elasticity.plan import ReshardPlan

__all__ = ["AutoscaleController", "AutoscaleDecision", "AutoscalePolicy",
           "ControllerReport"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """When and where to scale: a topology ladder plus hysteresis knobs.

    ``ladder`` lists ``(shards, storage_servers, proxy_workers)`` rungs from
    smallest to largest provisioned capacity.  A wave whose (lagged) queue
    depth reaches ``queue_high`` — or that dropped arrivals — counts toward
    scaling up; a wave at or under ``queue_low`` counts toward scaling down;
    anything between resets both streaks.  ``patience`` is how many
    consecutive counting waves trigger an actuation, and ``cooldown`` how
    many waves the controller then ignores while the new topology settles
    (a migration window plus a few epochs is a good value).

    >>> policy = AutoscalePolicy(ladder=((1, 1, 1), (4, 1, 1)))
    >>> policy.rung_of((4, 1, 1))
    1
    """

    ladder: Tuple[Tuple[int, int, int], ...] = ((1, 1, 1), (4, 1, 1))
    queue_high: int = 32
    queue_low: int = 2
    patience: int = 2
    cooldown: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "ladder",
                           tuple(tuple(rung) for rung in self.ladder))
        if len(self.ladder) < 2:
            raise ValueError("an autoscale ladder needs at least two rungs")
        for rung in self.ladder:
            if len(rung) != 3 or any(v < 1 for v in rung):
                raise ValueError(f"malformed ladder rung {rung!r}; want "
                                 f"(shards, storage_servers, proxy_workers)")
            shards, servers, _ = rung
            if servers > shards:
                raise ValueError(f"ladder rung {rung!r} places {servers} "
                                 f"storage servers under {shards} shards")
        if self.queue_low >= self.queue_high:
            raise ValueError("queue_low must be below queue_high")
        if self.patience < 1:
            raise ValueError("patience must be at least 1 wave")
        if self.cooldown < 0:
            raise ValueError("cooldown cannot be negative")

    def rung_of(self, topology: Sequence[int]) -> int:
        """Ladder index of ``topology``, or ``-1`` when it is off-ladder."""
        try:
            return self.ladder.index(tuple(topology))
        except ValueError:
            return -1


@dataclass(frozen=True)
class AutoscaleDecision:
    """One actuation the controller issued (``RunStats.controller`` entry)."""

    wave: int
    action: str                       # "scale_up" | "scale_down"
    from_rung: int
    to_rung: int
    topology: Tuple[int, int, int]    # the rung moved to
    queue_depth: int                  # the (lagged) signal that triggered it
    dropped_delta: int                # arrivals dropped since the prior wave


@dataclass(frozen=True)
class ControllerReport:
    """What the control loop did over one run (``RunStats.controller``)."""

    decisions: Tuple[AutoscaleDecision, ...]
    waves: int
    final_topology: Optional[Tuple[int, int, int]]


class AutoscaleController(EngineObserver):
    """Watches open-loop pressure and reshards the engine along a ladder.

    Attach with ``engine.attach_observer(AutoscaleController(policy))`` or,
    more conveniently, build the engine from an ``EngineConfig`` carrying
    ``with_autoscale(policy)``.  Engines that do not support resharding are
    observed but never actuated.
    """

    def __init__(self, policy: AutoscalePolicy) -> None:
        self.policy = policy
        self.decisions: List[AutoscaleDecision] = []
        self.engine = None
        self._wave = 0
        self._high_streak = 0
        self._low_streak = 0
        self._cooldown = 0
        self._rung = 0
        self._last_dropped = 0

    def on_attach(self, engine) -> None:
        """Bind to ``engine`` and locate its topology on the ladder."""
        self.engine = engine
        config = getattr(getattr(engine, "proxy", None), "config", None)
        if config is not None:
            rung = self.policy.rung_of((config.shards, config.storage_servers,
                                        config.proxy_workers))
            self._rung = max(0, rung)

    def on_wave(self, engine, results) -> None:
        """Evaluate the lagged admission signal; actuate when streaks mature."""
        del results
        self._wave += 1
        if not getattr(engine, "supports_reshard", False):
            return
        signal = self._signal(engine)
        if signal is None:
            return
        depth, dropped = signal
        dropped_delta = max(0, dropped - self._last_dropped)
        self._last_dropped = dropped
        if getattr(engine, "reshard_in_flight", False):
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if depth >= self.policy.queue_high or dropped_delta > 0:
            self._high_streak += 1
            self._low_streak = 0
        elif depth <= self.policy.queue_low:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0
        if (self._high_streak >= self.policy.patience
                and self._rung + 1 < len(self.policy.ladder)):
            self._actuate(engine, self._rung + 1, "scale_up", depth, dropped_delta)
        elif self._low_streak >= self.policy.patience and self._rung > 0:
            self._actuate(engine, self._rung - 1, "scale_down", depth, dropped_delta)

    def on_run_end(self, engine, stats) -> None:
        """Publish the run's decision record on ``stats.controller``."""
        config = getattr(getattr(engine, "proxy", None), "config", None)
        final = None if config is None else (
            config.shards, config.storage_servers, config.proxy_workers)
        stats.controller = ControllerReport(decisions=tuple(self.decisions),
                                            waves=self._wave,
                                            final_topology=final)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _signal(self, engine) -> Optional[Tuple[int, int]]:
        """Wave *N-1*'s ``(queue_depth, cumulative_dropped)``, if stamped yet.

        The open-loop driver stamps a wave's counters onto its epoch summary
        *after* the wave's observers ran, so the freshest stamped summary is
        the previous one.  Right after a cutover the new proxy's summary
        list is still short and the controller simply skips a wave or two —
        a natural settling period on top of ``cooldown``.
        """
        summaries = getattr(getattr(engine, "proxy", None),
                            "epoch_summaries", None)
        if not summaries or len(summaries) < 2:
            return None
        summary = summaries[-2]
        return summary.queue_depth, summary.arrivals_dropped

    def _actuate(self, engine, rung: int, action: str, depth: int,
                 dropped_delta: int) -> None:
        shards, servers, workers = self.policy.ladder[rung]
        engine.reshard(ReshardPlan(shards=shards, storage_servers=servers,
                                   proxy_workers=workers))
        self.decisions.append(AutoscaleDecision(
            wave=self._wave, action=action, from_rung=self._rung,
            to_rung=rung, topology=(shards, servers, workers),
            queue_depth=depth, dropped_delta=dropped_delta))
        self._rung = rung
        self._high_streak = 0
        self._low_streak = 0
        self._cooldown = self.policy.cooldown
