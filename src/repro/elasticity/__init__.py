"""Elastic topologies: oblivious live resharding plus an autoscaling loop.

A statically provisioned Obladi deployment wastes money at night and drops
arrivals under a flash crowd.  This package makes the three topology knobs —
ORAM ``shards``, ``storage_servers``, ``proxy_workers`` — movable *while the
system runs*, without weakening the per-node obliviousness story:

* :class:`ReshardPlan` (:mod:`repro.elasticity.plan`) names a target
  topology declaratively; ``TransactionEngine.reshard(plan)`` stages it.
* :class:`TopologyMigration` (:mod:`repro.elasticity.migration`) moves the
  keyspace into a next-generation data layer as padded, fixed-shape batches
  riding the foreground epoch barriers; the cutover retires the old proxy
  at a clean barrier and writes a full-checkpoint fence so crash recovery
  lands on exactly one side.
* :class:`AutoscaleController` (:mod:`repro.elasticity.controller`) closes
  the loop: open-loop pressure signals in, reshard plans out, every
  decision recorded on ``RunStats.controller``.
* :class:`DiurnalArrivals` / :class:`FlashCrowdArrivals`
  (:mod:`repro.elasticity.arrivals`) provide the time-varying load shapes
  the controller is evaluated under.

See ``docs/ARCHITECTURE.md`` — "Elasticity" — for the full walkthrough,
including the migration fence diagram and what the adversary does (and does
not) learn from a migration window.
"""

from repro.elasticity.arrivals import DiurnalArrivals, FlashCrowdArrivals
from repro.elasticity.controller import (AutoscaleController, AutoscaleDecision,
                                         AutoscalePolicy, ControllerReport)
from repro.elasticity.migration import (MigrationReport, TopologyMigration,
                                        prepare_storage)
from repro.elasticity.plan import ReshardPlan

__all__ = [
    "AutoscaleController",
    "AutoscaleDecision",
    "AutoscalePolicy",
    "ControllerReport",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "MigrationReport",
    "ReshardPlan",
    "TopologyMigration",
    "prepare_storage",
]
