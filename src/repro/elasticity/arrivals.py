"""Time-varying arrival processes for elasticity experiments.

The open-loop driver (:func:`repro.api.openloop.run_open_loop`) accepts any
:class:`~repro.api.openloop.ArrivalProcess`; the stationary ones live there.
This module adds the two non-stationary shapes the autoscaling evaluation
exercises:

* :class:`DiurnalArrivals` — a smooth day/night cycle: the rate follows a
  raised cosine between ``base_tps`` and ``peak_tps`` with the given period.
* :class:`FlashCrowdArrivals` — a piecewise-constant base rate with one
  rectangular spike (a flash crowd) at a known offset.

Both draw exponential gaps at the instantaneous rate (a rate-modulated
renewal process — the standard simulation shorthand for a non-homogeneous
Poisson stream, exact in the piecewise-constant case away from the
boundaries).  Both are frozen and restartable: every ``intervals()`` call
re-seeds its own generator, so two engines fed the same process object see
identical arrival times.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from repro.api.openloop import ArrivalProcess

__all__ = ["DiurnalArrivals", "FlashCrowdArrivals"]


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """A sinusoidal day/night load cycle.

    The instantaneous rate at time ``t`` (ms since the run began) is
    ``base + (peak - base) * (1 - cos(2*pi*(t + phase_ms)/period_ms)) / 2``:
    it starts at ``base_tps`` (with ``phase_ms=0``), crests at ``peak_tps``
    half a period in, and returns.

    >>> process = DiurnalArrivals(base_tps=10.0, peak_tps=50.0,
    ...                           period_ms=60_000.0, seed=7)
    >>> first, again = process.intervals(), process.intervals()
    >>> [round(next(first), 3) for _ in range(2)] == \\
    ...     [round(next(again), 3) for _ in range(2)]
    True
    """

    base_tps: float
    peak_tps: float
    period_ms: float
    phase_ms: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.base_tps > 0 or not self.peak_tps > 0:
            raise ValueError("arrival rates must be positive")
        if self.peak_tps < self.base_tps:
            raise ValueError("peak_tps cannot be below base_tps")
        if not self.period_ms > 0:
            raise ValueError("period_ms must be positive")

    def rate_at(self, now_ms: float) -> float:
        """Instantaneous arrival rate (tps) at ``now_ms``."""
        swing = 0.5 * (1.0 - math.cos(
            2.0 * math.pi * (now_ms + self.phase_ms) / self.period_ms))
        return self.base_tps + (self.peak_tps - self.base_tps) * swing

    def intervals(self) -> Iterator[float]:
        """Exponential gaps at the instantaneous rate (restartable)."""
        rng = random.Random(self.seed)
        now_ms = 0.0
        while True:
            gap = rng.expovariate(self.rate_at(now_ms) / 1000.0)
            now_ms += gap
            yield gap


@dataclass(frozen=True)
class FlashCrowdArrivals(ArrivalProcess):
    """A steady base rate with one rectangular flash-crowd spike.

    Arrivals run at ``base_tps`` except during
    ``[spike_start_ms, spike_start_ms + spike_duration_ms)``, where they run
    at ``spike_tps``.

    >>> process = FlashCrowdArrivals(base_tps=5.0, spike_tps=80.0,
    ...                              spike_start_ms=1000.0,
    ...                              spike_duration_ms=500.0)
    >>> process.rate_at(0.0), process.rate_at(1200.0), process.rate_at(2000.0)
    (5.0, 80.0, 5.0)
    """

    base_tps: float
    spike_tps: float
    spike_start_ms: float
    spike_duration_ms: float
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.base_tps > 0 or not self.spike_tps > 0:
            raise ValueError("arrival rates must be positive")
        if self.spike_start_ms < 0 or self.spike_duration_ms < 0:
            raise ValueError("the spike window cannot be negative")

    def rate_at(self, now_ms: float) -> float:
        """Instantaneous arrival rate (tps) at ``now_ms``."""
        in_spike = (self.spike_start_ms <= now_ms
                    < self.spike_start_ms + self.spike_duration_ms)
        return self.spike_tps if in_spike else self.base_tps

    def intervals(self) -> Iterator[float]:
        """Exponential gaps at the instantaneous rate (restartable)."""
        rng = random.Random(self.seed)
        now_ms = 0.0
        while True:
            gap = rng.expovariate(self.rate_at(now_ms) / 1000.0)
            now_ms += gap
            yield gap
