"""One trusted proxy worker: a key-range slice of MVTSO state and cache.

A :class:`ProxyWorker` owns everything the trusted tier keeps *per key* —
the MVTSO version chains, the epoch version cache's base values, and the
(always-cold) cache-side chain store that mirrors the single proxy's
separate ``VersionCache.store`` — for the slice of the keyspace that hashes
to it.  Workers do not talk to each other: all routing and cross-worker
coordination (the epoch-barrier commit protocol) is the
:class:`~repro.proxytier.coordinator.ProxyCoordinator`'s job, so each
worker's state is touched only through keys it owns, exactly like an ORAM
partition is touched only through its own namespace.

See ``docs/ARCHITECTURE.md`` — "Distributed proxy tier" — for how workers
compose with the data layer's partitions and the storage servers.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.concurrency.transaction import TransactionRecord, TransactionStatus
from repro.concurrency.versions import VersionStore


class ProxyWorker:
    """A trusted concurrency-control lane owning one slice of the keyspace.

    The worker records, per transaction, which uncommitted writers the
    transaction observed *through this worker's chains* (``txn_deps``).
    Because every read is routed to exactly one worker, those per-worker
    dependency sets partition the transaction's global dependency set — the
    property that makes the epoch barrier's unanimous vote equivalent to the
    single proxy's global commit check.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        #: This worker's slice of the MVTSO version chains.
        self.mvtso_store = VersionStore()
        #: This worker's slice of the epoch cache's chain store (the single
        #: proxy keeps the cache's store distinct from MVTSO's; the sharded
        #: tier mirrors that structure slice-for-slice).
        self.cache_store = VersionStore()
        #: This worker's slice of the epoch cache's base values.
        self.base_values: Dict[str, Optional[bytes]] = {}

        # Lifetime concurrency-control operation counters.
        self.stats_reads = 0
        self.stats_writes = 0
        self.stats_votes = 0

        # Operations performed since the coordinator last charged CPU; the
        # coordinator drains this into one schedulable lane duration.
        self.pending_ops = 0

        # Per-epoch vote bookkeeping.
        self.txn_deps: Dict[int, Set[int]] = {}
        self.txn_touched: Set[int] = set()

        #: Simulated CPU this worker's lane has been charged, lifetime.
        self.cpu_ms = 0.0

    # ------------------------------------------------------------------ #
    # Operation accounting (called by the sharded MVTSO manager)
    # ------------------------------------------------------------------ #
    def note_read(self, txn_id: int, writer_txn_id: Optional[int]) -> None:
        """Record one version-chain read routed to this worker.

        ``writer_txn_id`` is set when the read observed an uncommitted
        version: the write-read dependency is then attributed to this worker
        for the epoch barrier's vote.
        """
        self.stats_reads += 1
        self.pending_ops += 1
        self.txn_touched.add(txn_id)
        if writer_txn_id is not None:
            self.txn_deps.setdefault(txn_id, set()).add(writer_txn_id)

    def note_write(self, txn_id: int) -> None:
        """Record one version install (or rejected late write) on this worker."""
        self.stats_writes += 1
        self.pending_ops += 1
        self.txn_touched.add(txn_id)

    def take_pending_ops(self) -> int:
        """Drain and return the operations not yet charged as lane CPU."""
        pending = self.pending_ops
        self.pending_ops = 0
        return pending

    # ------------------------------------------------------------------ #
    # Epoch barrier
    # ------------------------------------------------------------------ #
    def participates(self, txn_id: int) -> bool:
        """Whether this worker holds any of the transaction's reads/writes."""
        return txn_id in self.txn_touched

    def vote(self, txn_id: int,
             transactions: Dict[int, TransactionRecord]) -> bool:
        """This worker's commit vote for ``txn_id`` (2PC prepare phase).

        The worker votes abort iff some uncommitted writer the transaction
        observed *through this worker's chains* has aborted — its local
        fragment of exactly the check
        :meth:`repro.concurrency.mvtso.MVTSOManager.can_commit` runs
        globally on the single proxy.
        """
        self.stats_votes += 1
        self.pending_ops += 1
        for dep_id in self.txn_deps.get(txn_id, ()):
            dep = transactions.get(dep_id)
            if dep is not None and dep.status is TransactionStatus.ABORTED:
                return False
        return True

    def reset_epoch_state(self) -> None:
        """Clear per-epoch vote bookkeeping (chains are cleared via the store)."""
        self.txn_deps.clear()
        self.txn_touched.clear()
