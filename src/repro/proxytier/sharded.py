"""Sharded MVTSO and version cache: the trusted tier split across workers.

Three façades make ``repro.concurrency.mvtso`` and
``repro.core.version_cache`` run unchanged over per-worker state:

* :class:`ShardedVersionStore` presents the :class:`VersionStore` interface
  while routing every per-key operation to the owning worker's slice;
* :class:`ShardedVersionCache` does the same for the epoch cache's base
  values (and mirrors the single proxy's *separate* cache-side chain store
  slice-for-slice, so the sharded tier reproduces the single proxy's read
  paths exactly);
* :class:`ShardedMVTSOManager` is an :class:`MVTSOManager` whose store is
  sharded and which additionally (a) attributes every operation and every
  observed write-read dependency to the owning worker and (b) turns the
  commit check into the epoch barrier's unanimous vote
  (:meth:`ShardedMVTSOManager.prepare_epoch`).

Timestamps remain global — the coordinator assigns them exactly as the
single proxy does — so the serialization order is unchanged; only *where*
each chain lives and *who* performs each check moves.  See
``docs/ARCHITECTURE.md`` — "Distributed proxy tier".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.concurrency.mvtso import MVTSOManager
from repro.concurrency.transaction import TransactionRecord, TransactionStatus
from repro.concurrency.versions import Version, VersionChain, VersionStore
from repro.core.version_cache import VersionCache
from repro.proxytier.worker import ProxyWorker

#: Maps an application key to the index of its owning proxy worker.
KeyRouter = Callable[[str], int]


class ShardedVersionStore(VersionStore):
    """The :class:`VersionStore` interface over per-worker chain slices.

    Constructed over any list of slice stores (the coordinator builds one
    over the workers' MVTSO slices and another over their cache-side
    slices).  Aggregate queries merge across slices; per-key operations
    route to exactly one.
    """

    def __init__(self, stores: Sequence[VersionStore], router: KeyRouter) -> None:
        self._stores = list(stores)
        self._router = router

    def slice_for(self, key: str) -> VersionStore:
        """The slice store owning ``key``."""
        return self._stores[self._router(key)]

    def chain(self, key: str) -> VersionChain:
        """Get-or-create the chain for ``key`` on its owning slice."""
        return self.slice_for(key).chain(key)

    def get_chain(self, key: str) -> Optional[VersionChain]:
        """The chain for ``key`` if its owning slice has one."""
        return self.slice_for(key).get_chain(key)

    def keys(self) -> List[str]:
        """Sorted union of every slice's chain keys."""
        merged: List[str] = []
        for store in self._stores:
            merged.extend(store.keys())
        return sorted(merged)

    def __contains__(self, key: str) -> bool:
        return key in self.slice_for(key)

    def __len__(self) -> int:
        return sum(len(store) for store in self._stores)

    def items(self) -> Iterator[Tuple[str, VersionChain]]:
        """Chains of every slice, slice by slice."""
        for store in self._stores:
            yield from store.items()

    def clear(self) -> None:
        """Clear every slice (epoch reset)."""
        for store in self._stores:
            store.clear()

    def latest_committed_values(self) -> Dict[str, Optional[bytes]]:
        """Merged map of key to latest committed value across slices."""
        out: Dict[str, Optional[bytes]] = {}
        for store in self._stores:
            out.update(store.latest_committed_values())
        return out

    def drop_aborted(self) -> int:
        """Drop aborted versions on every slice; returns total removed."""
        return sum(store.drop_aborted() for store in self._stores)


class ShardedVersionCache(VersionCache):
    """The epoch version cache with base values owned per worker.

    Behaviour is identical to :class:`VersionCache`; only ownership moves —
    ``install_base``/``base_value``/``has_base`` route to the owning
    worker's slice, and ``reset`` clears every worker's slice.  The cache's
    chain ``store`` is a :class:`ShardedVersionStore` over the workers'
    *cache-side* slices, which — exactly like the single proxy's separate
    ``VersionCache.store`` — never receives the MVTSO chains.
    """

    def __init__(self, workers: Sequence[ProxyWorker], router: KeyRouter) -> None:
        super().__init__(store=ShardedVersionStore(
            [worker.cache_store for worker in workers], router))
        self._workers = list(workers)
        self._router = router

    def _slice(self, key: str) -> Dict[str, Optional[bytes]]:
        return self._workers[self._router(key)].base_values

    def has_base(self, key: str) -> bool:
        """Whether the owning worker caches the pre-epoch value of ``key``."""
        return key in self._slice(key)

    def base_value(self, key: str) -> Optional[bytes]:
        """The owning worker's cached base value (``None`` when absent)."""
        return self._slice(key).get(key)

    def install_base(self, key: str, value: Optional[bytes]) -> None:
        """Install a fetched base value on the owning worker's slice."""
        self._slice(key)[key] = value
        self._pending_fetch.discard(key)

    def reset(self) -> None:
        """Drop all epoch state on every worker (between epochs / on aborts)."""
        self.store.clear()
        for worker in self._workers:
            worker.base_values.clear()
        self._pending_fetch.clear()

    def stats(self) -> Dict[str, int]:
        """Aggregate cache statistics across every worker's slice."""
        return {
            "base_values": sum(len(w.base_values) for w in self._workers),
            "version_chains": len(self.store),
            "pending_fetches": len(self._pending_fetch),
        }


@dataclass
class BarrierStats:
    """Accumulated epoch-barrier (2PC prepare) accounting.

    One *vote* is one worker deciding commit/abort for one transaction it
    participated in; a transaction is *vetoed* when any participant votes
    abort (the coordinator then cascades the abort exactly as the single
    proxy would have).
    """

    epochs: int = 0
    transactions_voted: int = 0
    commit_votes: int = 0
    abort_votes: int = 0
    vetoed: int = 0


class ShardedMVTSOManager(MVTSOManager):
    """MVTSO with per-worker chain ownership and epoch-barrier voting.

    Reads and writes go through the base implementation — the sharded store
    routes each chain to its owner — and are attributed to the owning worker
    for CPU-lane accounting.  At the epoch boundary the coordinator calls
    :meth:`prepare_epoch`: every participating worker votes commit/abort per
    transaction, and :meth:`can_commit` honours the memoized unanimous
    decision.  Because each dependency is attributed to exactly the worker
    whose chain produced it, the unanimous vote equals the single proxy's
    global check — serializability is preserved across slices.
    """

    def __init__(self, workers: Sequence[ProxyWorker], router: KeyRouter) -> None:
        super().__init__()
        self.workers = list(workers)
        self._router = router
        self.store = ShardedVersionStore(
            [worker.mvtso_store for worker in workers], router)
        self.barrier_stats = BarrierStats()
        self._vote_memo: Dict[int, bool] = {}

    def worker_for(self, key: str) -> ProxyWorker:
        """The worker owning ``key``'s slice of the trusted state."""
        return self.workers[self._router(key)]

    def read(self, txn: TransactionRecord, key: str) -> Tuple[Optional[bytes], Optional[int]]:
        """MVTSO read routed to the owning worker (dependency attributed there)."""
        value, writer_txn_id = super().read(txn, key)
        self.worker_for(key).note_read(txn.txn_id, writer_txn_id)
        return value, writer_txn_id

    def write(self, txn: TransactionRecord, key: str, value: Optional[bytes]) -> Version:
        """MVTSO write routed to the owning worker.

        The write is counted against the worker even when it is rejected as
        a late write: the conflict check was that worker's work.
        """
        self.worker_for(key).note_write(txn.txn_id)
        return super().write(txn, key, value)

    # ------------------------------------------------------------------ #
    # Epoch barrier (lightweight 2PC over the epoch boundary)
    # ------------------------------------------------------------------ #
    def prepare_epoch(self, records: Sequence[TransactionRecord]) -> Dict[int, bool]:
        """Prepare phase: collect every participant worker's vote per txn.

        For each transaction that requested commit, every worker it touched
        votes on its local dependency fragment; the memoized decision is the
        unanimous AND.  Returns the decision map (txn id → commit?).
        """
        self.barrier_stats.epochs += 1
        for record in records:
            if record.status is not TransactionStatus.COMMIT_REQUESTED:
                continue
            decision = True
            for worker in self.workers:
                if not worker.participates(record.txn_id):
                    continue
                if worker.vote(record.txn_id, self.transactions):
                    self.barrier_stats.commit_votes += 1
                else:
                    self.barrier_stats.abort_votes += 1
                    decision = False
            self.barrier_stats.transactions_voted += 1
            if not decision:
                self.barrier_stats.vetoed += 1
            self._vote_memo[record.txn_id] = decision
        return dict(self._vote_memo)

    def can_commit(self, txn: TransactionRecord) -> bool:
        """Commit check honouring the barrier's memoized unanimous vote.

        A veto is final (an aborted dependency never un-aborts); a memoized
        commit is still re-validated against the global state, so cascades
        that happen *after* the prepare phase (write-batch shedding) are
        always respected.
        """
        if self._vote_memo.get(txn.txn_id) is False:
            return False
        return super().can_commit(txn)

    def reset_epoch_state(self) -> None:
        """Clear chains (all slices), votes and per-worker epoch bookkeeping."""
        super().reset_epoch_state()
        self._vote_memo.clear()
        for worker in self.workers:
            worker.reset_epoch_state()
