"""Distributed proxy tier: the trusted MVTSO/version-cache layer, sharded.

PRs 2–3 scaled the *untrusted* half of Obladi (partitioned ORAM, distinct
storage servers); this package scales the *trusted* half.  N
:class:`ProxyWorker` slices each own a key range of the MVTSO version store
and the epoch version cache (same sha256 partition map as
``repro.sharding``), and a :class:`ProxyCoordinator` admits transactions,
routes every read/write to the owning worker, charges concurrency-control
CPU as parallel worker lanes on the simulated clock, and runs a lightweight
2PC over the epoch boundary — every participating worker votes commit/abort
per transaction — before merging the epoch's batches into the existing
``DataLayer`` fan-out.

Selected by ``ObladiConfig.proxy_workers`` /
``EngineConfig.with_proxy_workers(N)``; ``proxy_workers=1`` builds the
plain :class:`~repro.core.proxy.ObladiProxy` (byte-identical to the seed).
The physical request schedule is unchanged by worker count, so all
per-partition and per-server obliviousness properties carry over; the props
suite asserts exactly that.  See ``docs/ARCHITECTURE.md`` — "Distributed
proxy tier" — for the worker/coordinator diagram and the commit-protocol
walkthrough.
"""

from repro.proxytier.coordinator import (CcLaneStats, ProxyCoordinator,
                                         build_proxy, worker_for_key)
from repro.proxytier.sharded import (BarrierStats, ShardedMVTSOManager,
                                     ShardedVersionCache, ShardedVersionStore)
from repro.proxytier.worker import ProxyWorker

__all__ = [
    "ProxyWorker",
    "ProxyCoordinator",
    "ShardedMVTSOManager",
    "ShardedVersionCache",
    "ShardedVersionStore",
    "BarrierStats",
    "CcLaneStats",
    "build_proxy",
    "worker_for_key",
]
