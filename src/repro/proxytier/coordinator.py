"""The proxy coordinator: admission, routing and the epoch commit barrier.

:class:`ProxyCoordinator` is the sharded trusted tier's front end.  It keeps
the single proxy's externally observable behaviour — same admission order,
same global timestamps, same epoch shape, same batch quotas, same data-layer
fan-out — while the MVTSO version store and the epoch version cache are
owned by N :class:`~repro.proxytier.worker.ProxyWorker` slices:

* every read/write a transaction issues is routed to the owning worker
  (sha256 key hash, the same partition map ``repro.sharding`` uses);
* each round's concurrency-control CPU is charged as *parallel worker
  lanes* on the shared :class:`~repro.sim.clock.SimClock` — one lane per
  worker, makespan via :class:`~repro.sim.scheduler.ParallelScheduler` —
  instead of the single proxy's serial charge;
* at the epoch boundary the coordinator runs a lightweight 2PC: every
  participating worker votes commit/abort per transaction
  (:meth:`~repro.proxytier.sharded.ShardedMVTSOManager.prepare_epoch`),
  and only unanimously approved transactions commit, which keeps the
  committed history serializable across slices;
* per-worker epoch batches merge into the *existing* data-layer fan-out:
  the physical schedule the storage tier observes is byte-identical to the
  single proxy's, so every per-partition/per-server obliviousness argument
  carries over unchanged.

``proxy_workers=1`` deployments never see this class —
:func:`build_proxy` (and therefore ``create_engine``/crash recovery)
constructs the plain :class:`~repro.core.proxy.ObladiProxy`, the same seam
discipline ``SingleOramDataLayer`` follows on the data path.  See
``docs/ARCHITECTURE.md`` — "Distributed proxy tier".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import ObladiConfig
from repro.core.proxy import ObladiProxy
from repro.sharding.data_layer import key_partition
from repro.sim.scheduler import ParallelScheduler, ScheduledOp
from repro.proxytier.sharded import ShardedMVTSOManager, ShardedVersionCache
from repro.proxytier.worker import ProxyWorker


def worker_for_key(key: str, proxy_workers: int, partition_seed: int = 0) -> int:
    """Index of the proxy worker owning ``key``'s trusted state.

    The same keyed sha256 partition map the data layer uses
    (:func:`repro.sharding.key_partition`), applied to the worker count: the
    mapping is deterministic across proxy crashes and independent of the
    ORAM partition map unless the counts happen to match.
    """
    return key_partition(key, proxy_workers, partition_seed)


@dataclass
class CcLaneStats:
    """Accumulated worker-lane CPU accounting across CC charges.

    ``serial_ms`` is the serial bound of the tier's own operations — the sum
    over workers, i.e. what *one* lane would have taken for everything the
    workers did, barrier votes included.  (A true single proxy pays slightly
    less than this bound: it runs the same chain reads/inserts but its
    commit check is unpriced, since it needs no cross-worker barrier.)
    ``lane_ms`` is what the coordinator actually charged (max over worker
    lanes per charge); their ratio is the realised lane speedup.
    """

    charges: int = 0
    serial_ms: float = 0.0
    lane_ms: float = 0.0

    def record(self, durations: List[float], makespan_ms: float) -> None:
        """Fold one charge's per-worker ``durations`` into the totals."""
        self.charges += 1
        self.serial_ms += sum(durations)
        self.lane_ms += makespan_ms

    @property
    def speedup(self) -> float:
        """Serial-to-lane CPU ratio (1.0 when nothing was charged)."""
        if self.lane_ms <= 0:
            return 1.0
        return self.serial_ms / self.lane_ms


class ProxyCoordinator(ObladiProxy):
    """Sharded trusted proxy tier behind the :class:`ObladiProxy` surface.

    Drop-in for the single proxy: engines, the recovery manager, benchmarks
    and the harness drive it through the exact same methods.  Construction
    mirrors :class:`~repro.core.proxy.ObladiProxy`; ``config.proxy_workers``
    decides how many worker slices the trusted state is sharded across.
    """

    def __init__(self, config: Optional[ObladiConfig] = None,
                 storage=None, clock=None, recovery_manager=None,
                 master_key: Optional[bytes] = None, data_layer=None) -> None:
        super().__init__(config, storage=storage, clock=clock,
                         recovery_manager=recovery_manager, master_key=master_key,
                         data_layer=data_layer)
        count = self.config.proxy_workers
        self.workers = [ProxyWorker(index) for index in range(count)]
        self._worker_cache: Dict[str, int] = {}
        self.mvtso = ShardedMVTSOManager(self.workers, self.worker_of)
        # Re-point the whole data path at the worker-owned cache: the data
        # layer and each partition's handler install fetched base values
        # straight into the owning worker's slice.
        cache = ShardedVersionCache(self.workers, self.worker_of)
        self.data_layer.cache = cache
        for part in self.data_layer.partitions:
            part.handler.cache = cache
        self._lane_scheduler = ParallelScheduler(max(1, count))
        self.lane_stats = CcLaneStats()
        self._worker_ops_before = [(0, 0)] * count

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def worker_of(self, key: str) -> int:
        """Index of the worker owning ``key`` (cached sha256 hash)."""
        index = self._worker_cache.get(key)
        if index is None:
            index = worker_for_key(key, self.config.proxy_workers,
                                   self.config.partition_seed)
            self._worker_cache[key] = index
        return index

    # ------------------------------------------------------------------ #
    # Epoch execution overrides
    # ------------------------------------------------------------------ #
    def run_epoch(self, max_transactions: Optional[int] = None):
        """Execute one epoch; additionally snapshots per-worker op counters."""
        self._worker_ops_before = [(w.stats_reads, w.stats_writes)
                                   for w in self.workers]
        return super().run_epoch(max_transactions)

    def _summary_extras(self) -> Dict[str, tuple]:
        """Per-worker ``(cc_reads, cc_writes)`` deltas for the epoch summary."""
        return {"worker_ops": tuple(
            (worker.stats_reads - reads_before, worker.stats_writes - writes_before)
            for worker, (reads_before, writes_before)
            in zip(self.workers, self._worker_ops_before))}

    def _charge_cc(self) -> None:
        """Charge pending CC operations as parallel worker lanes.

        Each worker's drained operations form one schedulable unit of lane
        work; with one lane per worker the makespan is the slowest worker —
        the trusted-tier analogue of the data layer's partition-batch
        fan-out.  A zero per-op cost drains the counters without touching
        the clock, keeping ``cc_op_ms=0`` runs byte-identical to the single
        proxy.
        """
        cost = self.config.cost_model.cc_op_ms
        pending = [worker.take_pending_ops() for worker in self.workers]
        if cost <= 0 or not any(pending):
            return
        durations = [ops * cost for ops in pending]
        lane_ops = [ScheduledOp(op_id=index, duration_ms=duration,
                                tag=f"proxy-worker:{index}")
                    for index, duration in enumerate(durations) if duration > 0]
        makespan = self._lane_scheduler.makespan_ms(lane_ops)
        self.lane_stats.record(durations, makespan)
        for worker, duration in zip(self.workers, durations):
            worker.cpu_ms += duration
        if makespan > 0:
            self.clock.advance(makespan)
            self.cc_cpu_ms += makespan

    def _finalize_epoch(self, admitted, state) -> None:
        """Run the epoch barrier (2PC prepare), then finalise as usual.

        Votes are collected — and counted as worker lane work — before the
        base finaliser's commit pass; the memoized unanimous decisions feed
        its ``can_commit`` checks, and the base finaliser's entry charge
        prices the barrier into the epoch's clock time.
        """
        self.mvtso.prepare_epoch([active.record for active in admitted])
        super()._finalize_epoch(admitted, state)

    def _prepare_repaired(self, records) -> None:
        """Vote repaired transactions through the epoch barrier.

        A repaired transaction runs under a fresh MVTSO record created
        after the epoch's main prepare round, so the coordinator holds a
        second, smaller prepare for exactly those records: the workers that
        served its re-execution vote on it, and the memoized decision feeds
        the commit pass like any other transaction's.
        """
        self.mvtso.prepare_epoch(records)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def worker_op_totals(self) -> List[Tuple[int, int]]:
        """Lifetime ``(cc_reads, cc_writes)`` per proxy worker."""
        return [(worker.stats_reads, worker.stats_writes)
                for worker in self.workers]

    @property
    def barrier_stats(self):
        """Epoch-barrier vote accounting (see :class:`BarrierStats`)."""
        return self.mvtso.barrier_stats


def build_proxy(config: Optional[ObladiConfig] = None, storage=None, clock=None,
                recovery_manager=None, master_key: Optional[bytes] = None,
                data_layer=None):
    """Construct the proxy the configuration asks for.

    ``proxy_workers=1`` (the default) returns the plain
    :class:`~repro.core.proxy.ObladiProxy` — byte-identical to the seed
    system, the same way ``build_data_layer`` returns the single-tree layer
    for ``shards=1``.  Anything larger returns a :class:`ProxyCoordinator`.
    ``data_layer`` injects an already-populated layer instead of building a
    fresh one — the reshard cutover (``repro.elasticity``) hands the new
    proxy the layer its migration filled.
    """
    config = config if config is not None else ObladiConfig()
    cls = ObladiProxy if config.proxy_workers <= 1 else ProxyCoordinator
    return cls(config, storage=storage, clock=clock,
               recovery_manager=recovery_manager, master_key=master_key,
               data_layer=data_layer)
