"""Shared infrastructure for the closed-loop baseline executors.

Both baselines execute transaction programs (the same generator programs the
Obladi proxy runs) in a closed loop with ``C`` concurrent client slots over a
simulated clock:

* each client slot runs one transaction at a time and advances its own local
  time as its operations incur storage round trips;
* the proxy's CPU is a shared, serial resource: every operation also charges
  a small CPU cost to a global accumulator, and the run's makespan is the
  larger of "last client finished" and "total CPU demanded" — this is how
  the ``dummy``/LAN configurations become CPU-bound while WAN configurations
  stay I/O-bound, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.client import TransactionResult


@dataclass
class BaselineRunResult:
    """Aggregate outcome of a closed-loop baseline run."""

    committed: int = 0
    aborted: int = 0
    retries: int = 0
    makespan_ms: float = 0.0
    cpu_ms: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    results: List[TransactionResult] = field(default_factory=list)

    @property
    def throughput_tps(self) -> float:
        """Committed transactions per simulated second."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.committed * 1000.0 / self.makespan_ms

    @property
    def average_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    @property
    def p95_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(0.95 * len(ordered)))
        return ordered[index]

    @property
    def abort_rate(self) -> float:
        total = self.committed + self.aborted
        return self.aborted / total if total else 0.0


@dataclass
class ClientSlot:
    """One closed-loop client: runs transactions back-to-back."""

    slot_id: int
    time_ms: float = 0.0
    busy: bool = False
    transactions_run: int = 0


ProgramFactory = Callable[[], object]


@dataclass
class PendingProgram:
    """A program waiting to be executed (possibly a retry).

    ``not_before_ms`` implements client retry backoff: a transaction aborted
    by a conflict or deadlock is resubmitted only after a short delay, which
    prevents the deterministic simulation from replaying the same collision
    in lockstep forever (real clients get the same effect from scheduling
    noise).
    """

    factory: ProgramFactory
    attempts: int = 0
    first_submit_ms: float = 0.0
    not_before_ms: float = 0.0
