"""Shared infrastructure for the closed-loop baseline executors.

Both baselines execute transaction programs (the same generator programs the
Obladi proxy runs) in a closed loop with ``C`` concurrent client slots over a
simulated clock:

* each client slot runs one transaction at a time and advances its own local
  time as its operations incur storage round trips;
* the proxy's CPU is a shared, serial resource: every operation also charges
  a small CPU cost to a global accumulator, and the run's makespan is the
  larger of "last client finished" and "total CPU demanded" — this is how
  the ``dummy``/LAN configurations become CPU-bound while WAN configurations
  stay I/O-bound, as in the paper.

Run results are :class:`repro.api.results.RunStats`, the unified result type
of the engine layer (``BaselineRunResult`` is kept as an alias).  The
retry/backoff bookkeeping both executors share lives in
:func:`record_attempt`, parameterised by the engine layer's
:class:`~repro.api.loop.RetryPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.api.loop import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.api.results import RunStats
from repro.core.client import TransactionResult

#: Unified result type; the historical name remains importable.
BaselineRunResult = RunStats


@dataclass
class ClientSlot:
    """One closed-loop client: runs transactions back-to-back."""

    slot_id: int
    time_ms: float = 0.0
    busy: bool = False
    transactions_run: int = 0


ProgramFactory = Callable[[], object]


@dataclass
class PendingProgram:
    """A program waiting to be executed (possibly a retry).

    ``not_before_ms`` implements client retry backoff: a transaction aborted
    by a conflict or deadlock is resubmitted only after a short delay, which
    prevents the deterministic simulation from replaying the same collision
    in lockstep forever (real clients get the same effect from scheduling
    noise).
    """

    factory: ProgramFactory
    attempts: int = 0
    first_submit_ms: float = 0.0
    not_before_ms: float = 0.0


def record_attempt(run: RunStats, pending: PendingProgram, txn_id: int,
                   slot_time_ms: float, committed: bool, reason: Optional[str],
                   return_value, queue: List[PendingProgram],
                   retry_aborted: bool, max_retries: int,
                   policy: RetryPolicy = DEFAULT_RETRY_POLICY) -> TransactionResult:
    """Account for one finished transaction attempt.

    Updates ``run`` counters and latency samples, appends the attempt's
    :class:`~repro.core.client.TransactionResult`, and — when the attempt
    aborted and retries remain — re-queues ``pending`` with the policy's
    backoff so the same conflict is not replayed in lockstep.  Returns the
    recorded result.  (This is the bookkeeping that used to be duplicated
    between the NoPriv and 2PL executors.)
    """
    latency = slot_time_ms - pending.first_submit_ms
    if committed:
        run.committed += 1
        run.latencies_ms.append(latency)
    else:
        run.aborted += 1
        if retry_aborted and pending.attempts < max_retries:
            pending.attempts += 1
            run.retries += 1
            pending.not_before_ms = slot_time_ms + policy.backoff_ms(txn_id,
                                                                     pending.attempts)
            queue.append(pending)
    result = TransactionResult(
        txn_id=txn_id, committed=committed,
        return_value=return_value if committed else None,
        abort_reason=reason, latency_ms=latency, epoch=-1)
    run.results.append(result)
    return result
