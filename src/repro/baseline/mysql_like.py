"""MySQL-like baseline: strict two-phase locking over local storage.

Figure 9 uses a local MySQL instance as a conventional reference point.  The
relevant behaviour the paper calls out is that InnoDB "acquires exclusive
locks for the duration of the transactions", so conflicting TPC-C
transactions serialise instead of pipelining the way MVTSO allows.  This
baseline implements exactly that: shared locks for reads, exclusive locks
for writes, all held until commit, waits-for deadlock detection with the
requesting transaction aborted when its wait would close a cycle, and writes
applied at commit time.

Execution model
---------------
Like :class:`repro.baseline.nopriv.NoPrivProxy`, transactions are
interleaved at operation granularity across ``C`` client slots in simulated
time, so lock conflicts and deadlocks arise exactly where concurrent
executions would produce them.  A transaction that blocks on a lock resumes
when the holder commits, with its clock advanced to the holder's completion
time.
"""

from __future__ import annotations

import heapq
from typing import Dict, Generator, List, Optional, Tuple

from repro.api.results import RunStats
from repro.baseline.common import (ClientSlot, PendingProgram, ProgramFactory,
                                   record_attempt)
from repro.concurrency.transaction import (AbortReason, CommittedTransaction,
                                           TransactionRecord, TransactionStatus)
from repro.concurrency.two_phase_locking import DeadlockError, LockManager, LockMode
from repro.core.client import (AbortRequest, Read, ReadMany, TransactionAborted,
                               Write)
from repro.sim.clock import SimClock
from repro.sim.latency import get_latency_model
from repro.storage.memory import InMemoryStorageServer


class _Runner:
    """One in-flight 2PL transaction."""

    def __init__(self, pending: PendingProgram, slot: ClientSlot, generator: Generator,
                 record: TransactionRecord) -> None:
        self.pending = pending
        self.slot = slot
        self.generator = generator
        self.record = record
        self.send_value = None
        self.return_value = None
        self.pending_operation = None     # operation retried after a lock wait
        self.done = False


class TwoPhaseLockingStore:
    """Closed-loop, operation-interleaved executor for the strict-2PL baseline."""

    CPU_PER_OP_MS = 0.009
    CPU_PER_COMMIT_MS = 0.015
    #: MySQL in the paper runs locally: reads hit the buffer pool / local disk
    #: rather than the network, so per-operation costs are small constants.
    LOCAL_READ_MS = 0.02
    LOCAL_COMMIT_MS = 0.06

    def __init__(self, backend: str = "server", clock: Optional[SimClock] = None,
                 seed: Optional[int] = 0, local_execution: bool = True,
                 exclusive_reads: bool = True,
                 storage: Optional[InMemoryStorageServer] = None) -> None:
        self.latency = get_latency_model(backend)
        self.clock = clock if clock is not None else SimClock()
        if storage is None:
            storage = InMemoryStorageServer(latency=self.latency, clock=self.clock,
                                            charge_latency=False, record_trace=False)
        else:
            storage.clock = self.clock
            storage.charge_latency = False
        self.storage = storage
        self.locks = LockManager()
        self.local_execution = local_execution
        # The paper describes MySQL as acquiring exclusive locks for the
        # duration of conflicting transactions (InnoDB's SELECT ... FOR UPDATE
        # pattern in OLTP code).  Exclusive-only locking also avoids the
        # shared-to-exclusive upgrade deadlock storms that a naive 2PL client
        # would suffer on read-modify-write rows.  Set ``exclusive_reads`` to
        # False to get plain shared/exclusive 2PL.
        self.exclusive_reads = exclusive_reads
        self._next_txn_id = 1
        self.committed_history: List[CommittedTransaction] = []
        self._local_state: Dict[str, Optional[bytes]] = {}
        # Timestamp of the last committed writer of each key, so read sets
        # carry accurate version provenance for the serializability checker.
        self._last_writer_ts: Dict[str, int] = {}
        # Under strict 2PL the serialization order is the *commit* order, not
        # the start order; committed transactions are stamped with a commit
        # sequence number so history checking uses the right version order.
        self._next_commit_seq = 1
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Data loading and raw storage access
    # ------------------------------------------------------------------ #
    def load_initial_data(self, items: Dict[str, bytes]) -> None:
        self.storage.write_batch({f"kv/{key}": value for key, value in items.items()},
                                 parallelism=64)

    def _storage_read(self, key: str) -> Optional[bytes]:
        result = self.storage.read_batch([f"kv/{key}"], parallelism=1, record_batch=False)
        return result.values.get(f"kv/{key}")

    def _storage_write_many(self, items: Dict[str, Optional[bytes]]) -> None:
        payload = {f"kv/{key}": (value if value is not None else b"")
                   for key, value in items.items()}
        if payload:
            self.storage.write_batch(payload, parallelism=16, record_batch=False)

    # ------------------------------------------------------------------ #
    # Closed-loop execution
    # ------------------------------------------------------------------ #
    def run_transactions(self, factories: List[ProgramFactory], clients: int = 32,
                         retry_aborted: bool = True, max_retries: int = 3) -> RunStats:
        result = RunStats(engine="mysql")
        base_ms = self.clock.now_ms
        queue: List[PendingProgram] = [PendingProgram(factory=f) for f in factories]
        slots = [ClientSlot(slot_id=i) for i in range(max(1, clients))]
        idle: List[Tuple[float, int]] = [(slot.time_ms, slot.slot_id) for slot in slots]
        heapq.heapify(idle)
        active: List[Tuple[float, int, _Runner]] = []
        blocked: Dict[int, _Runner] = {}
        seq = 0
        cpu_ms_total = 0.0
        finish_ms = 0.0

        read_cost_ms = self.LOCAL_READ_MS if self.local_execution else self.latency.read_rtt_ms

        def start_next() -> bool:
            nonlocal seq
            if not queue or not idle:
                return False
            slot_time, slot_id = heapq.heappop(idle)
            slot = slots[slot_id]
            slot.time_ms = max(slot.time_ms, slot_time)
            pending = queue.pop(0)
            slot.time_ms = max(slot.time_ms, pending.not_before_ms)
            if pending.attempts == 0 and pending.first_submit_ms == 0.0:
                pending.first_submit_ms = slot.time_ms
            record = TransactionRecord(txn_id=self._next_txn_id, timestamp=self._next_txn_id,
                                       epoch=0, start_time_ms=slot.time_ms)
            self._next_txn_id += 1
            runner = _Runner(pending, slot, pending.factory(), record)
            heapq.heappush(active, (slot.time_ms, seq, runner))
            seq += 1
            return True

        def finish(runner: _Runner, committed: bool, reason: Optional[str]) -> None:
            nonlocal finish_ms, cpu_ms_total, seq
            finish_ms = max(finish_ms, runner.slot.time_ms)
            cpu_ms_total += (runner.record.operations * self.CPU_PER_OP_MS
                             + self.CPU_PER_COMMIT_MS)
            if committed:
                self.committed_history.append(CommittedTransaction.from_record(runner.record))
            record_attempt(result, runner.pending, runner.record.txn_id,
                           runner.slot.time_ms, committed, reason, runner.return_value,
                           queue, retry_aborted, max_retries)
            runner.done = True
            # Release this transaction's locks and wake eligible waiters.
            grants = self.locks.release_all(runner.record.txn_id)
            for waiter_id, _key, _mode in grants:
                waiter = blocked.pop(waiter_id, None)
                if waiter is not None:
                    waiter.slot.time_ms = max(waiter.slot.time_ms, runner.slot.time_ms)
                    heapq.heappush(active, (waiter.slot.time_ms, seq, waiter))
                    seq += 1
            heapq.heappush(idle, (runner.slot.time_ms, runner.slot.slot_id))

        while queue or active or blocked:
            while start_next():
                pass
            if not active:
                if blocked:
                    # Every runnable transaction is blocked.  A deadlock cycle
                    # may have formed when a released lock was granted past an
                    # existing holder; abort one member of the cycle (or, if
                    # none is found, the youngest blocked transaction) so the
                    # rest can proceed.
                    cycle = self.locks.find_any_cycle()
                    candidates = [blocked[t] for t in (cycle or []) if t in blocked]
                    if not candidates:
                        candidates = list(blocked.values())
                    victim = max(candidates, key=lambda r: r.record.txn_id)
                    blocked.pop(victim.record.txn_id)
                    victim.record.mark_aborted(AbortReason.DEADLOCK, victim.slot.time_ms)
                    finish(victim, False, AbortReason.DEADLOCK.value)
                continue

            _, _, runner = heapq.heappop(active)
            if runner.done:
                continue
            outcome = self._step(runner, read_cost_ms)
            if outcome == "running":
                heapq.heappush(active, (runner.slot.time_ms, seq, runner))
                seq += 1
            elif outcome == "blocked":
                blocked[runner.record.txn_id] = runner
            else:
                committed, reason = outcome
                finish(runner, committed, reason)

        result.cpu_ms = cpu_ms_total
        result.elapsed_ms = max(finish_ms, cpu_ms_total)
        # Slot times are run-local; anchor the shared clock at the call's
        # start so consecutive runs accumulate simulated time correctly.
        self.clock.advance_to(base_ms + result.elapsed_ms)
        return result

    # ------------------------------------------------------------------ #
    # One operation at a time
    # ------------------------------------------------------------------ #
    def _step(self, runner: _Runner, read_cost_ms: float):
        """Execute the runner's next operation (or retry one after a lock wait)."""
        record = runner.record
        # Every operation occupies the client for a sliver of CPU time; this
        # keeps concurrently started transactions from executing in perfect
        # lockstep at identical simulated instants.
        runner.slot.time_ms += self.CPU_PER_OP_MS
        if runner.pending_operation is not None:
            operation = runner.pending_operation
            runner.pending_operation = None
        else:
            try:
                operation = runner.generator.send(runner.send_value)
            except StopIteration as stop:
                runner.return_value = getattr(stop, "value", None)
                return self._commit(runner)
            except TransactionAborted:
                return self._abort(runner, AbortReason.USER)

        read_mode = LockMode.EXCLUSIVE if self.exclusive_reads else LockMode.SHARED
        if isinstance(operation, Read):
            granted, deadlocked = self._acquire(runner, operation.key, read_mode)
            if deadlocked:
                return self._abort(runner, AbortReason.DEADLOCK)
            if not granted:
                runner.pending_operation = operation
                return "blocked"
            runner.send_value = self._read_locked(runner, operation.key, read_cost_ms)
            return "running"
        if isinstance(operation, ReadMany):
            values = {}
            for key in operation.keys:
                granted, deadlocked = self._acquire(runner, key, read_mode)
                if deadlocked:
                    return self._abort(runner, AbortReason.DEADLOCK)
                if not granted:
                    runner.pending_operation = operation
                    return "blocked"
                values[key] = self._read_locked(runner, key, 0.0)
            runner.slot.time_ms += read_cost_ms
            runner.send_value = values
            return "running"
        if isinstance(operation, Write):
            granted, deadlocked = self._acquire(runner, operation.key, LockMode.EXCLUSIVE)
            if deadlocked:
                return self._abort(runner, AbortReason.DEADLOCK)
            if not granted:
                runner.pending_operation = operation
                return "blocked"
            record.record_write(operation.key, bytes(operation.value))
            runner.send_value = None
            return "running"
        if isinstance(operation, AbortRequest):
            return self._abort(runner, AbortReason.USER)
        raise TypeError(f"unsupported operation {operation!r}")

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _acquire(self, runner: _Runner, key: str, mode: LockMode) -> Tuple[bool, bool]:
        """Acquire a lock; returns (granted, aborted_by_deadlock)."""
        try:
            granted = self.locks.acquire(runner.record.txn_id, key, mode)
            return granted, False
        except DeadlockError:
            return False, True

    def _read_locked(self, runner: _Runner, key: str, charge_ms: float):
        """Read a key the transaction already holds a lock on."""
        record = runner.record
        if key in record.write_set:
            value = record.write_set[key]
        else:
            value = self._local_state.get(key)
            if value is None:
                value = self._storage_read(key)
            runner.slot.time_ms += charge_ms
        record.record_read(key, writer_ts=self._last_writer_ts.get(key, -1))
        return value

    def _commit(self, runner: _Runner):
        record = runner.record
        record.request_commit()
        # Stamp the record with its commit-order position: that is the
        # serialization order strict 2PL guarantees.
        record.timestamp = self._next_commit_seq
        self._next_commit_seq += 1
        if record.write_set:
            self._storage_write_many(record.write_set)
            self._local_state.update(record.write_set)
            for key in record.write_set:
                self._last_writer_ts[key] = record.timestamp
            commit_cost = self.LOCAL_COMMIT_MS if self.local_execution else self.latency.write_rtt_ms
            runner.slot.time_ms += commit_cost
        record.mark_committed(runner.slot.time_ms)
        return True, None

    def _abort(self, runner: _Runner, reason: AbortReason):
        runner.record.mark_aborted(reason, runner.slot.time_ms)
        return False, reason.value
