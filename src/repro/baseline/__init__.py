"""Non-private baselines used by the end-to-end evaluation (Figure 9).

* :class:`~repro.baseline.nopriv.NoPrivProxy` — the paper's NoPriv baseline:
  the same MVTSO concurrency control as Obladi, but the data handler talks to
  remote storage directly (no ORAM, no batching, no delayed commits).  Writes
  are buffered at the proxy until commit and served locally when possible.
* :class:`~repro.baseline.mysql_like.TwoPhaseLockingStore` — a MySQL/InnoDB
  stand-in: strict two-phase locking with locks held until commit, which is
  what serialises TPC-C's new-order/payment contention in the paper.

Both are usually driven through the unified engine layer
(:func:`repro.api.create_engine` with kind ``"nopriv"`` or ``"mysql"``);
``BaselineRunResult`` is now an alias of :class:`repro.api.results.RunStats`.
"""

from repro.baseline.common import BaselineRunResult
from repro.baseline.nopriv import NoPrivProxy
from repro.baseline.mysql_like import TwoPhaseLockingStore

__all__ = ["BaselineRunResult", "NoPrivProxy", "TwoPhaseLockingStore"]
