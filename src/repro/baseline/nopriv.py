"""NoPriv: the paper's non-private baseline.

NoPriv shares Obladi's concurrency control (MVTSO) but replaces the data
handler with direct, non-oblivious access to remote storage: a read is a
single key fetch, writes are buffered at the proxy until commit and served
locally to the writing transaction, and commits apply the write set to
storage immediately — there are no epochs, no batching, and no delayed
commit notifications.

Execution model
---------------
``run_transactions`` is a small discrete-event simulation: ``C`` client
slots each run one transaction at a time, and the slot with the earliest
simulated time executes its next *operation* (not its whole transaction)
before control moves on.  Interleaving at operation granularity is what
exposes MVTSO's write conflicts and cascading aborts under contention — the
paper's NoPriv is contention-bottlenecked on TPC-C for exactly this reason.
"""

from __future__ import annotations

import heapq
from typing import Dict, Generator, List, Optional, Tuple

from repro.api.results import RunStats
from repro.baseline.common import (ClientSlot, PendingProgram, ProgramFactory,
                                   record_attempt)
from repro.concurrency.mvtso import MVTSOManager, WriteConflictError
from repro.concurrency.transaction import (AbortReason, CommittedTransaction,
                                           TransactionStatus)
from repro.core.client import (AbortRequest, Read, ReadMany, TransactionAborted,
                               Write)
from repro.sim.clock import SimClock
from repro.sim.latency import CpuCostModel, get_latency_model
from repro.storage.memory import InMemoryStorageServer


class _Runner:
    """One in-flight transaction bound to a client slot."""

    def __init__(self, pending: PendingProgram, slot: ClientSlot, generator: Generator,
                 record) -> None:
        self.pending = pending
        self.slot = slot
        self.generator = generator
        self.record = record
        self.send_value = None
        self.return_value = None
        self.done = False


class NoPrivProxy:
    """Closed-loop, operation-interleaved executor for the NoPriv baseline."""

    #: CPU charged per operation for MVTSO dependency tracking; the paper
    #: observes this becomes NoPriv's bottleneck on SmallBank.
    CPU_PER_OP_MS = 0.011
    CPU_PER_COMMIT_MS = 0.020

    def __init__(self, backend: str = "server", clock: Optional[SimClock] = None,
                 cost_model: Optional[CpuCostModel] = None, seed: Optional[int] = 0,
                 storage: Optional[InMemoryStorageServer] = None) -> None:
        self.latency = get_latency_model(backend)
        self.clock = clock if clock is not None else SimClock()
        self.cost_model = cost_model if cost_model is not None else CpuCostModel()
        if storage is None:
            storage = InMemoryStorageServer(latency=self.latency, clock=self.clock,
                                            charge_latency=False, record_trace=False)
        else:
            storage.clock = self.clock
            storage.charge_latency = False
        self.storage = storage
        self.mvtso = MVTSOManager()
        self.committed_history: List[CommittedTransaction] = []
        self.seed = seed

    # ------------------------------------------------------------------ #
    # Data loading and raw storage access
    # ------------------------------------------------------------------ #
    def load_initial_data(self, items: Dict[str, bytes]) -> None:
        """Install the initial database state on the storage server."""
        self.storage.write_batch({f"kv/{key}": value for key, value in items.items()},
                                 parallelism=64)

    def _storage_read(self, key: str) -> Optional[bytes]:
        result = self.storage.read_batch([f"kv/{key}"], parallelism=1, record_batch=False)
        return result.values.get(f"kv/{key}")

    def _storage_write_many(self, items: Dict[str, Optional[bytes]]) -> None:
        payload = {f"kv/{key}": (value if value is not None else b"")
                   for key, value in items.items()}
        if payload:
            self.storage.write_batch(payload, parallelism=16, record_batch=False)

    # ------------------------------------------------------------------ #
    # Closed-loop execution
    # ------------------------------------------------------------------ #
    def run_transactions(self, factories: List[ProgramFactory], clients: int = 32,
                         retry_aborted: bool = True, max_retries: int = 3) -> RunStats:
        """Run every program to completion with ``clients`` concurrent slots."""
        result = RunStats(engine="nopriv")
        base_ms = self.clock.now_ms
        queue: List[PendingProgram] = [PendingProgram(factory=f) for f in factories]
        slots = [ClientSlot(slot_id=i) for i in range(max(1, clients))]
        idle: List[Tuple[float, int]] = [(slot.time_ms, slot.slot_id) for slot in slots]
        heapq.heapify(idle)
        active: List[Tuple[float, int, _Runner]] = []   # (next event time, seq, runner)
        waiting_for_deps: List[_Runner] = []
        seq = 0
        cpu_ms_total = 0.0
        finish_ms = 0.0

        overlap = self.latency.effective_parallelism(len(slots))
        queueing = max(1.0, len(slots) / overlap)
        read_cost_ms = self.latency.read_rtt_ms * queueing + self.latency.per_request_server_ms

        def start_next() -> bool:
            nonlocal seq
            if not queue or not idle:
                return False
            slot_time, slot_id = heapq.heappop(idle)
            slot = slots[slot_id]
            slot.time_ms = max(slot.time_ms, slot_time)
            pending = queue.pop(0)
            slot.time_ms = max(slot.time_ms, pending.not_before_ms)
            if pending.attempts == 0 and pending.first_submit_ms == 0.0:
                pending.first_submit_ms = slot.time_ms
            record = self.mvtso.begin(epoch=0, now_ms=slot.time_ms)
            runner = _Runner(pending, slot, pending.factory(), record)
            heapq.heappush(active, (slot.time_ms, seq, runner))
            seq += 1
            return True

        def finish(runner: _Runner, committed: bool, reason: Optional[str]) -> None:
            nonlocal finish_ms
            finish_ms = max(finish_ms, runner.slot.time_ms)
            if committed:
                self.committed_history.append(CommittedTransaction.from_record(runner.record))
            record_attempt(result, runner.pending, runner.record.txn_id,
                           runner.slot.time_ms, committed, reason, runner.return_value,
                           queue, retry_aborted, max_retries)
            heapq.heappush(idle, (runner.slot.time_ms, runner.slot.slot_id))
            runner.done = True

        def resolve_waiting() -> None:
            still: List[_Runner] = []
            for runner in waiting_for_deps:
                record = runner.record
                deps = [self.mvtso.transactions[d] for d in record.dependencies
                        if d in self.mvtso.transactions]
                if record.status is TransactionStatus.ABORTED:
                    finish(runner, False, (record.abort_reason or AbortReason.CASCADE).value)
                elif any(d.status is TransactionStatus.ABORTED for d in deps):
                    self.mvtso.abort(record, AbortReason.CASCADE, runner.slot.time_ms)
                    finish(runner, False, AbortReason.CASCADE.value)
                elif all(d.is_finished for d in deps):
                    self._commit(runner)
                    finish(runner, True, None)
                else:
                    still.append(runner)
            waiting_for_deps[:] = still

        while queue or active or waiting_for_deps:
            while start_next():
                pass
            if not active:
                resolve_waiting()
                if not active and not queue and waiting_for_deps:
                    # Remaining transactions wait on each other: commit the
                    # oldest to break the tie (its dependencies, if any, are
                    # also in this set and will resolve next).
                    waiting_for_deps.sort(key=lambda r: r.record.timestamp)
                    runner = waiting_for_deps.pop(0)
                    self._commit(runner)
                    finish(runner, True, None)
                continue

            _, _, runner = heapq.heappop(active)
            if runner.done or runner.record.is_finished:
                # Aborted in cascade while queued; surface it.
                if not runner.done:
                    finish(runner, False,
                           (runner.record.abort_reason or AbortReason.CASCADE).value)
                continue
            outcome = self._step(runner, read_cost_ms)
            cpu_ms_total += self.CPU_PER_OP_MS
            if outcome == "running":
                heapq.heappush(active, (runner.slot.time_ms, seq, runner))
                seq += 1
            elif outcome == "waiting":
                waiting_for_deps.append(runner)
                resolve_waiting()
            else:
                committed, reason = outcome
                cpu_ms_total += self.CPU_PER_COMMIT_MS
                finish(runner, committed, reason)
                resolve_waiting()

        result.cpu_ms = cpu_ms_total
        result.elapsed_ms = max(finish_ms, cpu_ms_total)
        # Slot times are run-local; anchor the shared clock at the call's
        # start so consecutive runs accumulate simulated time correctly.
        self.clock.advance_to(base_ms + result.elapsed_ms)
        return result

    # ------------------------------------------------------------------ #
    # One operation at a time
    # ------------------------------------------------------------------ #
    def _step(self, runner: _Runner, read_cost_ms: float):
        """Execute the runner's next operation.

        Returns ``"running"`` while the transaction has more operations,
        ``"waiting"`` if it finished but must wait for uncommitted
        dependencies, or ``(committed, reason)`` when it resolved.
        """
        record = runner.record
        # Charge a sliver of client CPU per operation so concurrent
        # transactions do not execute at identical simulated instants.
        runner.slot.time_ms += self.CPU_PER_OP_MS
        try:
            operation = runner.generator.send(runner.send_value)
        except StopIteration as stop:
            runner.return_value = getattr(stop, "value", None)
            record.request_commit()
            return self._try_commit(runner)
        except TransactionAborted:
            self.mvtso.abort(record, AbortReason.USER, runner.slot.time_ms)
            return False, AbortReason.USER.value

        if isinstance(operation, Read):
            value, _writer = self.mvtso.read(record, operation.key)
            if value is None:
                value = self._storage_read(operation.key)
                runner.slot.time_ms += read_cost_ms
            runner.send_value = value
            return "running"
        if isinstance(operation, ReadMany):
            values = {}
            fetched_any = False
            for key in operation.keys:
                value, _writer = self.mvtso.read(record, key)
                if value is None:
                    value = self._storage_read(key)
                    fetched_any = True
                values[key] = value
            if fetched_any:
                # Independent keys are fetched concurrently: one round trip.
                runner.slot.time_ms += read_cost_ms
            runner.send_value = values
            return "running"
        if isinstance(operation, Write):
            try:
                self.mvtso.write(record, operation.key, bytes(operation.value))
            except WriteConflictError:
                self.mvtso.abort(record, AbortReason.WRITE_CONFLICT, runner.slot.time_ms)
                return False, AbortReason.WRITE_CONFLICT.value
            runner.send_value = None
            return "running"
        if isinstance(operation, AbortRequest):
            self.mvtso.abort(record, AbortReason.USER, runner.slot.time_ms)
            return False, AbortReason.USER.value
        raise TypeError(f"unsupported operation {operation!r}")

    def _try_commit(self, runner: _Runner):
        """Commit if all observed writers have resolved; park otherwise."""
        record = runner.record
        deps = [self.mvtso.transactions[d] for d in record.dependencies
                if d in self.mvtso.transactions]
        if any(d.status is TransactionStatus.ABORTED for d in deps):
            self.mvtso.abort(record, AbortReason.CASCADE, runner.slot.time_ms)
            return False, AbortReason.CASCADE.value
        if any(not d.is_finished for d in deps):
            return "waiting"
        self._commit(runner)
        return True, None

    def _commit(self, runner: _Runner) -> None:
        """Commit: apply the write set to storage and finish the record."""
        record = runner.record
        if record.status is TransactionStatus.ACTIVE:
            record.request_commit()
        if record.write_set:
            self._storage_write_many(record.write_set)
            runner.slot.time_ms += self.latency.write_rtt_ms
        self.mvtso.commit(record, now_ms=runner.slot.time_ms)
