"""Crash injection for tests and the recovery experiments.

The paper's failure model allows the proxy to crash at any point, losing all
volatile state.  The simulator injects crashes at the boundaries that matter
for the recovery protocol: before/after a read batch, and at the epoch
boundary before the checkpoint is written.  (Crashing in the middle of a
local computation is indistinguishable from crashing just before it, since
nothing local persists.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.errors import ProxyCrashedError


class CrashPoint(enum.Enum):
    """Where in the epoch the injected crash fires."""

    BEFORE_READ_BATCH = "before_read_batch"
    AFTER_READ_BATCH = "after_read_batch"
    BEFORE_CHECKPOINT = "before_checkpoint"


@dataclass
class CrashInjector:
    """Arms a crash after a configurable number of read batches.

    The injector wraps the proxy's data handler; once ``crash_after_batches``
    batches have been dispatched in total (across epochs), the proxy is
    crashed and :class:`ProxyCrashedError` propagates out of ``run_epoch``.
    """

    proxy: object
    crash_after_batches: int
    point: CrashPoint = CrashPoint.BEFORE_READ_BATCH
    fired: bool = False
    _batches_seen: int = 0
    _original_read: Optional[Callable] = None
    _original_checkpoint: Optional[Callable] = None

    def arm(self) -> None:
        """Install the wrappers (on the proxy's data layer, single or sharded)."""
        layer = self.proxy.data_layer
        self._original_read = layer.execute_read_batch

        def wrapped_read(keys, batch_size):
            if self.point is CrashPoint.BEFORE_READ_BATCH:
                self._maybe_crash()
            result = self._original_read(keys, batch_size)
            self._batches_seen += 1
            if self.point is CrashPoint.AFTER_READ_BATCH:
                self._maybe_crash(post=True)
            return result

        layer.execute_read_batch = wrapped_read

        if self.point is CrashPoint.BEFORE_CHECKPOINT and self.proxy.recovery is not None:
            self._original_checkpoint = self.proxy.recovery.checkpoint_data_layer

            def wrapped_checkpoint(*args, **kwargs):
                self._crash()
                return None

            self.proxy.recovery.checkpoint_data_layer = wrapped_checkpoint

    def disarm(self) -> None:
        """Remove the wrappers (used after recovery to reuse helper objects)."""
        if self._original_read is not None:
            self.proxy.data_layer.execute_read_batch = self._original_read
        if self._original_checkpoint is not None and self.proxy.recovery is not None:
            self.proxy.recovery.checkpoint_data_layer = self._original_checkpoint

    # ------------------------------------------------------------------ #
    def _maybe_crash(self, post: bool = False) -> None:
        threshold = self.crash_after_batches
        seen = self._batches_seen if not post else self._batches_seen - 1
        if not self.fired and seen >= threshold:
            self._crash()

    def _crash(self) -> None:
        self.fired = True
        self.proxy.crash()
        raise ProxyCrashedError(
            f"injected crash at {self.point.value} after {self._batches_seen} batches")
