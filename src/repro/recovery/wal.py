"""Write-ahead log of read-batch access locations.

The recovery unit logs, for every read batch, the set of locations the batch
is about to read (paper §8, "Obladi durably logs the list of paths and slot
indices that it accesses, before executing the actual requests").  After a
crash these logs are replayed so that the adversary sees the aborted epoch's
paths repeated deterministically, which removes the leak that would
otherwise arise when clients retry the same logical requests.

Entries are encrypted (Appendix A: once writes are no longer atomic, the
read log contents must not be visible before the epoch counter advances) and
padded to the read batch size so the log length is workload-independent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.oram.crypto import CipherSuite
from repro.storage.backend import StorageServer


@dataclass(frozen=True)
class WalRecord:
    """One logged read batch."""

    epoch_id: int
    batch_index: int
    keys: List[str]
    padded_size: int

    def storage_key(self) -> str:
        return wal_storage_key(self.epoch_id, self.batch_index)


def wal_storage_key(epoch_id: int, batch_index: int) -> str:
    return f"wal/{epoch_id}/{batch_index}"


class WriteAheadLog:
    """Durable, encrypted log of per-batch access locations."""

    def __init__(self, storage: StorageServer, cipher: Optional[CipherSuite] = None,
                 entry_capacity: int = 16 * 1024, encrypt: bool = True) -> None:
        # Encrypted WAL entries do not fit the ORAM block size, so the WAL
        # uses its own cipher sized for one padded batch entry; every entry
        # for a given configuration therefore has the same ciphertext length.
        self.storage = storage
        self.cipher = cipher if cipher is not None else CipherSuite(
            block_size=entry_capacity, enabled=encrypt)
        self.records_written = 0

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append(self, record: WalRecord) -> int:
        """Durably write one record; returns the payload size in bytes."""
        keys = list(record.keys)
        # Pad the key list so every entry for a given configuration has the
        # same number of rows regardless of how many real requests it holds.
        rows: List[Optional[str]] = list(keys)
        while len(rows) < record.padded_size:
            rows.append(None)
        payload = json.dumps({
            "epoch": record.epoch_id,
            "batch": record.batch_index,
            "rows": rows,
        }).encode("utf-8")
        sealed = self.cipher.encrypt(payload)
        self.storage.write_batch({record.storage_key(): sealed})
        self.records_written += 1
        return len(sealed)

    # ------------------------------------------------------------------ #
    # Reading (recovery path)
    # ------------------------------------------------------------------ #
    def read_epoch(self, epoch_id: int, max_batches: int) -> List[WalRecord]:
        """Read every logged batch of ``epoch_id`` (missing indices are skipped)."""
        records: List[WalRecord] = []
        for batch_index in range(max_batches):
            key = wal_storage_key(epoch_id, batch_index)
            blob = self.storage.read(key)
            if blob is None:
                continue
            payload = json.loads(self.cipher.decrypt(blob).decode("utf-8"))
            rows = [row for row in payload["rows"] if row is not None]
            records.append(WalRecord(epoch_id=payload["epoch"], batch_index=payload["batch"],
                                     keys=rows, padded_size=len(payload["rows"])))
        return records

    def truncate_before(self, epoch_id: int, max_batches: int, horizon: int = 16) -> int:
        """Delete WAL entries for epochs older than ``epoch_id``; returns count.

        ``horizon`` bounds how far back the scan looks; epochs older than the
        horizon were deleted by earlier truncations.
        """
        deleted = 0
        keys = []
        for old_epoch in range(max(0, epoch_id - horizon), epoch_id):
            for batch_index in range(max_batches):
                key = wal_storage_key(old_epoch, batch_index)
                if self.storage.contains(key):
                    keys.append(key)
        if keys:
            self.storage.delete_batch(keys)
            deleted = len(keys)
        return deleted
