"""Shadow-paging helpers: deterministic bucket versions and garbage collection.

Obladi never overwrites a bucket in place: every eviction writes the bucket
under a new version key, and recovery simply reverts the proxy's notion of
"current version" to the one recorded by the last committed epoch's
checkpoint.  Versions written by an aborted epoch remain on the server as
unreachable garbage until collected.

Because Ring ORAM's evict-path schedule is deterministic, the version of
every bucket after ``G`` evictions is a closed-form function of ``G`` (plus
any early reshuffles, which are data-dependent and therefore logged).  The
helpers here compute that function and collect orphaned versions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.oram import path_math
from repro.oram.metadata import MetadataTable
from repro.oram.ring_oram import slot_storage_key
from repro.storage.backend import StorageServer


def expected_versions_from_evictions(eviction_count: int, depth: int) -> Dict[int, int]:
    """Deterministic bucket versions implied by ``eviction_count`` evict-paths.

    Early reshuffles and bulk loads add to these counts; the proxy's
    checkpointed metadata records the authoritative value.  Recovery uses
    this function as a cross-check and the tests verify it against the real
    metadata when no early reshuffles occurred.
    """
    versions: Dict[int, int] = {}
    for bucket in range(path_math.num_buckets(depth)):
        versions[bucket] = path_math.eviction_count_for_bucket(bucket, eviction_count, depth)
    return versions


def orphaned_slot_keys(storage: StorageServer, metadata: MetadataTable,
                       slots_per_bucket: int) -> List[str]:
    """Slot keys on the server newer than the checkpointed bucket versions.

    These are writes from aborted epochs (or from an epoch that crashed mid
    write-back); they are unreachable after recovery and can be deleted.
    """
    current: Dict[int, int] = {bid: metadata.bucket(bid).version
                               for bid in metadata.buckets_present()}
    orphans: List[str] = []
    for key in storage.keys():
        if not key.startswith("oram/"):
            continue
        parts = key.split("/")
        try:
            bucket_id = int(parts[1])
            version = int(parts[2][1:])
        except (IndexError, ValueError):
            continue
        known = current.get(bucket_id, 0)
        if version > known:
            orphans.append(key)
    return orphans


def collect_garbage(storage: StorageServer, metadata: MetadataTable,
                    slots_per_bucket: int) -> int:
    """Delete orphaned bucket versions; returns how many slot objects were removed."""
    orphans = orphaned_slot_keys(storage, metadata, slots_per_bucket)
    if orphans:
        storage.delete_batch(orphans)
    return len(orphans)


def old_version_keys(storage: StorageServer, metadata: MetadataTable,
                     keep_versions: int = 1) -> List[str]:
    """Slot keys more than ``keep_versions`` behind the current bucket version.

    Obladi needs the previous committed version of each bucket for epoch
    rollback; anything older can be reclaimed once the following epoch has
    committed.
    """
    current: Dict[int, int] = {bid: metadata.bucket(bid).version
                               for bid in metadata.buckets_present()}
    stale: List[str] = []
    for key in storage.keys():
        if not key.startswith("oram/"):
            continue
        parts = key.split("/")
        try:
            bucket_id = int(parts[1])
            version = int(parts[2][1:])
        except (IndexError, ValueError):
            continue
        known = current.get(bucket_id, 0)
        if version < known - keep_versions:
            stale.append(key)
    return stale
