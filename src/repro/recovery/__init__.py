"""Oblivious durability and crash recovery (paper §8).

Obladi makes transactions durable at epoch granularity: before an epoch is
declared committed, the proxy synchronously logs (encrypted, padded) copies
of its volatile metadata — position map, per-bucket permutations, the
valid/invalid map, the stash, the key directory and the eviction counter —
and, before every read batch, the list of storage locations the batch will
touch.  After a crash the proxy restores the last committed epoch's
metadata, rolls the ORAM back to that epoch's deterministic bucket versions,
and replays the logged read paths so the adversary observes exactly the same
accesses it would have seen without the failure.
"""

from repro.recovery.wal import WriteAheadLog, WalRecord
from repro.recovery.checkpoint import CheckpointStore, CheckpointManifest
from repro.recovery.manager import RecoveryManager, RecoveryResult, recover_proxy
from repro.recovery.crash import CrashInjector, CrashPoint

__all__ = [
    "WriteAheadLog",
    "WalRecord",
    "CheckpointStore",
    "CheckpointManifest",
    "RecoveryManager",
    "RecoveryResult",
    "recover_proxy",
    "CrashInjector",
    "CrashPoint",
]
