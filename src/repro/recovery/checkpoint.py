"""Epoch checkpoints of the proxy's volatile metadata.

At every epoch boundary the proxy durably stores the metadata it would need
to resume from that epoch: the position map, the per-bucket permutation
metadata, the valid/invalid map, the stash (padded to its bound), the key
directory, and the access/eviction counters.  To keep the steady-state cost
low, most epochs write *deltas* (entries changed since the last full
checkpoint); every ``checkpoint_frequency`` epochs a full checkpoint is
written and older deltas become garbage (Figure 11a sweeps this frequency).

All components except the valid/invalid map are encrypted; the position-map
delta is padded to the maximum number of entries an epoch can change so its
size leaks nothing about how many real requests ran (paper §8).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.oram.crypto import CipherSuite
from repro.storage.backend import StorageServer


@dataclass
class CheckpointManifest:
    """Index of the checkpoint chain, stored in the clear (structure only).

    ``access_count``/``eviction_count`` are partition 0's counters (the only
    partition of a single-tree proxy); a partitioned data layer additionally
    records every partition's ``[access_count, eviction_count]`` pair in
    ``partition_counters`` keyed by partition index.
    """

    last_epoch: int = -1
    last_full_epoch: int = -1
    delta_epochs: List[int] = field(default_factory=list)
    access_count: int = 0
    eviction_count: int = 0
    partition_counters: Dict[str, List[int]] = field(default_factory=dict)

    def serialize(self) -> bytes:
        return json.dumps({
            "last_epoch": self.last_epoch,
            "last_full_epoch": self.last_full_epoch,
            "delta_epochs": self.delta_epochs,
            "access_count": self.access_count,
            "eviction_count": self.eviction_count,
            "partition_counters": self.partition_counters,
        }, sort_keys=True).encode("utf-8")

    @classmethod
    def deserialize(cls, blob: bytes) -> "CheckpointManifest":
        payload = json.loads(blob.decode("utf-8"))
        return cls(
            last_epoch=payload["last_epoch"],
            last_full_epoch=payload["last_full_epoch"],
            delta_epochs=list(payload["delta_epochs"]),
            access_count=payload["access_count"],
            eviction_count=payload["eviction_count"],
            partition_counters={str(k): [int(a), int(e)] for k, (a, e) in
                                payload.get("partition_counters", {}).items()},
        )


MANIFEST_KEY = "ckpt/manifest"


def _component_key(epoch_id: int, name: str, full: bool) -> str:
    kind = "full" if full else "delta"
    return f"ckpt/{epoch_id}/{kind}/{name}"


@dataclass
class CheckpointSizes:
    """Byte sizes of one checkpoint's components (used by Figure 11a / Table 11b)."""

    position_bytes: int = 0
    metadata_bytes: int = 0
    valid_map_bytes: int = 0
    stash_bytes: int = 0
    extra_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return (self.position_bytes + self.metadata_bytes + self.valid_map_bytes
                + self.stash_bytes + self.extra_bytes)


class CheckpointStore:
    """Writes and reads checkpoint components on the untrusted store."""

    def __init__(self, storage: StorageServer, cipher: Optional[CipherSuite] = None,
                 encrypt: bool = True) -> None:
        self.storage = storage
        self.encrypt = encrypt
        # Checkpoint payloads vary in size; they are encrypted with a stream
        # cipher sized per payload rather than padded to one block.
        self.cipher = cipher if cipher is not None else CipherSuite(block_size=64,
                                                                    enabled=encrypt)
        self.manifest = self._load_manifest()

    # ------------------------------------------------------------------ #
    # Sealing helpers (variable-length payloads)
    # ------------------------------------------------------------------ #
    def _seal(self, payload: bytes) -> bytes:
        if not self.encrypt:
            return payload
        suite = CipherSuite(key=self.cipher.key, block_size=len(payload) + 4,
                            authenticated=True, enabled=True)
        return suite.encrypt(payload)

    def _unseal(self, blob: bytes, plaintext_hint: int = 0) -> bytes:
        if not self.encrypt:
            return blob
        suite = CipherSuite(key=self.cipher.key,
                            block_size=len(blob) - 12 - 16,
                            authenticated=True, enabled=True)
        return suite.decrypt(blob)

    # ------------------------------------------------------------------ #
    # Manifest
    # ------------------------------------------------------------------ #
    def _load_manifest(self) -> CheckpointManifest:
        blob = self.storage.read(MANIFEST_KEY)
        if blob is None:
            return CheckpointManifest()
        return CheckpointManifest.deserialize(blob)

    def _store_manifest(self) -> None:
        self.storage.write(MANIFEST_KEY, self.manifest.serialize())

    # ------------------------------------------------------------------ #
    # Writing checkpoints
    # ------------------------------------------------------------------ #
    def write_checkpoint(self, epoch_id: int, components: Dict[str, bytes],
                         plain_components: Dict[str, bytes], full: bool,
                         access_count: int, eviction_count: int,
                         partition_counters: Optional[Dict[str, List[int]]] = None
                         ) -> CheckpointSizes:
        """Write one epoch's checkpoint; returns the component sizes.

        ``components`` are encrypted before storage; ``plain_components``
        (the valid/invalid map) are stored as-is.  Component names may carry
        a partition namespace prefix (``p<i>/position``); sizes are
        classified by the unprefixed suffix and summed across partitions.
        """
        items: Dict[str, bytes] = {}
        sizes = CheckpointSizes()
        for name, payload in components.items():
            sealed = self._seal(payload)
            items[_component_key(epoch_id, name, full)] = sealed
            if name.endswith("position"):
                sizes.position_bytes += len(sealed)
            elif name.endswith("metadata"):
                sizes.metadata_bytes += len(sealed)
            elif name.endswith("stash"):
                sizes.stash_bytes += len(sealed)
            else:
                sizes.extra_bytes += len(sealed)
        for name, payload in plain_components.items():
            items[_component_key(epoch_id, name, full)] = payload
            sizes.valid_map_bytes += len(payload)

        self.storage.write_batch(items)

        if full:
            self.manifest.last_full_epoch = epoch_id
            self.manifest.delta_epochs = []
        else:
            self.manifest.delta_epochs.append(epoch_id)
        self.manifest.last_epoch = epoch_id
        self.manifest.access_count = access_count
        self.manifest.eviction_count = eviction_count
        self.manifest.partition_counters = dict(partition_counters or {})
        self._store_manifest()
        return sizes

    # ------------------------------------------------------------------ #
    # Reading checkpoints (recovery)
    # ------------------------------------------------------------------ #
    def read_component(self, epoch_id: int, name: str, full: bool,
                       encrypted: bool = True) -> Optional[bytes]:
        blob = self.storage.read(_component_key(epoch_id, name, full))
        if blob is None:
            return None
        return self._unseal(blob) if encrypted else blob

    def chain(self) -> List[Dict[str, object]]:
        """The checkpoint chain to replay: the last full one plus its deltas."""
        entries: List[Dict[str, object]] = []
        if self.manifest.last_full_epoch >= 0:
            entries.append({"epoch": self.manifest.last_full_epoch, "full": True})
        for epoch in self.manifest.delta_epochs:
            entries.append({"epoch": epoch, "full": False})
        return entries

    def garbage_collect(self, keep_after_epoch: int) -> int:
        """Delete checkpoint objects older than ``keep_after_epoch``."""
        victims = [key for key in self.storage.keys()
                   if key.startswith("ckpt/") and key != MANIFEST_KEY
                   and int(key.split("/")[1]) < keep_after_epoch]
        if victims:
            self.storage.delete_batch(victims)
        return len(victims)
