"""Recovery manager: ties the WAL and checkpoint store to the proxy.

During normal operation the manager is invoked by the proxy at two points:

* before every read batch, to log the batch's access locations
  (:meth:`RecoveryManager.log_read_batch`);
* at every epoch boundary, to checkpoint the proxy metadata
  (:meth:`RecoveryManager.checkpoint_epoch`).

After a crash, :func:`recover_proxy` builds a fresh proxy from the untrusted
store: it restores the last committed epoch's metadata, replays the aborted
epoch's logged paths (so the adversary observes the same accesses), and
reports a per-component time breakdown — the quantities of Table 11b.

The untrusted tier may be a single server or a multi-server
:class:`~repro.storage.cluster.StorageCluster`: the WAL and the checkpoint
chain live on the metadata server (the cluster façade routes them there),
while path replay addresses each partition's own host server through the
partition's storage view — recovery therefore restores *every* server's
partitions from the one checkpoint chain.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import ObladiConfig
from repro.oram.crypto import CipherSuite
from repro.oram.position_map import PositionMap
from repro.oram.metadata import MetadataTable
from repro.oram.stash import Stash
from repro.recovery.checkpoint import CheckpointSizes, CheckpointStore
from repro.recovery.wal import WalRecord, WriteAheadLog
from repro.sim.clock import SimClock
from repro.sim.latency import get_latency_model
from repro.storage.backend import StorageServer


def derive_key(master_key: bytes, purpose: str) -> bytes:
    """Derive a purpose-specific key from the proxy's persistent master key."""
    return hashlib.sha256(master_key + purpose.encode("utf-8")).digest()


@dataclass
class DurabilityCosts:
    """Cost constants for durability traffic (simulated milliseconds)."""

    bandwidth_bytes_per_ms: float = 100_000.0      # ~100 MB/s to cloud storage
    decrypt_entry_ms: float = 0.0008               # per position-map entry
    decrypt_bucket_ms: float = 0.004               # per bucket of permutation metadata


@dataclass
class RecoveryResult:
    """Outcome of one recovery, including the Table 11b breakdown."""

    recovered_epoch: int
    aborted_epoch: int
    total_ms: float = 0.0
    network_ms: float = 0.0
    position_ms: float = 0.0
    permutation_ms: float = 0.0
    paths_ms: float = 0.0
    bytes_read: int = 0
    paths_replayed: int = 0
    position_entries: int = 0
    metadata_buckets: int = 0


class RecoveryManager:
    """Durability hooks used by :class:`repro.core.proxy.ObladiProxy`."""

    def __init__(self, storage: StorageServer, clock: SimClock, config: ObladiConfig,
                 master_key: Optional[bytes] = None,
                 costs: Optional[DurabilityCosts] = None) -> None:
        self.storage = storage
        self.clock = clock
        self.config = config
        self.master_key = master_key if master_key is not None else os.urandom(32)
        self.costs = costs if costs is not None else DurabilityCosts()
        self.latency = get_latency_model(config.backend)

        entry_capacity = max(8 * 1024, config.read_batch_size * 64)
        self.wal = WriteAheadLog(
            storage,
            cipher=CipherSuite(key=derive_key(self.master_key, "wal"),
                               block_size=entry_capacity, enabled=config.encrypt),
            encrypt=config.encrypt,
        )
        self.checkpoints = CheckpointStore(
            storage,
            cipher=CipherSuite(key=derive_key(self.master_key, "checkpoint"),
                               enabled=config.encrypt),
            encrypt=config.encrypt,
        )

        self.stats_wal_bytes = 0
        self.stats_checkpoint_bytes = 0
        self.stats_checkpoints = 0
        self.stats_durability_ms = 0.0

    # ------------------------------------------------------------------ #
    # Normal-operation hooks
    # ------------------------------------------------------------------ #
    def oram_cipher_key(self) -> bytes:
        """Key the proxy's ORAM cipher must use so recovery can decrypt blocks."""
        return derive_key(self.master_key, "oram-block")

    def log_read_batch(self, epoch_id: int, batch_index: int, keys: Sequence[str],
                       batch_size: int) -> None:
        """Durably log a read batch's access set before it executes."""
        record = WalRecord(epoch_id=epoch_id, batch_index=batch_index,
                           keys=list(keys), padded_size=batch_size)
        size = self.wal.append(record)
        self.stats_wal_bytes += size
        self._charge(size, requests=1)

    @staticmethod
    def _oram_components(oram, pad_position_entries: int, full: bool):
        """Serialise one ORAM's metadata; returns (encrypted, plain) blobs."""
        params = oram.params
        stash_pad = max(params.stash_bound, len(oram.stash))
        if full:
            position_blob = oram.position_map.serialize_full()
            metadata_blob = oram.metadata.serialize_full()
            valid_blob = oram.metadata.serialize_valid_map()
        else:
            position_blob = oram.position_map.serialize_delta(
                pad_to_entries=max(pad_position_entries, len(oram.position_map.dirty_entries())))
            metadata_blob = oram.metadata.serialize_delta()
            valid_blob = oram.metadata.serialize_valid_map(oram.metadata.dirty_buckets())
        encrypted = {
            "position": position_blob,
            "metadata": metadata_blob,
            "stash": oram.stash.serialize(stash_pad, params.block_size),
        }
        return encrypted, {"valid_map": valid_blob}

    def checkpoint_epoch(self, epoch_id: int, oram, pad_position_entries: int,
                         extra_state: Dict[str, bytes], full: bool) -> CheckpointSizes:
        """Checkpoint one ORAM's proxy metadata at an epoch boundary.

        Retained for single-tree callers; the proxy itself checkpoints its
        whole data layer through :meth:`checkpoint_data_layer`.
        """
        encrypted, plain = self._oram_components(oram, pad_position_entries, full)
        components = dict(extra_state)
        components.update(encrypted)

        sizes = self.checkpoints.write_checkpoint(
            epoch_id=epoch_id, components=components, plain_components=plain, full=full,
            access_count=oram.access_count, eviction_count=oram.eviction_count)
        oram.position_map.clear_dirty()
        oram.metadata.clear_dirty()
        self.wal.truncate_before(epoch_id, self.config.read_batches)

        self.stats_checkpoint_bytes += sizes.total_bytes
        self.stats_checkpoints += 1
        self._charge(sizes.total_bytes, requests=len(components) + len(plain) + 1)
        return sizes

    def checkpoint_data_layer(self, epoch_id: int, data_layer, full: bool) -> CheckpointSizes:
        """Checkpoint every partition of the proxy's data layer as one epoch.

        Component names are namespaced by the partition's prefix (partition 0
        of a single-tree layer uses no prefix, keeping the historical layout)
        and the manifest records per-partition access/eviction counters so
        recovery can restore each tree's schedule position.
        """
        components: Dict[str, bytes] = {}
        plain: Dict[str, bytes] = {}
        partition_counters: Dict[str, List[int]] = {}
        pad_entries = data_layer.position_delta_pad_entries
        for part in data_layer.partitions:
            prefix = part.component_prefix
            directory = part.directory
            components[prefix + "key_directory"] = (directory.serialize() if full
                                                    else directory.serialize_delta())
            encrypted, part_plain = self._oram_components(part.oram, pad_entries, full)
            for name, blob in encrypted.items():
                components[prefix + name] = blob
            for name, blob in part_plain.items():
                plain[prefix + name] = blob
            partition_counters[str(part.index)] = [part.oram.access_count,
                                                   part.oram.eviction_count]

        first = data_layer.partitions[0].oram
        sizes = self.checkpoints.write_checkpoint(
            epoch_id=epoch_id, components=components, plain_components=plain, full=full,
            access_count=first.access_count, eviction_count=first.eviction_count,
            partition_counters=(partition_counters
                                if len(data_layer.partitions) > 1 else None))
        for part in data_layer.partitions:
            part.oram.position_map.clear_dirty()
            part.oram.metadata.clear_dirty()
            part.directory.clear_dirty()
        self.wal.truncate_before(epoch_id, self.config.read_batches)

        self.stats_checkpoint_bytes += sizes.total_bytes
        self.stats_checkpoints += 1
        self._charge(sizes.total_bytes, requests=len(components) + len(plain) + 1)
        return sizes

    def _charge(self, total_bytes: int, requests: int) -> None:
        """Charge simulated time for synchronous durability traffic.

        The checkpoint components (and the WAL entry) are independent objects
        written concurrently, so the proxy waits one round trip plus the time
        to push the bytes at the available bandwidth.
        """
        del requests
        elapsed = (self.latency.write_rtt_ms
                   + total_bytes / self.costs.bandwidth_bytes_per_ms)
        self.clock.advance(elapsed)
        self.stats_durability_ms += elapsed

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def _restore_partition(self, part, result: RecoveryResult,
                           manifest) -> None:
        """Restore one partition's metadata from its namespaced components."""
        from repro.core.data_handler import KeyDirectory
        params = part.oram.params
        prefix = part.component_prefix
        position = PositionMap(params.num_leaves, rng=part.oram.rng)
        metadata = MetadataTable(params.num_buckets, params.z_real, params.s_dummies,
                                 rng=part.oram.rng)
        stash = Stash()
        directory = KeyDirectory()

        for entry in self.checkpoints.chain():
            epoch = int(entry["epoch"])
            full = bool(entry["full"])
            position_blob = self.checkpoints.read_component(epoch, prefix + "position", full)
            metadata_blob = self.checkpoints.read_component(epoch, prefix + "metadata", full)
            stash_blob = self.checkpoints.read_component(epoch, prefix + "stash", full)
            valid_blob = self.checkpoints.read_component(epoch, prefix + "valid_map", full,
                                                         encrypted=False)
            extra_blob = self.checkpoints.read_component(epoch, prefix + "key_directory", full)
            for blob in (position_blob, metadata_blob, stash_blob, valid_blob, extra_blob):
                if blob is not None:
                    result.bytes_read += len(blob)

            if position_blob is not None:
                if full:
                    position = PositionMap.deserialize_full(position_blob, rng=part.oram.rng)
                else:
                    position.apply_delta(position_blob)
            if metadata_blob is not None:
                if full:
                    metadata = MetadataTable.deserialize_full(metadata_blob, rng=part.oram.rng)
                else:
                    metadata.apply_delta(metadata_blob)
            if valid_blob is not None:
                metadata.apply_valid_map(valid_blob)
            if stash_blob is not None:
                stash = Stash.deserialize(stash_blob)
            if extra_blob is not None:
                if full:
                    directory = KeyDirectory.deserialize(extra_blob)
                else:
                    directory.apply_delta(extra_blob)

        part.oram.position_map = position
        part.oram.metadata = metadata
        part.oram.stash = stash
        counters = manifest.partition_counters.get(str(part.index))
        if counters is not None:
            part.oram.access_count, part.oram.eviction_count = counters
        else:
            part.oram.access_count = manifest.access_count
            part.oram.eviction_count = manifest.eviction_count
        if len(directory):
            part.handler.directory = directory

        result.position_entries += len(position)
        result.metadata_buckets += len(metadata.buckets_present())

    def restore_metadata(self, proxy) -> RecoveryResult:
        """Restore every data-layer partition from the checkpoint chain."""
        manifest = self.checkpoints.manifest
        result = RecoveryResult(recovered_epoch=manifest.last_epoch,
                                aborted_epoch=manifest.last_epoch + 1)

        for part in proxy.data_layer.partitions:
            self._restore_partition(part, result, manifest)
        proxy._epoch_counter = manifest.last_epoch + 1

        result.position_ms = result.position_entries * self.costs.decrypt_entry_ms
        result.permutation_ms = result.metadata_buckets * self.costs.decrypt_bucket_ms
        result.network_ms = (result.bytes_read / self.costs.bandwidth_bytes_per_ms
                             + 8 * self.latency.read_rtt_ms)
        return result

    def replay_aborted_epoch(self, proxy, result: RecoveryResult) -> None:
        """Re-issue the aborted epoch's logged read paths (paper §8).

        The position map restored from the checkpoint still maps every block
        to the leaf it had when the aborted epoch read it, so replaying the
        logged keys touches the same buckets the adversary already observed.
        Real blocks encountered are remapped and absorbed into the stash.
        """
        records = self.wal.read_epoch(result.aborted_epoch, self.config.read_batches)
        replay_keys: List[str] = []
        for record in records:
            replay_keys.extend(record.keys)
        physical_requests = 0
        for key in replay_keys:
            part = proxy.data_layer.partition_for_key(key)
            block_id = part.directory.block_id(key)
            plan = part.oram.plan_path_read(block_id)
            slot_keys = [slot.storage_key for slot in plan.slot_reads]
            fetched = part.storage.read_batch(slot_keys, parallelism=proxy.config.parallelism)
            physical_requests += len(slot_keys)
            result.bytes_read += sum(len(v) for v in fetched.values.values() if v)
            for slot in plan.slot_reads:
                blob = fetched.values.get(slot.storage_key)
                if blob is None or slot.expected_block is None:
                    continue
                from repro.oram.crypto import freshness_context
                bid, value = part.cipher.open_block(
                    blob, freshness_context(slot.bucket_id, slot.version, slot.slot_index))
                if bid is not None and bid not in part.oram.stash:
                    leaf = part.oram.position_map.lookup_or_assign(bid)
                    part.oram.stash.put(bid, leaf, value)
        result.paths_replayed = len(replay_keys)
        parallelism = self.latency.effective_parallelism(proxy.config.parallelism)
        waves = (physical_requests + parallelism - 1) // parallelism if physical_requests else 0
        result.paths_ms = waves * self.latency.read_rtt_ms + physical_requests * 0.002


def recover_proxy(storage: StorageServer, config: ObladiConfig, master_key: bytes,
                  clock: Optional[SimClock] = None):
    """Rebuild a proxy after a crash.

    Returns ``(proxy, RecoveryResult)``.  ``master_key`` is the persistent
    proxy secret (the only state assumed to survive the crash, along with the
    trusted epoch counter it protects).  A sharded proxy tier
    (``config.proxy_workers > 1``) comes back as a fresh coordinator whose
    workers start with empty epoch state — correct by epoch fate sharing:
    every worker's MVTSO/cache slice is epoch-scoped, so the durable state
    each worker serves is exactly what the shared checkpoint chain restores
    into the data layer below it.
    """
    from repro.proxytier import build_proxy

    clock = clock if clock is not None else getattr(storage, "clock", SimClock())
    proxy = build_proxy(config=config, storage=storage, clock=clock, master_key=master_key)
    manager: RecoveryManager = proxy.recovery
    if manager is None:
        raise ValueError("recovery requires a configuration with durability enabled")

    start_ms = clock.now_ms
    result = manager.restore_metadata(proxy)
    manager.replay_aborted_epoch(proxy, result)
    result.total_ms = (result.position_ms + result.permutation_ms + result.paths_ms
                       + result.network_ms)
    clock.advance(result.total_ms)
    del start_ms
    return proxy, result
