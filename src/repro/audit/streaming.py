"""Streaming serializability checking over committed-transaction batches.

The offline checker (:mod:`repro.concurrency.serializability`) rebuilds the
full direct serialization graph (DSG) and runs a DFS over the engine's entire
lifetime history — fine after a unit test, useless during an open-loop run
where the history grows without bound.  This module keeps the same verdict
*incrementally* and in *bounded memory*, following the outsider-verification
framing of Cobra ("Detecting Incorrect Behavior of Cloud Databases as an
Outsider", PAPERS.md): the engine is treated as an untrusted cloud database
and audited continuously from nothing but the ``CommittedTransaction``
records it reports.

Two mechanisms make that work:

* **Incremental cycle detection.**  :class:`StreamingSerializationGraph`
  maintains a topological order of the retained DSG nodes using the
  Pearce–Kelly ordering-based algorithm: inserting an edge that respects the
  current order is O(1); inserting a back edge triggers a DFS bounded by the
  affected order region, which either surfaces a cycle (a serializability
  violation, reported with the witness path) or locally reorders the region.
  No full-graph DFS ever runs.

* **Epoch-fenced garbage collection.**  Batches (engine waves / proxy
  epochs) *settle* once ``settle_lag`` newer batches have been ingested.
  Because every engine in this repo assigns globally monotonic timestamps
  (MVTSO ``begin`` for obladi/nopriv, the commit sequence for mysql), no
  correct future transaction can precede a settled one; each settled
  transaction is collapsed into a per-key :class:`KeyFrontier` (last
  committed writer, newest settled reader).  A later transaction that *does*
  reach behind a frontier — reading an overwritten version, or writing below
  the watermark — is reported as a concrete witness instead of an edge.
  Retained nodes therefore stay bounded by the active window; the auditor
  reports the high-water mark it actually needed.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.concurrency.transaction import CommittedTransaction

#: Sentinel larger than any real txn id, used to bisect past ties on a
#: timestamp when scanning per-key writer lists.
_MAX_ID = 2 ** 63


@dataclass(frozen=True)
class AuditViolation:
    """One serializability (or reads-latest discipline) violation witness.

    ``kind`` is one of:

    * ``"cycle"`` — inserting a dependency edge closed a cycle among the
      retained transactions; ``cycle`` holds the witness path ``(t0, ...,
      tn)`` meaning ``t0 -> t1 -> ... -> tn -> t0``.
    * ``"stale-read"`` — a transaction reported reading a version older than
      the settled frontier for the key (the version had already been
      overwritten by a settled writer).
    * ``"time-travel-write"`` — a transaction committed a write whose
      timestamp precedes the settled frontier for the key.
    * ``"watermark"`` — a transaction's timestamp is at or below the settled
      watermark (the engine's timestamp order went backwards).
    """

    kind: str
    txn_id: int
    key: Optional[str] = None
    cycle: Optional[Tuple[int, ...]] = None
    detail: str = ""


@dataclass(frozen=True)
class KeyFrontier:
    """Per-key summary of the settled (garbage-collected) prefix.

    ``last_writer_ts`` / ``last_writer_txn`` identify the newest settled
    committed writer of the key (``-1`` when no settled transaction wrote
    it); ``max_reader_ts`` is the newest settled transaction that read the
    key.  Together they are all the settled prefix contributes to future
    edges: a correct reader observes ``last_writer_ts`` (or a retained
    writer), and a correct writer's timestamp exceeds both fields.
    """

    last_writer_ts: int = -1
    last_writer_txn: int = -1
    max_reader_ts: int = -1


@dataclass(frozen=True)
class AuditReport:
    """Verdict and resource accounting snapshot from a streaming audit."""

    #: ``True`` when no violation has been detected so far.
    ok: bool
    #: All violations detected, in detection order.
    violations: Tuple[AuditViolation, ...]
    #: Transactions ingested over the auditor's lifetime.
    txns_ingested: int
    #: Transactions collapsed into frontiers by the garbage collector.
    txns_settled: int
    #: Batches (waves / epochs) ingested and settled.
    batches_ingested: int
    batches_settled: int
    #: Current retained DSG size.
    retained_nodes: int
    retained_edges: int
    #: Lifetime high-water marks of the retained DSG — the auditor's actual
    #: memory requirement, which stays bounded by the active window rather
    #: than growing with the history.
    max_retained_nodes: int
    max_retained_edges: int
    #: Number of keys with a settled frontier summary.
    frontier_keys: int
    #: Highest settled timestamp (``-1`` until the first batch settles).
    watermark_ts: int

    def first_cycle(self) -> Optional[Tuple[int, ...]]:
        """The first reported cycle witness, if any violation carries one."""
        for violation in self.violations:
            if violation.cycle is not None:
                return violation.cycle
        return None


@dataclass
class _Batch:
    """A sealed ingestion batch awaiting settlement."""

    txn_ids: List[int] = field(default_factory=list)
    min_ts: int = _MAX_ID
    max_ts: int = -1


class StreamingSerializationGraph:
    """Incremental DSG maintainer with epoch-fenced garbage collection.

    Feed committed transactions one batch (wave / epoch) at a time via
    :meth:`ingest_batch`; read the verdict at any point via :attr:`ok`,
    :attr:`violations` or :meth:`report`.  The graph keeps the acyclic
    invariant even after detecting a cycle (the closing edge is recorded as
    a violation and not inserted), so auditing continues past the first
    violation.
    """

    def __init__(self, settle_lag: int = 2) -> None:
        if settle_lag < 1:
            raise ValueError("settle_lag must be >= 1")
        #: Batches younger than this many newer batches stay fully retained.
        self.settle_lag = settle_lag
        self.violations: List[AuditViolation] = []
        # Retained DSG: nodes, adjacency, labels and the Pearce–Kelly order.
        self._txns: Dict[int, CommittedTransaction] = {}
        self._out: Dict[int, Set[int]] = {}
        self._in: Dict[int, Set[int]] = {}
        self._labels: Dict[Tuple[int, int], Set[str]] = {}
        self._ord: Dict[int, int] = {}
        self._next_ord = 0
        self._edge_count = 0
        # Per-key indexes over the retained window.
        self._writers: Dict[str, List[Tuple[int, int]]] = {}  # (ts, txn_id), sorted
        self._readers: Dict[str, List[Tuple[int, int]]] = {}  # (observed_ts, txn_id)
        # Settled prefix summaries.
        self._frontier: Dict[str, KeyFrontier] = {}
        self._pending: Deque[_Batch] = deque()
        self.watermark_ts = -1
        # Accounting.
        self.txns_ingested = 0
        self.txns_settled = 0
        self.batches_ingested = 0
        self.batches_settled = 0
        self.max_retained_nodes = 0
        self.max_retained_edges = 0

    # ------------------------------------------------------------------ #
    # Public surface
    # ------------------------------------------------------------------ #
    @property
    def ok(self) -> bool:
        """``True`` while no violation has been detected."""
        return not self.violations

    @property
    def retained_nodes(self) -> int:
        """Number of transactions currently retained in the graph."""
        return len(self._txns)

    @property
    def retained_edges(self) -> int:
        """Number of dependency edges currently retained."""
        return self._edge_count

    def frontier(self, key: str) -> Optional[KeyFrontier]:
        """The settled-prefix summary for ``key``, if any batch settled it."""
        return self._frontier.get(key)

    def edge_labels(self, src: int, dst: int) -> Set[str]:
        """Dependency labels (``ww:k`` / ``wr:k`` / ``rw:k``) on a retained edge."""
        return set(self._labels.get((src, dst), ()))

    def ingest_batch(self, txns: Sequence[CommittedTransaction]) -> None:
        """Ingest one batch of committed transactions and advance the GC.

        A batch is the unit of settlement: once ``settle_lag`` newer batches
        have been ingested (and the timestamp fence holds), its transactions
        are collapsed into per-key frontiers.  Empty batches are ignored so
        idle waves do not advance the fence.
        """
        if not txns:
            return
        batch = _Batch()
        for txn in txns:
            self._ingest_txn(txn)
            batch.txn_ids.append(txn.txn_id)
            batch.min_ts = min(batch.min_ts, txn.timestamp)
            batch.max_ts = max(batch.max_ts, txn.timestamp)
        self._pending.append(batch)
        self.batches_ingested += 1
        self._advance_watermark()

    def report(self) -> AuditReport:
        """Snapshot the current verdict and resource accounting."""
        return AuditReport(
            ok=self.ok,
            violations=tuple(self.violations),
            txns_ingested=self.txns_ingested,
            txns_settled=self.txns_settled,
            batches_ingested=self.batches_ingested,
            batches_settled=self.batches_settled,
            retained_nodes=self.retained_nodes,
            retained_edges=self.retained_edges,
            max_retained_nodes=self.max_retained_nodes,
            max_retained_edges=self.max_retained_edges,
            frontier_keys=len(self._frontier),
            watermark_ts=self.watermark_ts,
        )

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def _ingest_txn(self, txn: CommittedTransaction) -> None:
        """Insert one transaction: node, per-key index entries and edges."""
        if txn.txn_id in self._txns:
            self._violation("watermark", txn.txn_id,
                            detail=f"txn id {txn.txn_id} reported committed twice")
            return
        self.txns_ingested += 1
        self._txns[txn.txn_id] = txn
        self._out[txn.txn_id] = set()
        self._in[txn.txn_id] = set()
        self._ord[txn.txn_id] = self._next_ord
        self._next_ord += 1

        if txn.timestamp <= self.watermark_ts:
            self._violation(
                "watermark", txn.txn_id,
                detail=(f"timestamp {txn.timestamp} is at or below the settled "
                        f"watermark {self.watermark_ts}"))

        for key in sorted(txn.write_set):
            self._ingest_write(txn, key)
        for key in sorted(txn.read_set):
            self._ingest_read(txn, key, txn.read_set[key])

        self.max_retained_nodes = max(self.max_retained_nodes, len(self._txns))
        self.max_retained_edges = max(self.max_retained_edges, self._edge_count)

    def _ingest_write(self, txn: CommittedTransaction, key: str) -> None:
        frontier = self._frontier.get(key)
        if frontier is not None and (txn.timestamp < frontier.last_writer_ts
                                     or txn.timestamp < frontier.max_reader_ts):
            self._violation(
                "time-travel-write", txn.txn_id, key=key,
                detail=(f"write at ts {txn.timestamp} precedes settled frontier "
                        f"(last writer ts {frontier.last_writer_ts}, "
                        f"max reader ts {frontier.max_reader_ts})"))

        writers = self._writers.setdefault(key, [])
        entry = (txn.timestamp, txn.txn_id)
        pos = bisect.bisect_left(writers, entry)
        writers.insert(pos, entry)
        # ww edges with the retained timestamp-order neighbours.  An edge to
        # a farther writer is transitively implied, so consecutive pairs
        # suffice for acyclicity.
        if pos > 0:
            self._add_edge(writers[pos - 1][1], txn.txn_id, f"ww:{key}")
        if pos + 1 < len(writers):
            self._add_edge(txn.txn_id, writers[pos + 1][1], f"ww:{key}")
        # Anti-dependencies from retained readers of older versions, and
        # late-bound wr edges for readers that already reported observing
        # this writer (its record can arrive later in the same batch).
        for observed_ts, reader_id in list(self._readers.get(key, ())):
            if reader_id == txn.txn_id:
                continue
            if observed_ts < txn.timestamp:
                self._add_edge(reader_id, txn.txn_id, f"rw:{key}")
            elif observed_ts == txn.timestamp:
                self._add_edge(txn.txn_id, reader_id, f"wr:{key}")

    def _ingest_read(self, txn: CommittedTransaction, key: str, observed_ts: int) -> None:
        frontier = self._frontier.get(key)
        writers = self._writers.get(key, [])
        # wr edge from the retained writer of the observed version.
        writer_id = self._retained_writer_with_ts(writers, observed_ts)
        if writer_id is not None:
            if writer_id != txn.txn_id:
                self._add_edge(writer_id, txn.txn_id, f"wr:{key}")
        elif frontier is not None and observed_ts < frontier.last_writer_ts:
            # The observed version (possibly the initial one, -1) was already
            # overwritten by a settled writer: the engine failed the
            # reads-latest-committed discipline.  The offline DSG may or may
            # not be cyclic for a *pure* stale read, but for this repo's
            # engines (readers observe the latest committed version) it is
            # always a bug, and the settled writer is gone so a witness is
            # the only faithful report.
            self._violation(
                "stale-read", txn.txn_id, key=key,
                detail=(f"read observed writer ts {observed_ts} but a settled "
                        f"writer (ts {frontier.last_writer_ts}, "
                        f"txn {frontier.last_writer_txn}) overwrote it"))
        # Anti-dependency edges to every retained writer of a newer version
        # (same fan-out as the offline builder).
        pos = bisect.bisect_right(writers, (observed_ts, _MAX_ID))
        for _, writer in writers[pos:]:
            if writer != txn.txn_id:
                self._add_edge(txn.txn_id, writer, f"rw:{key}")
        self._readers.setdefault(key, []).append((observed_ts, txn.txn_id))

    @staticmethod
    def _retained_writer_with_ts(writers: List[Tuple[int, int]],
                                 ts: int) -> Optional[int]:
        pos = bisect.bisect_left(writers, (ts, -1))
        if pos < len(writers) and writers[pos][0] == ts:
            return writers[pos][1]
        return None

    # ------------------------------------------------------------------ #
    # Incremental cycle detection (Pearce–Kelly ordering)
    # ------------------------------------------------------------------ #
    def _add_edge(self, src: int, dst: int, label: str) -> None:
        """Insert ``src -> dst``, maintaining the topological order.

        If the edge would close a cycle it is recorded as a ``"cycle"``
        violation (with the witness path) and *not* inserted, preserving the
        acyclic invariant so later insertions remain meaningful.
        """
        if src == dst or src not in self._txns or dst not in self._txns:
            return
        if dst in self._out[src]:
            self._labels[(src, dst)].add(label)
            return
        lower, upper = self._ord[dst], self._ord[src]
        if lower < upper:
            # Back edge in the current order: search the affected region.
            path = self._forward_region(dst, src, upper)
            if path is not None:
                self._violation("cycle", src, key=label.split(":", 1)[-1],
                                cycle=tuple(path),
                                detail=f"edge {src}->{dst} ({label}) closes a cycle")
                return
            self._reorder(src, dst, lower, upper)
        self._out[src].add(dst)
        self._in[dst].add(src)
        self._labels.setdefault((src, dst), set()).add(label)
        self._edge_count += 1

    def _forward_region(self, start: int, target: int,
                        upper: int) -> Optional[List[int]]:
        """DFS from ``start`` over nodes ordered <= ``upper``.

        Returns the path ``[start, ..., target]`` if ``target`` is reachable
        (i.e. the candidate edge ``target -> start`` closes a cycle), else
        ``None``.  Visited nodes are remembered in ``self._visited_forward``
        for the subsequent reorder step.
        """
        parent: Dict[int, int] = {}
        visited = [start]
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in self._out[node]:
                if nxt in seen or self._ord[nxt] > upper:
                    continue
                parent[nxt] = node
                if nxt == target:
                    path = [target]
                    while path[-1] != start:
                        path.append(parent[path[-1]])
                    path.reverse()
                    self._visited_forward = visited
                    return path
                seen.add(nxt)
                visited.append(nxt)
                stack.append(nxt)
        self._visited_forward = visited
        return None

    def _reorder(self, src: int, dst: int, lower: int, upper: int) -> None:
        """Pearce–Kelly local reorder after a cycle-free back-edge insert."""
        forward = self._visited_forward  # nodes reachable from dst, ord <= upper
        backward = [src]
        seen = {src}
        stack = [src]
        while stack:
            node = stack.pop()
            for prv in self._in[node]:
                if prv not in seen and self._ord[prv] >= lower:
                    seen.add(prv)
                    backward.append(prv)
                    stack.append(prv)
        forward.sort(key=self._ord.__getitem__)
        backward.sort(key=self._ord.__getitem__)
        pool = sorted(self._ord[n] for n in forward + backward)
        for slot, node in zip(pool, backward + forward):
            self._ord[node] = slot

    # ------------------------------------------------------------------ #
    # Epoch-fenced garbage collection
    # ------------------------------------------------------------------ #
    def _advance_watermark(self) -> None:
        """Settle batches older than the lag window, fence permitting.

        The fence: a batch settles only when every younger retained batch
        has strictly larger timestamps.  Engines with monotonic timestamps
        always pass; if an engine violates monotonicity the watermark check
        flags it and settlement simply defers (safe, never unsound).
        """
        while len(self._pending) > self.settle_lag:
            batch = self._pending[0]
            younger_min = min((b.min_ts for b in list(self._pending)[1:]),
                              default=_MAX_ID)
            if younger_min <= batch.max_ts:
                break
            self._pending.popleft()
            self._settle_batch(batch)

    def _settle_batch(self, batch: _Batch) -> None:
        """Collapse a settled batch into per-key frontier summaries."""
        for txn_id in batch.txn_ids:
            txn = self._txns.pop(txn_id, None)
            if txn is None:
                continue
            for key in txn.write_set:
                self._discard_index_entry(self._writers, key,
                                          (txn.timestamp, txn_id))
                frontier = self._frontier.get(key, KeyFrontier())
                if txn.timestamp > frontier.last_writer_ts:
                    frontier = replace(frontier, last_writer_ts=txn.timestamp,
                                       last_writer_txn=txn_id)
                self._frontier[key] = frontier
            for key, observed_ts in txn.read_set.items():
                self._discard_index_entry(self._readers, key,
                                          (observed_ts, txn_id))
                frontier = self._frontier.get(key, KeyFrontier())
                if txn.timestamp > frontier.max_reader_ts:
                    frontier = replace(frontier, max_reader_ts=txn.timestamp)
                self._frontier[key] = frontier
            for dst in self._out.pop(txn_id, ()):
                self._in[dst].discard(txn_id)
                self._labels.pop((txn_id, dst), None)
                self._edge_count -= 1
            for src in self._in.pop(txn_id, ()):
                self._out[src].discard(txn_id)
                self._labels.pop((src, txn_id), None)
                self._edge_count -= 1
            del self._ord[txn_id]
            self.txns_settled += 1
        self.watermark_ts = max(self.watermark_ts, batch.max_ts)
        self.batches_settled += 1

    @staticmethod
    def _discard_index_entry(index: Dict[str, List[Tuple[int, int]]], key: str,
                             entry: Tuple[int, int]) -> None:
        entries = index.get(key)
        if not entries:
            return
        pos = bisect.bisect_left(entries, entry)
        if pos < len(entries) and entries[pos] == entry:
            entries.pop(pos)
        else:  # readers are append-ordered, not sorted: fall back to remove.
            try:
                entries.remove(entry)
            except ValueError:
                pass
        if not entries:
            del index[key]

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _violation(self, kind: str, txn_id: int, key: Optional[str] = None,
                   cycle: Optional[Tuple[int, ...]] = None, detail: str = "") -> None:
        self.violations.append(AuditViolation(kind=kind, txn_id=txn_id, key=key,
                                              cycle=cycle, detail=detail))
