"""Engine observers: the seam that lets auditors watch a run from outside.

Observers attach to any :class:`repro.api.engine.TransactionEngine` via
``engine.attach_observer(...)`` and receive callbacks as the engine commits
work.  They are strictly passive — they never touch the engine's simulated
clock or state, so a run with an observer attached produces byte-identical
``RunStats`` (same repr) to one without.

:class:`AuditingObserver` is the flagship observer: it feeds every newly
committed transaction into a :class:`~repro.audit.streaming.
StreamingSerializationGraph` one wave at a time and publishes the verdict on
``RunStats.audit`` when a closed- or open-loop run finishes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.audit.streaming import AuditReport, StreamingSerializationGraph
from repro.concurrency.transaction import CommittedTransaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.engine import TransactionEngine
    from repro.api.results import RunStats


class EngineObserver:
    """Base class for engine observers; every callback is a no-op.

    Subclasses override what they need.  Callbacks fire synchronously on the
    engine's thread; they must not mutate the engine or advance its clock.
    """

    def on_attach(self, engine: "TransactionEngine") -> None:
        """Called once when the observer is attached to ``engine``."""

    def on_wave(self, engine: "TransactionEngine", results: Sequence[object]) -> None:
        """Called after each submitted wave (one ``submit_many`` epoch)."""

    def on_run_end(self, engine: "TransactionEngine", stats: "RunStats") -> None:
        """Called when a closed- or open-loop driver finishes a run."""


class AuditingObserver(EngineObserver):
    """Streams an engine's committed history through the serializability auditor.

    The observer keeps a cursor into ``engine.committed_history`` and ingests
    only the suffix beyond it, so duplicate notifications (the engine notifies
    per wave, the loop drivers notify at run end) are harmless, and the cursor
    survives ``crash()``/``recover()`` because engines report a cumulative
    lifetime history.
    """

    def __init__(self, settle_lag: int = 2) -> None:
        self.graph = StreamingSerializationGraph(settle_lag=settle_lag)
        self.engine: Optional["TransactionEngine"] = None
        self._cursor = 0

    def on_attach(self, engine: "TransactionEngine") -> None:
        """Bind to ``engine``; auditing starts at its current history length."""
        self.engine = engine
        self._cursor = len(engine.committed_history)

    def on_wave(self, engine: "TransactionEngine", results: Sequence[object]) -> None:
        """Ingest commits the wave added to the engine's history."""
        self.ingest_pending(engine)

    def on_run_end(self, engine: "TransactionEngine", stats: "RunStats") -> None:
        """Ingest any tail commits and publish the verdict on ``stats.audit``."""
        self.ingest_pending(engine)
        stats.audit = self.report()

    def ingest_pending(self, engine: "TransactionEngine") -> List[CommittedTransaction]:
        """Feed history entries past the cursor into the streaming graph.

        Returns the newly ingested transactions (useful in tests); the batch
        boundary is the notification boundary, i.e. one engine wave.
        """
        history = engine.committed_history
        fresh = history[self._cursor:]
        self._cursor = len(history)
        if fresh:
            self.graph.ingest_batch(fresh)
        return fresh

    @property
    def ok(self) -> bool:
        """``True`` while the audited history is serializable so far."""
        return self.graph.ok

    def report(self) -> AuditReport:
        """Snapshot the auditor's verdict and retained-graph accounting."""
        return self.graph.report()

    def assert_ok(self) -> None:
        """Raise ``AssertionError`` with the first violation if auditing failed."""
        if not self.graph.ok:
            first = self.graph.violations[0]
            raise AssertionError(
                f"serializability audit failed: {first.kind} on txn "
                f"{first.txn_id} ({first.detail})")
