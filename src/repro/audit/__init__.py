"""Continuous serializability auditing (``repro.audit``).

This package treats an engine the way Cobra ("Detecting Incorrect Behavior
of Cloud Databases as an Outsider", PAPERS.md) treats a cloud database:
untrusted.  An :class:`AuditingObserver` attached via
``engine.attach_observer(...)`` streams the engine's committed history into
a :class:`StreamingSerializationGraph`, which maintains the direct
serialization graph *incrementally* (Pearce–Kelly ordering-based cycle
detection) and garbage-collects settled epochs into per-key
:class:`KeyFrontier` summaries, so auditing an arbitrarily long run needs
memory bounded by the active window — not the history.  The verdict and
retained-graph accounting land on ``RunStats.audit``.

:class:`BuggyEngine` (``create_engine("buggy", ...)``) is the adversarial
half: a correct engine whose *reported* history is corrupted with injected
stale reads, lost updates and write-skew cycles, proving the auditor
catches what the offline checker catches.

Quick start::

    from repro.api import EngineConfig, create_engine
    from repro.audit import AuditingObserver

    engine = create_engine("obladi", EngineConfig().with_seed(7))
    auditor = engine.attach_observer(AuditingObserver())
    stats = engine.run_closed_loop(source, total_transactions=256)
    assert stats.audit.ok
"""

from repro.audit.buggy import FAULT_KINDS, BuggyEngine, InjectedViolation
from repro.audit.observer import AuditingObserver, EngineObserver
from repro.audit.streaming import (AuditReport, AuditViolation, KeyFrontier,
                                   StreamingSerializationGraph)

__all__ = [
    "AuditReport",
    "AuditViolation",
    "AuditingObserver",
    "BuggyEngine",
    "EngineObserver",
    "FAULT_KINDS",
    "InjectedViolation",
    "KeyFrontier",
    "StreamingSerializationGraph",
]
