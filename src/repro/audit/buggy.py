"""The ``buggy`` engine: adversarial conformance mode for the auditor.

A verification tool is only as credible as the bugs it has been shown to
catch.  :class:`BuggyEngine` wraps a real (correct) Obladi engine and
corrupts the *reported* committed history — execution, timing and results
are untouched; only the ``CommittedTransaction`` records an auditor sees are
falsified — injecting the classic serializability violations:

* ``stale_read`` — a read-modify-write transaction's read provenance is
  rewritten to an older version, as if the engine served a stale replica.
* ``lost_update`` — a writer is claimed to have based its write on an old
  version of the key, i.e. the intermediate writer's update was lost.
* ``write_cycle`` — two same-wave writers of different keys are given
  crossed stale reads of each other's key (write skew), a 2-cycle of
  anti-dependencies.

Each injection produces a history whose offline direct serialization graph
is genuinely cyclic (asserted by the conformance tests), so the streaming
auditor must flag it either as a concrete cycle — while the partner
transactions are retained — or as a stale-read witness against the settled
frontier, never miss it.  The injections performed are recorded in
:attr:`BuggyEngine.injected` so tests can pair each one with a detection.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.engine import ProgramFactory, TransactionEngine
from repro.concurrency.transaction import CommittedTransaction

#: Violation kinds the wrapper knows how to inject.
FAULT_KINDS = ("stale_read", "lost_update", "write_cycle")


@dataclass(frozen=True)
class InjectedViolation:
    """One deliberate corruption of the reported history.

    ``txn_ids`` are the transactions whose records were falsified (one for
    ``stale_read``/``lost_update``, the crossed pair for ``write_cycle``);
    ``partners`` the uncorrupted transactions completing the dependency
    cycle; ``keys`` the keys whose read provenance was rewritten.
    """

    kind: str
    txn_ids: Tuple[int, ...]
    partners: Tuple[int, ...]
    keys: Tuple[str, ...]
    detail: str = ""


class BuggyEngine(TransactionEngine):
    """A correct engine whose reported history lies.

    Wraps an inner :class:`~repro.api.engine.TransactionEngine` (the factory
    uses an Obladi engine), delegates all execution to it, and maintains its
    own parallel ``committed_history`` in which roughly every ``period``-th
    committed transaction is corrupted with the next fault kind from
    ``kinds`` (cycling).  Corruptions are deterministic given ``seed``.
    """

    name = "buggy"

    def __init__(self, inner: TransactionEngine,
                 kinds: Optional[Sequence[str]] = None,
                 period: int = 4, seed: int = 0) -> None:
        kinds = tuple(kinds) if kinds else FAULT_KINDS
        unknown = [k for k in kinds if k not in FAULT_KINDS]
        if unknown:
            raise ValueError(f"unknown fault kinds {unknown}; valid: {FAULT_KINDS}")
        self.inner = inner
        self.supports_crash_recovery = inner.supports_crash_recovery
        self.kinds = kinds
        self.period = max(1, period)
        self.injected: List[InjectedViolation] = []
        self._rng = random.Random(seed)
        self._history: List[CommittedTransaction] = []
        self._cursor = 0
        # Per-key (timestamp, txn_id) writer index over the corrupted
        # history, for picking "older version" read targets.
        self._writers: Dict[str, List[Tuple[int, int]]] = {}
        self._since_fault = 0
        self._kind_index = 0

    # ------------------------------------------------------------------ #
    # Engine surface (delegation)
    # ------------------------------------------------------------------ #
    def load_initial_data(self, items: Dict[str, bytes]) -> None:
        """Bulk-load the dataset into the wrapped engine."""
        self.inner.load_initial_data(items)

    def submit(self, program):
        """Execute one program on the inner engine, then corrupt its record."""
        result = self.inner.submit(program)
        self._sync()
        self._notify_wave([result])
        return result

    def submit_many(self, programs: Sequence[ProgramFactory]):
        """Execute a wave on the inner engine, then corrupt its records."""
        results = self.inner.submit_many(programs)
        self._sync()
        self._notify_wave(results)
        return results

    def stats(self):
        """The inner engine's lifetime stats, relabelled with this engine's name."""
        stats = self.inner.stats()
        stats.engine = self.name
        return stats

    @property
    def clock(self):
        """The inner engine's simulated clock."""
        return self.inner.clock

    @property
    def committed_history(self) -> List[CommittedTransaction]:
        """The *corrupted* committed history (the lie under audit)."""
        return list(self._history)

    def conflict_strategy(self) -> str:
        """The inner engine's preferred conflict strategy (pass-through)."""
        return self.inner.conflict_strategy()

    def repair_many(self, factories):
        """Delegate driver-level repair to the inner engine (usually ``None``)."""
        return self.inner.repair_many(factories)

    def open_loop_wave_limit(self):
        """Delegate the wave-size cap to the wrapped engine."""
        return self.inner.open_loop_wave_limit()

    def record_open_loop_wave(self, queue_depth: int, dropped: int) -> None:
        """Forward open-loop queue accounting to the wrapped engine."""
        self.inner.record_open_loop_wave(queue_depth, dropped)

    def io_counters(self):
        """The wrapped engine's physical I/O counters."""
        return self.inner.io_counters()

    def partition_io_counters(self):
        """The wrapped engine's per-partition I/O counters."""
        return self.inner.partition_io_counters()

    def server_io_counters(self):
        """The wrapped engine's per-server I/O counters."""
        return self.inner.server_io_counters()

    def worker_op_counters(self):
        """The wrapped engine's per-proxy-worker CC op counters."""
        return self.inner.worker_op_counters()

    def cpu_ms(self) -> float:
        """The wrapped engine's simulated CPU."""
        return self.inner.cpu_ms()

    def crash(self) -> None:
        """Crash the wrapped engine (the corrupted history is retained)."""
        self.inner.crash()

    def recover(self):
        """Recover the wrapped engine; returns its recovery report."""
        return self.inner.recover()

    def close(self) -> None:
        """Close the wrapped engine."""
        self.inner.close()

    # ------------------------------------------------------------------ #
    # History corruption
    # ------------------------------------------------------------------ #
    def _sync(self) -> None:
        """Copy newly committed records, index them, and inject faults."""
        inner_history = self.inner.committed_history
        fresh = inner_history[self._cursor:]
        self._cursor = len(inner_history)
        if not fresh:
            return
        wave: List[CommittedTransaction] = []
        for txn in fresh:
            copy = CommittedTransaction(
                txn_id=txn.txn_id, timestamp=txn.timestamp, epoch=txn.epoch,
                read_set=dict(txn.read_set), write_set=dict(txn.write_set))
            wave.append(copy)
            for key in copy.write_set:
                bisect.insort(self._writers.setdefault(key, []),
                              (copy.timestamp, copy.txn_id))
        self._inject(wave)
        self._history.extend(wave)

    def _inject(self, wave: List[CommittedTransaction]) -> None:
        """Attempt one injection per ``period`` commits, cycling the kinds."""
        for txn in wave:
            self._since_fault += 1
            if self._since_fault < self.period:
                continue
            # Try the scheduled kind first, then the others, so a kind whose
            # preconditions this transaction cannot meet does not starve.
            for offset in range(len(self.kinds)):
                kind = self.kinds[(self._kind_index + offset) % len(self.kinds)]
                injected = self._try_kind(kind, txn, wave)
                if injected is not None:
                    self.injected.append(injected)
                    self._kind_index = (self._kind_index + offset + 1) % len(self.kinds)
                    self._since_fault = 0
                    break

    def _try_kind(self, kind: str, txn: CommittedTransaction,
                  wave: List[CommittedTransaction]) -> Optional[InjectedViolation]:
        if kind == "stale_read":
            return self._try_stale_read(txn)
        if kind == "lost_update":
            return self._try_lost_update(txn)
        return self._try_write_cycle(txn, wave)

    def _predecessor(self, key: str, ts: int) -> Tuple[int, int]:
        """Newest corrupted-history writer of ``key`` strictly before ``ts``.

        Returns ``(timestamp, txn_id)``, or ``(-1, -1)`` when ``ts`` is the
        oldest write (the initial version precedes it).
        """
        writers = self._writers.get(key, [])
        pos = bisect.bisect_left(writers, (ts, -1))
        if pos == 0:
            return (-1, -1)
        return writers[pos - 1]

    def _try_stale_read(self, txn: CommittedTransaction) -> Optional[InjectedViolation]:
        """Rewrite a read-modify-write read to the previous version.

        The transaction keeps writing the key but now claims it read the
        version *before* the one it really observed: an rw edge to the real
        observed writer plus the ww chain back to this transaction — a cycle
        the offline checker also sees.
        """
        candidates = sorted(
            key for key, observed in txn.read_set.items()
            if key in txn.write_set and observed >= 0
            and self._writer_with_ts(key, observed) is not None)
        if not candidates:
            return None
        key = self._rng.choice(candidates)
        observed = txn.read_set[key]
        stale_ts, _ = self._predecessor(key, observed)
        partner = self._writer_with_ts(key, observed)
        txn.read_set[key] = stale_ts
        return InjectedViolation(
            kind="stale_read", txn_ids=(txn.txn_id,),
            partners=(partner,),
            keys=(key,),
            detail=(f"txn {txn.txn_id} read {key!r}@{observed} rewritten "
                    f"to stale version {stale_ts}"))

    def _try_lost_update(self, txn: CommittedTransaction) -> Optional[InjectedViolation]:
        """Claim a write was based on an old version, losing the update between.

        Picks a written key with an earlier committed writer and fabricates
        (or rewrites) the read provenance to the version *before* that
        writer — the classic lost update: this transaction's write clobbers
        an update it never saw.  Blind-write keys are preferred.
        """
        eligible = []
        for key in sorted(txn.write_set):
            prev_ts, prev_id = self._predecessor(key, txn.timestamp)
            if prev_ts >= 0:
                eligible.append((key not in txn.read_set, key, prev_ts, prev_id))
        if not eligible:
            return None
        blind = [e for e in eligible if e[0]]
        _, key, prev_ts, prev_id = self._rng.choice(sorted(blind or eligible))
        stale_ts, _ = self._predecessor(key, prev_ts)
        txn.read_set[key] = stale_ts
        return InjectedViolation(
            kind="lost_update", txn_ids=(txn.txn_id,), partners=(prev_id,),
            keys=(key,),
            detail=(f"txn {txn.txn_id} claims it wrote {key!r} from version "
                    f"{stale_ts}, losing txn {prev_id}'s update at {prev_ts}"))

    def _try_write_cycle(self, txn: CommittedTransaction,
                         wave: List[CommittedTransaction]) -> Optional[InjectedViolation]:
        """Give two same-wave writers crossed stale reads (write skew).

        Each of the pair is claimed to have read the version of the other's
        key from before the other's write: two anti-dependency edges in
        opposite directions, the tightest possible cycle.
        """
        partners = [other for other in wave if other.txn_id != txn.txn_id]
        self._rng.shuffle(partners)
        for other in partners:
            first, second = sorted((txn, other), key=lambda t: t.timestamp)
            keys1 = sorted(set(first.write_set) - set(second.write_set))
            keys2 = sorted(set(second.write_set) - set(first.write_set))
            if not keys1 or not keys2:
                continue
            key1 = self._rng.choice(keys1)   # written by first only
            key2 = self._rng.choice(keys2)   # written by second only
            first.read_set[key2] = self._predecessor(key2, second.timestamp)[0]
            second.read_set[key1] = self._predecessor(key1, first.timestamp)[0]
            return InjectedViolation(
                kind="write_cycle",
                txn_ids=(first.txn_id, second.txn_id),
                partners=(first.txn_id, second.txn_id),
                keys=(key1, key2),
                detail=(f"txns {first.txn_id}/{second.txn_id} given crossed "
                        f"stale reads of {key1!r}/{key2!r}"))
        return None

    def _writer_with_ts(self, key: str, ts: int) -> Optional[int]:
        writers = self._writers.get(key, [])
        pos = bisect.bisect_left(writers, (ts, -1))
        if pos < len(writers) and writers[pos][0] == ts:
            return writers[pos][1]
        return None
