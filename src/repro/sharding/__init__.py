"""Partitioned oblivious storage: the :class:`DataLayer` seam.

The proxy's data path — key directory, version cache, Ring ORAM batches —
sits behind one interface with two implementations: a single tree
(:class:`SingleOramDataLayer`, the paper's proxy) and a hash-partitioned
set of parallel trees (:class:`PartitionedDataLayer`, the "sharded Obladi"
scale direction).  ``build_data_layer`` picks one from the configuration.

A partitioned layer also decides *where* each partition lives: with
``storage_servers > 1`` the partitions are hosted on distinct simulated
servers of a :class:`~repro.storage.cluster.StorageCluster`, each link timed
by its own latency model, and partition-batch fan-out is staggered across
``config.fanout_lanes`` lanes when partitions outnumber the proxy's
parallelism (:class:`FanoutStats` records the bounds).

This package shards the *untrusted* data path; its trusted-tier sibling is
``repro.proxytier`` (same keyed-sha256 partition map, applied to proxy
workers).  ``docs/ARCHITECTURE.md`` walks both layers.
"""

from repro.sharding.data_layer import (DataLayer, OramPartition,
                                       SingleOramDataLayer, key_partition)
from repro.sharding.partitioned import (FanoutStats, PartitionedDataLayer,
                                        build_data_layer)

__all__ = [
    "DataLayer",
    "OramPartition",
    "SingleOramDataLayer",
    "PartitionedDataLayer",
    "FanoutStats",
    "build_data_layer",
    "key_partition",
]
