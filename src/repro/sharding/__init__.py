"""Partitioned oblivious storage: the :class:`DataLayer` seam.

The proxy's data path — key directory, version cache, Ring ORAM batches —
sits behind one interface with two implementations: a single tree
(:class:`SingleOramDataLayer`, the paper's proxy) and a hash-partitioned
set of parallel trees (:class:`PartitionedDataLayer`, the "sharded Obladi"
scale direction).  ``build_data_layer`` picks one from the configuration.
"""

from repro.sharding.data_layer import (DataLayer, OramPartition,
                                       SingleOramDataLayer, key_partition)
from repro.sharding.partitioned import PartitionedDataLayer, build_data_layer

__all__ = [
    "DataLayer",
    "OramPartition",
    "SingleOramDataLayer",
    "PartitionedDataLayer",
    "build_data_layer",
    "key_partition",
]
