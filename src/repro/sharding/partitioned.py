"""N independent Ring ORAM partitions behind the :class:`DataLayer` seam.

The keyspace is hashed across ``config.shards`` partitions, each with its
own position map, stash, bucket metadata, key directory and storage
namespace (``p<i>/``).  An epoch read batch of ``b_read`` slots fans out as
``shards`` padded per-partition batches of ``ceil(b_read / shards)`` slots
each; the write batch fans out the same way.  Per-partition obliviousness is
preserved because every partition executes its full padded batch every round
regardless of how many real requests hashed to it.

**Server topology.**  Where each partition's namespace lives is the
``config.storage_servers`` knob: with one server (default) every namespace
is colocated on the shared store — the historical layout — while with a
:class:`~repro.storage.cluster.StorageCluster` partition ``i`` is hosted on
server ``i % M`` and its executor is timed against that *link*'s own latency
model, so a slow replica slows only the partitions it hosts and each server
records its own adversary trace.

**Timing.**  Partition batches are independent parallel work, but the proxy
has only ``config.parallelism`` request-driving slots.  While partitions fit
the available lanes the epoch's simulated batch duration is the *maximum*
over partitions — exactly how :mod:`repro.oram.dependency` treats the
independent slot fetches inside one batch.  When ``shards`` exceeds the
lanes the fan-out is *staggered*: the per-partition durations are
list-scheduled onto ``config.fanout_lanes`` lanes with a
:class:`~repro.sim.scheduler.ParallelScheduler`, so the makespan lands
between the ideal-parallel bound (max) and the serial bound (sum) —
strictly above the ideal bound whenever no single partition dominates.
Each partition's executor runs with a deferred clock and the layer advances
the shared :class:`~repro.sim.clock.SimClock` once per fan-out.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.config import ObladiConfig
from repro.core.version_cache import VersionCache
from repro.sharding.data_layer import DataLayer, build_partition, key_partition
from repro.sim.clock import SimClock
from repro.sim.scheduler import ParallelScheduler, ScheduledOp
from repro.storage.backend import StorageServer
from repro.storage.cluster import StorageCluster
from repro.storage.namespace import NamespacedStorage, partition_prefix


@dataclass
class FanoutStats:
    """Accumulated timing of partition-batch fan-outs (one epoch has several).

    ``ideal_ms`` sums the ideal-parallel bound (max partition duration per
    fan-out), ``serial_ms`` the serial bound (sum of partition durations),
    and ``actual_ms`` what the staggered schedule actually charged; with
    enough fan-out lanes ``actual_ms == ideal_ms``, and under lane pressure
    it lies between the two bounds — strictly above the ideal bound when the
    batches are comparable in size (one dominant batch can still hide the
    queued short ones inside its own span).
    """

    fanouts: int = 0
    staggered_fanouts: int = 0
    ideal_ms: float = 0.0
    serial_ms: float = 0.0
    actual_ms: float = 0.0

    def record(self, durations: List[float], actual_ms: float, lanes: int) -> None:
        """Fold one fan-out's per-partition ``durations`` into the totals."""
        self.fanouts += 1
        busy = sum(1 for d in durations if d > 0)
        if busy > lanes:
            self.staggered_fanouts += 1
        self.ideal_ms += max(durations, default=0.0)
        self.serial_ms += sum(durations)
        self.actual_ms += actual_ms


class PartitionedDataLayer(DataLayer):
    """Shard the keyspace across parallel Ring ORAM partitions."""

    def __init__(self, config: ObladiConfig, storage: StorageServer,
                 clock: SimClock, master_key: bytes) -> None:
        if config.shards < 2:
            raise ValueError("PartitionedDataLayer needs at least two shards; "
                             "use SingleOramDataLayer for one")
        self.config = config
        self.clock = clock
        self.base_storage = storage
        self.cache = VersionCache()
        self._fanout_scheduler = ParallelScheduler(config.fanout_lanes)
        self.fanout_stats = FanoutStats()
        cluster = storage if isinstance(storage, StorageCluster) else None
        if cluster is None and config.storage_servers > 1:
            raise ValueError(
                f"configuration asks for {config.storage_servers} storage "
                f"servers but the data layer was given a "
                f"{type(storage).__name__}; pass a "
                f"repro.storage.cluster.StorageCluster")
        # A cluster *larger* than the configuration is legal: live resharding
        # (``repro.elasticity``) grows the cluster before the target layer is
        # built and leaves departing servers idle after a scale-down, so a
        # layer must address servers through its *own* server count, never
        # the cluster's current size.
        if cluster is not None and cluster.num_servers < config.storage_servers:
            raise ValueError(
                f"storage cluster has {cluster.num_servers} servers but the "
                f"configuration asks for {config.storage_servers}")
        self.partitions = []
        for index in range(config.shards):
            # Reshard cutovers bump config.generation; the generation prefix
            # ("" at generation 0) namespaces this topology's partitions away
            # from the ones it replaced on the same storage.
            prefix = config.generation_prefix + partition_prefix(index)
            # Each partition addresses its own host server (round-robin on a
            # cluster, the shared store otherwise) through its namespace, and
            # its executor is timed against that link's latency model.
            if cluster is not None:
                host_index = index % config.storage_servers
                host = cluster.servers[host_index]
                link = cluster.link_models[host_index]
            else:
                host, link = storage, None
            view = NamespacedStorage(host, prefix)
            # Distinct deterministic RNG streams per partition (position
            # remapping, permutations); None stays None (non-reproducible).
            seed = None if config.seed is None else (
                config.seed + 1_000_003 * (index + 1) + config.partition_seed)
            self.partitions.append(
                build_partition(config, index, view, clock, master_key,
                                self.cache, component_prefix=prefix,
                                seed=seed, advance_clock=False, latency=link))
        self._partition_cache: Dict[str, int] = {}
        # Midstate of sha256 over the seed prefix: routing a cache-missed key
        # is one ``copy() + update(key)`` instead of re-hashing the prefix —
        # byte-identical to :func:`repro.sharding.data_layer.key_partition`.
        self._route_state = hashlib.sha256(
            f"{config.partition_seed}:".encode("utf-8"))

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def partition_of(self, key: str) -> int:
        """Index of the partition whose tree holds ``key`` (cached hash)."""
        index = self._partition_cache.get(key)
        if index is None:
            digest = self._route_state.copy()
            digest.update(key.encode("utf-8"))
            index = int.from_bytes(digest.digest()[:8], "big") % self.config.shards
            self._partition_cache[key] = index
        return index

    def partitions_of(self, keys: Iterable[str]) -> List[int]:
        """Partition index of every key — the batched :meth:`partition_of`.

        One pass over the routing cache; only cache misses touch the hash,
        each via the shared seed-prefix midstate.  Both epoch fan-outs route
        their whole padded batch through this single call.
        """
        cache = self._partition_cache
        shards = self.config.shards
        state = self._route_state
        out: List[int] = []
        for key in keys:
            index = cache.get(key)
            if index is None:
                digest = state.copy()
                digest.update(key.encode("utf-8"))
                index = int.from_bytes(digest.digest()[:8], "big") % shards
                cache[key] = index
            out.append(index)
        return out

    # ------------------------------------------------------------------ #
    # Epoch lifecycle
    # ------------------------------------------------------------------ #
    def _group_keys(self, keys) -> List[List[str]]:
        groups: List[List[str]] = [[] for _ in self.partitions]
        keys = list(keys)
        for key, index in zip(keys, self.partitions_of(keys)):
            groups[index].append(key)
        return groups

    def _group_items(self, items: Dict[str, bytes]) -> List[Dict[str, bytes]]:
        """Split a write batch into per-partition dicts (one routing call)."""
        groups: List[Dict[str, bytes]] = [{} for _ in self.partitions]
        keys = list(items)
        for key, index in zip(keys, self.partitions_of(keys)):
            groups[index][key] = items[key]
        return groups

    def begin_epoch(self) -> None:
        """Reset the version cache and every partition's per-epoch state."""
        self.cache.reset()
        for part in self.partitions:
            part.executor.begin_epoch()

    def abort_epoch(self) -> None:
        """Drop buffered writes and deferred time in every partition (crash path)."""
        self.cache.reset()
        for part in self.partitions:
            part.executor.abort_epoch()
            part.executor.take_deferred_ms()

    # ------------------------------------------------------------------ #
    # Batched physical operations (parallel across partitions)
    # ------------------------------------------------------------------ #
    def _advance_parallel(self) -> float:
        """Advance the shared clock by the fan-out's staggered makespan.

        Every partition's deferred batch duration is one unit of schedulable
        work; with at least as many fan-out lanes as busy partitions the
        makespan is simply the slowest partition (ideal parallel fan-out),
        otherwise the :class:`ParallelScheduler` staggers the batches across
        the available lanes.
        """
        durations = [part.executor.take_deferred_ms() for part in self.partitions]
        lanes = self.config.fanout_lanes
        busy = sum(1 for duration in durations if duration > 0)
        if busy <= lanes:
            makespan = max(durations, default=0.0)
        else:
            ops = [ScheduledOp(op_id=index, duration_ms=duration,
                               tag=f"partition-batch:{index}")
                   for index, duration in enumerate(durations) if duration > 0]
            makespan = self._fanout_scheduler.makespan_ms(ops)
        self.fanout_stats.record(durations, makespan, lanes)
        if makespan > 0:
            self.clock.advance(makespan)
        return makespan

    def execute_read_batch(self, keys, batch_size: int) -> Dict[str, Optional[bytes]]:
        """Fan one epoch read batch out as padded per-partition batches.

        ``batch_size`` is the configured epoch-level ``b_read``; every
        partition runs a padded batch of the per-partition quota, so the
        physical shape each partition's storage namespace observes is a
        function of the configuration alone.
        """
        del batch_size  # the per-partition quota is config-derived
        quota = self.config.partition_read_batch_size
        out: Dict[str, Optional[bytes]] = {}
        for part, group in zip(self.partitions, self._group_keys(keys)):
            out.update(part.handler.execute_read_batch(group, quota))
        self._advance_parallel()
        return out

    def execute_write_batch(self, items: Dict[str, bytes], batch_size: int) -> None:
        """Fan the epoch's write batch out as padded per-partition batches."""
        del batch_size
        quota = self.config.partition_write_batch_size
        for part, group in zip(self.partitions, self._group_items(items)):
            # A group can exceed the quota only through the proxy's overflow
            # fallback; pad to at least the quota, never truncate real writes.
            part.handler.execute_write_batch(group, max(quota, len(group)))
        self._advance_parallel()

    def flush(self) -> float:
        """Flush every partition's buffered rewrites; returns the fan-out makespan."""
        for part in self.partitions:
            part.handler.flush()
        return self._advance_parallel()

    def bulk_load(self, items: Dict[str, bytes]) -> None:
        """Load an initial dataset directly into each partition's tree."""
        groups: List[Dict[int, bytes]] = [{} for _ in self.partitions]
        for key, value in items.items():
            part = self.partition_for_key(key)
            groups[part.index][part.directory.block_id(key)] = value
        for part, blocks in zip(self.partitions, groups):
            part.oram.bulk_load(blocks)

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    @property
    def position_delta_pad_entries(self) -> int:
        """Per-partition padding bound for position-map delta checkpoints."""
        return self.config.partition_position_delta_pad_entries


def build_data_layer(config: ObladiConfig, storage: StorageServer,
                     clock: SimClock, master_key: bytes) -> DataLayer:
    """Construct the data layer the configuration asks for."""
    from repro.sharding.data_layer import SingleOramDataLayer
    if config.shards <= 1:
        return SingleOramDataLayer(config, storage, clock, master_key)
    return PartitionedDataLayer(config, storage, clock, master_key)
