"""N independent Ring ORAM partitions behind the :class:`DataLayer` seam.

The keyspace is hashed across ``config.shards`` partitions, each with its
own position map, stash, bucket metadata, key directory and storage
namespace (``p<i>/`` on the shared server).  An epoch read batch of
``b_read`` slots fans out as ``shards`` padded per-partition batches of
``ceil(b_read / shards)`` slots each; the write batch fans out the same
way.  Per-partition obliviousness is preserved because every partition
executes its full padded batch every round regardless of how many real
requests hashed to it.

Timing follows the paper's parallel-batch model (§7) one level up: the
partition batches are independent parallel work, so the epoch's simulated
batch duration is the *maximum* over partitions — exactly how
:mod:`repro.oram.dependency` already treats the independent slot fetches
inside one batch.  Each partition's executor therefore runs with a deferred
clock and the layer advances the shared :class:`~repro.sim.clock.SimClock`
once per fan-out.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import ObladiConfig
from repro.core.version_cache import VersionCache
from repro.sharding.data_layer import DataLayer, build_partition, key_partition
from repro.sim.clock import SimClock
from repro.storage.backend import StorageServer
from repro.storage.namespace import NamespacedStorage, partition_prefix


class PartitionedDataLayer(DataLayer):
    """Shard the keyspace across parallel Ring ORAM partitions."""

    def __init__(self, config: ObladiConfig, storage: StorageServer,
                 clock: SimClock, master_key: bytes) -> None:
        if config.shards < 2:
            raise ValueError("PartitionedDataLayer needs at least two shards; "
                             "use SingleOramDataLayer for one")
        self.config = config
        self.clock = clock
        self.base_storage = storage
        self.cache = VersionCache()
        self.partitions = []
        for index in range(config.shards):
            prefix = partition_prefix(index)
            view = NamespacedStorage(storage, prefix)
            # Distinct deterministic RNG streams per partition (position
            # remapping, permutations); None stays None (non-reproducible).
            seed = None if config.seed is None else (
                config.seed + 1_000_003 * (index + 1) + config.partition_seed)
            self.partitions.append(
                build_partition(config, index, view, clock, master_key,
                                self.cache, component_prefix=prefix,
                                seed=seed, advance_clock=False))
        self._partition_cache: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def partition_of(self, key: str) -> int:
        index = self._partition_cache.get(key)
        if index is None:
            index = key_partition(key, self.config.shards, self.config.partition_seed)
            self._partition_cache[key] = index
        return index

    def _group_keys(self, keys) -> List[List[str]]:
        groups: List[List[str]] = [[] for _ in self.partitions]
        for key in keys:
            groups[self.partition_of(key)].append(key)
        return groups

    # ------------------------------------------------------------------ #
    # Epoch lifecycle
    # ------------------------------------------------------------------ #
    def begin_epoch(self) -> None:
        self.cache.reset()
        for part in self.partitions:
            part.executor.begin_epoch()

    def abort_epoch(self) -> None:
        self.cache.reset()
        for part in self.partitions:
            part.executor.abort_epoch()
            part.executor.take_deferred_ms()

    # ------------------------------------------------------------------ #
    # Batched physical operations (parallel across partitions)
    # ------------------------------------------------------------------ #
    def _advance_parallel(self) -> float:
        """Advance the shared clock by the slowest partition's deferred work."""
        makespan = max(part.executor.take_deferred_ms() for part in self.partitions)
        if makespan > 0:
            self.clock.advance(makespan)
        return makespan

    def execute_read_batch(self, keys, batch_size: int) -> Dict[str, Optional[bytes]]:
        """Fan one epoch read batch out as padded per-partition batches.

        ``batch_size`` is the configured epoch-level ``b_read``; every
        partition runs a padded batch of the per-partition quota, so the
        physical shape each partition's storage namespace observes is a
        function of the configuration alone.
        """
        del batch_size  # the per-partition quota is config-derived
        quota = self.config.partition_read_batch_size
        out: Dict[str, Optional[bytes]] = {}
        for part, group in zip(self.partitions, self._group_keys(keys)):
            out.update(part.handler.execute_read_batch(group, quota))
        self._advance_parallel()
        return out

    def execute_write_batch(self, items: Dict[str, bytes], batch_size: int) -> None:
        del batch_size
        quota = self.config.partition_write_batch_size
        groups: List[Dict[str, bytes]] = [{} for _ in self.partitions]
        for key, value in items.items():
            groups[self.partition_of(key)][key] = value
        for part, group in zip(self.partitions, groups):
            # A group can exceed the quota only through the proxy's overflow
            # fallback; pad to at least the quota, never truncate real writes.
            part.handler.execute_write_batch(group, max(quota, len(group)))
        self._advance_parallel()

    def flush(self) -> float:
        for part in self.partitions:
            part.handler.flush()
        return self._advance_parallel()

    def bulk_load(self, items: Dict[str, bytes]) -> None:
        groups: List[Dict[int, bytes]] = [{} for _ in self.partitions]
        for key, value in items.items():
            part = self.partition_for_key(key)
            groups[part.index][part.directory.block_id(key)] = value
        for part, blocks in zip(self.partitions, groups):
            part.oram.bulk_load(blocks)

    # ------------------------------------------------------------------ #
    # Durability
    # ------------------------------------------------------------------ #
    @property
    def position_delta_pad_entries(self) -> int:
        return self.config.partition_position_delta_pad_entries


def build_data_layer(config: ObladiConfig, storage: StorageServer,
                     clock: SimClock, master_key: bytes) -> DataLayer:
    """Construct the data layer the configuration asks for."""
    from repro.sharding.data_layer import SingleOramDataLayer
    if config.shards <= 1:
        return SingleOramDataLayer(config, storage, clock, master_key)
    return PartitionedDataLayer(config, storage, clock, master_key)
