"""The proxy's data-layer seam: one interface, single or partitioned ORAM.

Before this seam existed the proxy hard-wired one ``RingOram`` + one
``EpochBatchExecutor`` + one ``DataHandler``; every layer that touched the
data path (core, recovery, api) assumed exactly one tree.  The
:class:`DataLayer` interface is the single place that assumption now lives:

* :class:`SingleOramDataLayer` is today's behavior, extracted — one tree,
  one executor that advances the shared clock directly;
* :class:`~repro.sharding.partitioned.PartitionedDataLayer` hashes the
  keyspace across N independent Ring ORAM partitions and simulates their
  epoch batches as parallel work (epoch batch duration = max over
  partitions).

The proxy, the recovery manager and the engine adapters program against
this interface only; future backends (e.g. a remote oblivious store, a
different ORAM construction) plug in here.
"""

from __future__ import annotations

import abc
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import ObladiConfig
from repro.core.data_handler import DataHandler, KeyDirectory
from repro.core.version_cache import VersionCache
from repro.oram.batch_executor import EpochBatchExecutor
from repro.oram.crypto import CipherSuite
from repro.oram.ring_oram import RingOram
from repro.sim.clock import SimClock
from repro.storage.backend import StorageServer


def key_partition(key: str, shards: int, partition_seed: int = 0) -> int:
    """Deterministic partition of an application key.

    Uses a keyed cryptographic hash rather than Python's builtin ``hash``
    (which is salted per process): the mapping must survive proxy crashes so
    recovery re-routes every key to the partition that holds it.
    """
    if shards <= 1:
        return 0
    digest = hashlib.sha256(f"{partition_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


@dataclass
class OramPartition:
    """One Ring ORAM partition: tree, executor, key directory, storage view."""

    index: int
    oram: RingOram
    executor: EpochBatchExecutor
    handler: DataHandler
    storage: StorageServer
    component_prefix: str       # checkpoint-component namespace ("" or "p<i>/")

    @property
    def directory(self) -> KeyDirectory:
        """The partition's application-key → block-id directory."""
        return self.handler.directory

    @property
    def cipher(self) -> CipherSuite:
        """The partition's ORAM block cipher (per-partition derived key)."""
        return self.oram.cipher


class DataLayer(abc.ABC):
    """What the proxy needs from its oblivious data path, per epoch.

    Implementations own one or more :class:`OramPartition` objects plus the
    epoch's shared :class:`VersionCache`; they are responsible for routing
    application keys to partitions and for modelling how much simulated time
    an epoch's physical batches take on the shared clock.
    """

    config: ObladiConfig
    clock: SimClock
    cache: VersionCache
    partitions: List[OramPartition]

    # -- routing -------------------------------------------------------- #
    @abc.abstractmethod
    def partition_of(self, key: str) -> int:
        """Index of the partition that holds ``key``."""

    def partition_for_key(self, key: str) -> OramPartition:
        """The partition object that holds ``key``."""
        return self.partitions[self.partition_of(key)]

    @property
    def num_partitions(self) -> int:
        """How many ORAM partitions this layer runs."""
        return len(self.partitions)

    # -- epoch lifecycle ------------------------------------------------ #
    @abc.abstractmethod
    def begin_epoch(self) -> None:
        """Reset per-epoch state in every partition and the version cache."""

    @abc.abstractmethod
    def abort_epoch(self) -> None:
        """Drop buffered writes and the version cache (crash path)."""

    # -- batched physical operations ------------------------------------ #
    @abc.abstractmethod
    def execute_read_batch(self, keys, batch_size: int) -> Dict[str, Optional[bytes]]:
        """Run one epoch read batch (padded) and install base values."""

    @abc.abstractmethod
    def execute_write_batch(self, items: Dict[str, bytes], batch_size: int) -> None:
        """Write the epoch's final values as one padded write batch."""

    @abc.abstractmethod
    def flush(self) -> float:
        """Flush buffered bucket rewrites; returns the simulated duration."""

    @abc.abstractmethod
    def bulk_load(self, items: Dict[str, bytes]) -> None:
        """Load an initial dataset directly into the tree(s)."""

    # -- cache / stash lookups (single reads while serving transactions) - #
    def has_cached(self, key: str) -> bool:
        """Whether the epoch's version cache holds a base value for ``key``."""
        return self.cache.has_base(key)

    def cached_value(self, key: str) -> Optional[bytes]:
        """The cached base value of ``key`` (``None`` when absent)."""
        return self.cache.base_value(key)

    def stash_resident(self, key: str) -> bool:
        """Whether ``key`` currently sits in its partition's stash."""
        return self.partition_for_key(key).handler.stash_resident(key)

    def stash_value(self, key: str) -> Optional[bytes]:
        """The stash-resident value of ``key`` (``None`` when absent)."""
        return self.partition_for_key(key).handler.stash_value(key)

    # -- accounting ----------------------------------------------------- #
    def per_partition_physical(self) -> List[Tuple[int, int]]:
        """Lifetime ``(physical_reads, physical_writes)`` per partition."""
        return [(p.executor.lifetime_stats.physical_reads,
                 p.executor.lifetime_stats.physical_writes)
                for p in self.partitions]

    def lifetime_physical(self) -> Tuple[int, int]:
        """Aggregate lifetime ``(physical_reads, physical_writes)``."""
        per = self.per_partition_physical()
        return (sum(r for r, _ in per), sum(w for _, w in per))

    # -- durability ----------------------------------------------------- #
    @property
    def position_delta_pad_entries(self) -> int:
        """Per-partition padding bound for position-map delta checkpoints."""
        return self.config.position_delta_pad_entries


def _oram_cipher_key(master_key: bytes, partition_index: int, shards: int) -> bytes:
    """Per-partition ORAM block key derived from the proxy's master key.

    A single-ORAM layer keeps the historical ``"oram-block"`` purpose string
    so existing deployments (and the recovery path) stay compatible;
    partitions get distinct keys so identical (bucket, version, slot)
    freshness contexts in different partitions never share a keystream.
    """
    from repro.recovery.manager import derive_key
    if shards <= 1:
        return derive_key(master_key, "oram-block")
    return derive_key(master_key, f"oram-block/p{partition_index}")


def build_partition(config: ObladiConfig, index: int, storage: StorageServer,
                    clock: SimClock, master_key: bytes, cache: VersionCache,
                    component_prefix: str, seed: Optional[int],
                    advance_clock: bool, latency=None) -> OramPartition:
    """Assemble one partition's ORAM stack over (a view of) the storage.

    ``latency`` is the latency model of the proxy-to-server *link* this
    partition's physical batches travel; it defaults to the configured
    backend and differs per partition only when the partitions live on
    distinct storage servers (see :mod:`repro.storage.cluster`).
    """
    shards = config.shards
    oram_config = config.oram if shards <= 1 else config.oram.for_partition(shards)
    params = oram_config.to_parameters()
    cipher = CipherSuite(key=_oram_cipher_key(master_key, index, shards),
                         block_size=params.block_size + 8,
                         enabled=config.encrypt)
    oram = RingOram(params, storage, cipher=cipher, clock=clock,
                    cost_model=config.cost_model, seed=seed,
                    dummiless_writes=config.dummiless_writes)
    executor = EpochBatchExecutor(oram,
                                  latency=latency if latency is not None
                                  else config.backend,
                                  parallelism=config.parallelism,
                                  cost_model=config.cost_model,
                                  buffer_writes=config.buffer_writes,
                                  advance_clock=advance_clock)
    handler = DataHandler(oram, executor, cache=cache)
    return OramPartition(index=index, oram=oram, executor=executor, handler=handler,
                         storage=storage, component_prefix=component_prefix)


class SingleOramDataLayer(DataLayer):
    """Today's data path, extracted: one Ring ORAM tree over the raw store."""

    def __init__(self, config: ObladiConfig, storage: StorageServer,
                 clock: SimClock, master_key: bytes) -> None:
        self.config = config
        self.clock = clock
        self.cache = VersionCache()
        # Generation 0 addresses the raw store directly (the historical
        # layout, byte-for-byte); later generations — topologies installed by
        # a reshard cutover — namespace their tree under "g<g>/" so they
        # coexist with the generation they replaced on the same storage.
        gen_prefix = config.generation_prefix
        view = storage
        if gen_prefix:
            from repro.storage.namespace import NamespacedStorage
            view = NamespacedStorage(storage, gen_prefix)
        self.partitions = [build_partition(config, 0, view, clock, master_key,
                                           self.cache, component_prefix=gen_prefix,
                                           seed=config.seed, advance_clock=True)]
        self._handler = self.partitions[0].handler

    def partition_of(self, key: str) -> int:
        return 0

    def begin_epoch(self) -> None:
        self._handler.begin_epoch()

    def abort_epoch(self) -> None:
        self._handler.abort_epoch()

    def execute_read_batch(self, keys, batch_size: int) -> Dict[str, Optional[bytes]]:
        return self._handler.execute_read_batch(keys, batch_size)

    def execute_write_batch(self, items: Dict[str, bytes], batch_size: int) -> None:
        self._handler.execute_write_batch(items, batch_size)

    def flush(self) -> float:
        return self._handler.flush()

    def bulk_load(self, items: Dict[str, bytes]) -> None:
        blocks = {self._handler.directory.block_id(key): value
                  for key, value in items.items()}
        self.partitions[0].oram.bulk_load(blocks)
