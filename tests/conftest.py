"""Shared fixtures for the test suite.

The fixtures deliberately use tiny ORAM trees and small batches so that unit
and integration tests run quickly while still exercising evictions, early
reshuffles and multi-epoch behaviour.
"""

from __future__ import annotations

import pytest

from repro.core.client import Read, Write
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.proxy import ObladiProxy
from repro.oram.crypto import CipherSuite
from repro.oram.parameters import RingOramParameters
from repro.oram.ring_oram import RingOram
from repro.sim.clock import SimClock
from repro.storage.memory import InMemoryStorageServer


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def storage(clock):
    """In-memory storage with the LAN ``server`` latency model."""
    return InMemoryStorageServer(latency="server", clock=clock)


@pytest.fixture
def tiny_params():
    """A tiny but non-trivial Ring ORAM: Z=4, S=6, A=3, depth 4."""
    return RingOramParameters(num_blocks=64, z_real=4, s_dummies=6, evict_rate=3,
                              depth=4, block_size=64)


@pytest.fixture
def tiny_oram(tiny_params, storage, clock):
    """A sequential Ring ORAM over the tiny tree with a deterministic seed."""
    cipher = CipherSuite(block_size=tiny_params.block_size + 8)
    return RingOram(tiny_params, storage, cipher=cipher, clock=clock, seed=42)


@pytest.fixture
def small_config():
    """A small Obladi proxy configuration used by core/integration tests."""
    return ObladiConfig(
        oram=RingOramConfig(num_blocks=256, z_real=4, block_size=128),
        read_batches=3,
        read_batch_size=8,
        write_batch_size=8,
        batch_interval_ms=5.0,
        backend="server",
        durability=False,
        seed=7,
    )


@pytest.fixture
def durable_config():
    """Like ``small_config`` but with durability (WAL + checkpoints) enabled."""
    return ObladiConfig(
        oram=RingOramConfig(num_blocks=256, z_real=4, block_size=128),
        read_batches=3,
        read_batch_size=8,
        write_batch_size=8,
        batch_interval_ms=5.0,
        backend="server",
        durability=True,
        checkpoint_frequency=2,
        seed=7,
    )


@pytest.fixture
def proxy(small_config):
    """An Obladi proxy preloaded with 30 keys ``k0..k29`` -> ``value-i``."""
    proxy = ObladiProxy(small_config)
    proxy.load_initial_data({f"k{i}": f"value-{i}".encode() for i in range(30)})
    return proxy


@pytest.fixture
def durable_proxy(durable_config):
    proxy = ObladiProxy(durable_config)
    proxy.load_initial_data({f"k{i}": f"value-{i}".encode() for i in range(30)})
    return proxy


def read_program(key):
    """A transaction program that reads one key and returns its value."""

    def program():
        value = yield Read(key)
        return value

    return program


def write_program(key, value):
    """A transaction program that writes one key."""

    def program():
        yield Write(key, value)
        return True

    return program


def read_write_program(read_key, write_key, value):
    """Read one key, then write another; returns the read value."""

    def program():
        observed = yield Read(read_key)
        yield Write(write_key, value)
        return observed

    return program
