"""Tests for the serialization-graph checker."""

import pytest

from repro.concurrency import (CommittedTransaction, SerializationGraph,
                               build_serialization_graph, check_recoverable,
                               check_serializable)


def txn(txn_id, ts, reads=None, writes=None, epoch=0):
    return CommittedTransaction(
        txn_id=txn_id, timestamp=ts, epoch=epoch,
        read_set=dict(reads or {}), write_set=dict(writes or {}),
    )


class TestGraphPrimitives:
    def test_self_edges_ignored(self):
        graph = SerializationGraph()
        graph.add_edge(1, 1, "ww:k")
        assert graph.is_acyclic()

    def test_simple_cycle_detected(self):
        graph = SerializationGraph()
        graph.add_edge(1, 2, "wr:a")
        graph.add_edge(2, 1, "rw:b")
        cycle = graph.find_cycle()
        assert cycle is not None
        assert set(cycle) >= {1, 2}

    def test_acyclic_graph_topological_order(self):
        graph = SerializationGraph()
        graph.add_edge(1, 2, "ww:a")
        graph.add_edge(2, 3, "ww:a")
        order = graph.topological_order()
        assert order.index(1) < order.index(2) < order.index(3)

    def test_topological_order_is_smallest_id_first(self):
        """When several nodes are simultaneously ready the order must be
        deterministic: the heap always yields the smallest txn id first,
        regardless of insertion order."""
        graph = SerializationGraph()
        # A diamond inserted in scrambled order: 9 -> {7, 3, 5} -> 1.
        for src, dst in [(9, 7), (9, 3), (5, 1), (9, 5), (3, 1), (7, 1)]:
            graph.add_edge(src, dst, "ww:k")
        assert graph.topological_order() == [9, 3, 5, 7, 1]

    def test_topological_order_without_edges_sorts_ids(self):
        graph = SerializationGraph()
        for node in (4, 2, 9, 1):
            graph.add_node(node)
        assert graph.topological_order() == [1, 2, 4, 9]

    def test_topological_order_raises_on_cycle(self):
        graph = SerializationGraph()
        graph.add_edge(1, 2, "x")
        graph.add_edge(2, 1, "y")
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_long_cycle_detected(self):
        graph = SerializationGraph()
        for i in range(5):
            graph.add_edge(i, (i + 1) % 5, "e")
        assert not graph.is_acyclic()


class TestHistoryChecking:
    def test_serial_history_is_serializable(self):
        history = [
            txn(1, 1, writes={"a": b"1"}),
            txn(2, 2, reads={"a": 1}, writes={"a": b"2"}),
            txn(3, 3, reads={"a": 2}),
        ]
        ok, cycle = check_serializable(history)
        assert ok and cycle is None

    def test_write_skew_style_cycle_detected(self):
        # T1 reads b then writes a; T2 reads a then writes b, each reading the
        # initial version: classic non-serializable interleaving.
        history = [
            txn(1, 1, reads={"b": -1}, writes={"a": b"1"}),
            txn(2, 2, reads={"a": -1}, writes={"b": b"2"}),
        ]
        graph = build_serialization_graph(history)
        # rw edges in both directions -> cycle.
        assert not graph.is_acyclic()

    def test_disjoint_transactions_are_serializable(self):
        history = [txn(i, i, writes={f"k{i}": b"v"}) for i in range(1, 6)]
        ok, _ = check_serializable(history)
        assert ok

    def test_wr_edge_built_from_observed_writer(self):
        history = [
            txn(1, 1, writes={"a": b"1"}),
            txn(2, 2, reads={"a": 1}),
        ]
        graph = build_serialization_graph(history)
        assert 2 in graph.edges[1]
        assert "wr:a" in graph.edge_labels[(1, 2)]

    def test_rw_edge_to_later_writer(self):
        history = [
            txn(1, 1, reads={"a": -1}),
            txn(2, 2, writes={"a": b"2"}),
        ]
        graph = build_serialization_graph(history)
        assert 2 in graph.edges[1]

    def test_empty_history_serializable(self):
        ok, _ = check_serializable([])
        assert ok


class TestRecoverability:
    def test_reading_aborted_writer_flagged(self):
        history = [txn(2, 2, reads={"a": 5})]
        assert not check_recoverable(history, aborted_writer_ts=[5])

    def test_clean_history_recoverable(self):
        history = [txn(2, 2, reads={"a": 1})]
        assert check_recoverable(history, aborted_writer_ts=[5])
