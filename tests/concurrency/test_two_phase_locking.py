"""Tests for the strict-2PL lock manager."""

import pytest

from repro.concurrency.two_phase_locking import DeadlockError, LockManager, LockMode


@pytest.fixture
def locks():
    return LockManager()


class TestLockModes:
    def test_shared_locks_compatible(self, locks):
        assert locks.acquire(1, "k", LockMode.SHARED)
        assert locks.acquire(2, "k", LockMode.SHARED)

    def test_exclusive_blocks_shared(self, locks):
        assert locks.acquire(1, "k", LockMode.EXCLUSIVE)
        assert not locks.acquire(2, "k", LockMode.SHARED)

    def test_shared_blocks_exclusive(self, locks):
        assert locks.acquire(1, "k", LockMode.SHARED)
        assert not locks.acquire(2, "k", LockMode.EXCLUSIVE)

    def test_reacquire_held_lock(self, locks):
        assert locks.acquire(1, "k", LockMode.EXCLUSIVE)
        assert locks.acquire(1, "k", LockMode.EXCLUSIVE)
        assert locks.acquire(1, "k", LockMode.SHARED)

    def test_upgrade_when_sole_holder(self, locks):
        assert locks.acquire(1, "k", LockMode.SHARED)
        assert locks.acquire(1, "k", LockMode.EXCLUSIVE)

    def test_upgrade_blocked_by_other_sharer(self, locks):
        locks.acquire(1, "k", LockMode.SHARED)
        locks.acquire(2, "k", LockMode.SHARED)
        assert not locks.acquire(1, "k", LockMode.EXCLUSIVE)

    def test_locks_held_listing(self, locks):
        locks.acquire(1, "a", LockMode.SHARED)
        locks.acquire(1, "b", LockMode.EXCLUSIVE)
        assert locks.locks_held(1) == {"a", "b"}


class TestReleaseAndWaiters:
    def test_release_grants_waiter(self, locks):
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        assert not locks.acquire(2, "k", LockMode.EXCLUSIVE)
        granted = locks.release_all(1)
        assert (2, "k", LockMode.EXCLUSIVE) in granted
        assert locks.holders("k") == {2: LockMode.EXCLUSIVE}

    def test_release_grants_multiple_shared_waiters(self, locks):
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        locks.acquire(2, "k", LockMode.SHARED)
        locks.acquire(3, "k", LockMode.SHARED)
        granted = locks.release_all(1)
        grantees = {txn for txn, _key, _mode in granted}
        assert grantees == {2, 3}

    def test_release_all_clears_waits_for(self, locks):
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        locks.acquire(2, "k", LockMode.EXCLUSIVE)
        locks.release_all(2)
        assert not locks.is_waiting(2)

    def test_stats_lock_waits(self, locks):
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        locks.acquire(2, "k", LockMode.SHARED)
        assert locks.stats_lock_waits == 1


class TestDeadlockDetection:
    def test_two_party_deadlock_detected(self, locks):
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        assert not locks.acquire(1, "b", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError) as err:
            locks.acquire(2, "a", LockMode.EXCLUSIVE)
        assert set(err.value.cycle) >= {1, 2}
        assert locks.stats_deadlocks == 1

    def test_three_party_deadlock_detected(self, locks):
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        locks.acquire(3, "c", LockMode.EXCLUSIVE)
        locks.acquire(1, "b", LockMode.EXCLUSIVE)
        locks.acquire(2, "c", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(3, "a", LockMode.EXCLUSIVE)

    def test_no_false_deadlock_on_simple_wait(self, locks):
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        assert not locks.acquire(2, "a", LockMode.EXCLUSIVE)
        # Transaction 2 waits but no cycle exists.
        assert locks.is_waiting(2)

    def test_victim_can_retry_after_holder_releases(self, locks):
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)
        locks.acquire(1, "b", LockMode.EXCLUSIVE)
        with pytest.raises(DeadlockError):
            locks.acquire(2, "a", LockMode.EXCLUSIVE)
        # Victim (2) releases everything; 1 gets b and can finish.
        granted = locks.release_all(2)
        assert (1, "b", LockMode.EXCLUSIVE) in granted
