"""Tests for version chains."""

import pytest

from repro.concurrency.versions import Version, VersionChain, VersionStore


class TestVersionChain:
    def test_latest_visible_respects_timestamp(self):
        chain = VersionChain(key="k")
        chain.insert(Version("k", b"v1", writer_ts=1))
        chain.insert(Version("k", b"v5", writer_ts=5))
        assert chain.latest_visible(reader_ts=3).value == b"v1"
        assert chain.latest_visible(reader_ts=7).value == b"v5"
        assert chain.latest_visible(reader_ts=0) is None

    def test_aborted_versions_invisible(self):
        chain = VersionChain(key="k")
        version = Version("k", b"dirty", writer_ts=2, aborted=True)
        chain.insert(version)
        assert chain.latest_visible(reader_ts=10) is None

    def test_uncommitted_versions_are_visible(self):
        # MVTSO deliberately exposes uncommitted writes to younger readers.
        chain = VersionChain(key="k")
        chain.insert(Version("k", b"dirty", writer_ts=2, committed=False))
        assert chain.latest_visible(reader_ts=3).value == b"dirty"

    def test_insert_keeps_chain_sorted(self):
        chain = VersionChain(key="k")
        for ts in (5, 1, 3):
            chain.insert(Version("k", str(ts).encode(), writer_ts=ts))
        assert chain.writer_timestamps() == [1, 3, 5]

    def test_latest_committed(self):
        chain = VersionChain(key="k")
        chain.insert(Version("k", b"a", writer_ts=1, committed=True))
        chain.insert(Version("k", b"b", writer_ts=2, committed=False))
        assert chain.latest_committed().value == b"a"

    def test_read_marker_only_advances(self):
        chain = VersionChain(key="k")
        chain.record_read(5)
        chain.record_read(3)
        assert chain.read_marker_ts == 5

    def test_remove_aborted(self):
        chain = VersionChain(key="k")
        chain.insert(Version("k", b"a", writer_ts=1, aborted=True))
        chain.insert(Version("k", b"b", writer_ts=2))
        assert chain.remove_aborted() == 1
        assert len(chain) == 1


class TestVersionStore:
    def test_chain_created_on_demand(self):
        store = VersionStore()
        chain = store.chain("x")
        assert chain.key == "x"
        assert "x" in store

    def test_get_chain_returns_none_for_unknown(self):
        assert VersionStore().get_chain("missing") is None

    def test_latest_committed_values(self):
        store = VersionStore()
        store.chain("a").insert(Version("a", b"1", writer_ts=1, committed=True))
        store.chain("a").insert(Version("a", b"2", writer_ts=2, committed=True))
        store.chain("b").insert(Version("b", b"x", writer_ts=3, committed=False))
        values = store.latest_committed_values()
        assert values == {"a": b"2"}

    def test_drop_aborted_counts_total(self):
        store = VersionStore()
        store.chain("a").insert(Version("a", b"1", writer_ts=1, aborted=True))
        store.chain("b").insert(Version("b", b"2", writer_ts=2, aborted=True))
        assert store.drop_aborted() == 2

    def test_clear(self):
        store = VersionStore()
        store.chain("a")
        store.clear()
        assert len(store) == 0

    def test_keys_sorted(self):
        store = VersionStore()
        for key in ("c", "a", "b"):
            store.chain(key)
        assert store.keys() == ["a", "b", "c"]
