"""Tests for transaction records and lifecycle."""

import pytest

from repro.concurrency.transaction import (AbortReason, CommittedTransaction,
                                           TransactionRecord, TransactionStatus)


def make_record(txn_id=1, ts=1):
    return TransactionRecord(txn_id=txn_id, timestamp=ts, epoch=0, start_time_ms=10.0)


class TestLifecycle:
    def test_initial_state_is_active(self):
        record = make_record()
        assert record.is_active
        assert not record.is_finished

    def test_commit_flow(self):
        record = make_record()
        record.request_commit()
        assert record.status is TransactionStatus.COMMIT_REQUESTED
        record.mark_committed(now_ms=25.0)
        assert record.is_finished
        assert record.latency_ms() == pytest.approx(15.0)

    def test_abort_flow(self):
        record = make_record()
        record.mark_aborted(AbortReason.WRITE_CONFLICT, now_ms=12.0)
        assert record.status is TransactionStatus.ABORTED
        assert record.abort_reason is AbortReason.WRITE_CONFLICT

    def test_cannot_commit_after_abort(self):
        record = make_record()
        record.mark_aborted(AbortReason.USER)
        with pytest.raises(ValueError):
            record.mark_committed()

    def test_cannot_abort_after_commit(self):
        record = make_record()
        record.request_commit()
        record.mark_committed()
        with pytest.raises(ValueError):
            record.mark_aborted(AbortReason.USER)

    def test_request_commit_twice_rejected(self):
        record = make_record()
        record.request_commit()
        with pytest.raises(ValueError):
            record.request_commit()

    def test_latency_requires_finished(self):
        record = make_record()
        with pytest.raises(ValueError):
            record.latency_ms()

    def test_latency_never_negative(self):
        record = make_record()
        record.mark_aborted(AbortReason.USER, now_ms=5.0)   # before start_time
        assert record.latency_ms() == 0.0


class TestReadWriteTracking:
    def test_record_read_tracks_dependency(self):
        record = make_record(txn_id=2)
        record.record_read("k", writer_ts=7, writer_txn=9)
        assert record.read_set["k"] == 7
        assert 9 in record.dependencies

    def test_own_writes_not_a_dependency(self):
        record = make_record(txn_id=2)
        record.record_read("k", writer_ts=2, writer_txn=2)
        assert record.dependencies == set()

    def test_record_write(self):
        record = make_record()
        record.record_write("k", b"v")
        assert record.write_set["k"] == b"v"
        assert record.operations == 1

    def test_operations_counter(self):
        record = make_record()
        record.record_read("a", -1)
        record.record_write("b", b"1")
        record.record_read("c", -1)
        assert record.operations == 3


class TestCommittedTransaction:
    def test_from_record_copies_sets(self):
        record = make_record(txn_id=4, ts=4)
        record.record_read("a", 1)
        record.record_write("b", b"2")
        committed = CommittedTransaction.from_record(record)
        record.record_write("c", b"3")
        assert committed.write_set == {"b": b"2"}
        assert committed.read_set == {"a": 1}
        assert committed.txn_id == 4
