"""Tests for multiversion timestamp ordering."""

import pytest

from repro.concurrency.mvtso import MVTSOManager, WriteConflictError
from repro.concurrency.transaction import AbortReason, TransactionStatus


@pytest.fixture
def mgr():
    return MVTSOManager()


class TestTimestamps:
    def test_timestamps_are_unique_and_increasing(self, mgr):
        timestamps = [mgr.begin(epoch=0).timestamp for _ in range(10)]
        assert timestamps == sorted(timestamps)
        assert len(set(timestamps)) == 10

    def test_txn_ids_unique(self, mgr):
        ids = {mgr.begin(epoch=0).txn_id for _ in range(10)}
        assert len(ids) == 10


class TestReadsAndWrites:
    def test_read_own_write(self, mgr):
        txn = mgr.begin(epoch=0)
        mgr.write(txn, "k", b"v")
        value, writer = mgr.read(txn, "k")
        assert value == b"v"
        assert writer is None

    def test_read_returns_latest_older_version(self, mgr):
        t1 = mgr.begin(epoch=0)
        t2 = mgr.begin(epoch=0)
        t3 = mgr.begin(epoch=0)
        mgr.write(t1, "k", b"v1")
        mgr.write(t3, "k", b"v3")
        value, _ = mgr.read(t2, "k")
        assert value == b"v1"

    def test_read_of_unwritten_key_is_none(self, mgr):
        txn = mgr.begin(epoch=0)
        value, writer = mgr.read(txn, "missing")
        assert value is None and writer is None

    def test_read_uncommitted_registers_dependency(self, mgr):
        writer = mgr.begin(epoch=0)
        reader = mgr.begin(epoch=0)
        mgr.write(writer, "k", b"dirty")
        value, writer_id = mgr.read(reader, "k")
        assert value == b"dirty"
        assert writer_id == writer.txn_id
        assert writer.txn_id in reader.dependencies
        assert reader.txn_id in writer.dependents

    def test_late_write_aborts(self, mgr):
        old = mgr.begin(epoch=0)
        young = mgr.begin(epoch=0)
        mgr.read(young, "k")        # read marker advances to young's timestamp
        with pytest.raises(WriteConflictError):
            mgr.write(old, "k", b"late")

    def test_write_after_older_reader_is_allowed(self, mgr):
        old = mgr.begin(epoch=0)
        young = mgr.begin(epoch=0)
        mgr.read(old, "k")
        version = mgr.write(young, "k", b"ok")
        assert version.writer_ts == young.timestamp

    def test_operations_on_finished_transaction_rejected(self, mgr):
        txn = mgr.begin(epoch=0)
        txn.request_commit()
        mgr.commit(txn)
        with pytest.raises(ValueError):
            mgr.read(txn, "k")
        with pytest.raises(ValueError):
            mgr.write(txn, "k", b"v")


class TestCommitAbort:
    def test_commit_marks_versions_committed(self, mgr):
        txn = mgr.begin(epoch=0)
        mgr.write(txn, "k", b"v")
        txn.request_commit()
        mgr.commit(txn)
        assert txn.status is TransactionStatus.COMMITTED
        chain = mgr.store.get_chain("k")
        assert chain.latest_committed().value == b"v"

    def test_abort_marks_versions_aborted(self, mgr):
        txn = mgr.begin(epoch=0)
        mgr.write(txn, "k", b"v")
        mgr.abort(txn, AbortReason.USER)
        chain = mgr.store.get_chain("k")
        assert chain.latest_visible(reader_ts=999) is None

    def test_cascading_abort(self, mgr):
        writer = mgr.begin(epoch=0)
        reader = mgr.begin(epoch=0)
        downstream = mgr.begin(epoch=0)
        mgr.write(writer, "k", b"dirty")
        mgr.read(reader, "k")
        mgr.write(reader, "j", b"derived")
        mgr.read(downstream, "j")
        cascaded = mgr.abort(writer, AbortReason.WRITE_CONFLICT)
        assert reader.status is TransactionStatus.ABORTED
        assert downstream.status is TransactionStatus.ABORTED
        assert {t.txn_id for t in cascaded} == {reader.txn_id, downstream.txn_id}
        assert mgr.stats_aborts_cascade >= 2

    def test_cannot_commit_with_aborted_dependency(self, mgr):
        writer = mgr.begin(epoch=0)
        reader = mgr.begin(epoch=0)
        mgr.write(writer, "k", b"dirty")
        mgr.read(reader, "k")
        mgr.abort(writer, AbortReason.USER)
        assert not mgr.can_commit(reader)

    def test_can_commit_when_dependency_committed(self, mgr):
        writer = mgr.begin(epoch=0)
        reader = mgr.begin(epoch=0)
        mgr.write(writer, "k", b"v")
        mgr.read(reader, "k")
        writer.request_commit()
        mgr.commit(writer)
        assert mgr.can_commit(reader)

    def test_commit_after_dependency_aborts_is_impossible(self, mgr):
        writer = mgr.begin(epoch=0)
        reader = mgr.begin(epoch=0)
        mgr.write(writer, "k", b"v")
        mgr.read(reader, "k")
        mgr.abort(writer, AbortReason.USER)
        # The cascade already aborted the reader; committing it must fail.
        assert reader.status is TransactionStatus.ABORTED
        with pytest.raises(ValueError):
            mgr.commit(reader)

    def test_abort_is_idempotent(self, mgr):
        txn = mgr.begin(epoch=0)
        mgr.abort(txn, AbortReason.USER)
        assert mgr.abort(txn, AbortReason.USER) == []

    def test_reset_epoch_state_clears_chains(self, mgr):
        txn = mgr.begin(epoch=0)
        mgr.write(txn, "k", b"v")
        mgr.reset_epoch_state()
        assert len(mgr.store) == 0

    def test_active_and_committed_listing(self, mgr):
        a = mgr.begin(epoch=0)
        b = mgr.begin(epoch=0)
        a.request_commit()
        mgr.commit(a)
        assert a in mgr.committed_transactions()
        assert b in mgr.active_transactions()
