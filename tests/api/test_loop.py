"""Direct unit suite for the shared load-generation drivers.

The closed-loop driver (:func:`repro.api.loop.run_closed_loop`) and the
open-loop driver (:func:`repro.api.openloop.run_open_loop`) are exercised
end-to-end by every engine run, but their *scheduling decisions* — which
wave a retry lands in, when abort accounting stops re-queueing, how counter
deltas handle engines that grow entries mid-run, which wave an arrival on an
exact epoch boundary joins — were previously only observable indirectly.
This file drives both loops against a scripted fake engine whose outcomes
and timing are fully deterministic, so each decision is pinned on its own.
"""

from typing import Dict, List, Optional, Sequence, Tuple

import pytest

from repro.api import (DEFAULT_RETRY_POLICY, DeterministicArrivals,
                       PoissonArrivals, RetryPolicy, RunStats,
                       TransactionEngine, run_closed_loop, run_open_loop)
from repro.api.loop import _counter_deltas
from repro.api.openloop import as_arrival_process
from repro.core.client import TransactionResult
from repro.sim.clock import SimClock


# --------------------------------------------------------------------------- #
# Scripted fake engine
# --------------------------------------------------------------------------- #
def tagged_source(tags: Sequence[str]):
    """A factory source drawing tagged no-op factories in order."""
    remaining = list(tags)

    def source():
        tag = remaining.pop(0)

        def factory():
            return None

        factory.tag = tag
        return factory

    return source


class ScriptedEngine(TransactionEngine):
    """Deterministic fake engine: outcomes come from a per-tag script.

    ``script[tag]`` is the list of verdicts for that tag's successive
    attempts (``True`` = commit); missing tags and exhausted lists commit.
    Every ``submit_many`` wave advances the clock by ``wave_ms`` and records
    the wave's tags and dispatch time, so tests can assert on the exact
    wave composition the drivers produced.
    """

    name = "scripted"

    def __init__(self, script: Optional[Dict[str, List[bool]]] = None,
                 wave_ms: float = 10.0,
                 wave_limit: Optional[int] = None) -> None:
        self._clock = SimClock()
        self.script = dict(script or {})
        self.wave_ms = wave_ms
        self.wave_limit = wave_limit
        self.waves: List[List[str]] = []
        self.wave_times: List[float] = []
        self._attempts: Dict[str, int] = {}
        self._next_txn_id = 0
        # Counter scripts: entry lists may *grow* between waves, like an
        # engine whose topology expands after a recovery.
        self.partition_counters: List[Tuple[int, int]] = []
        self.per_wave_partition_growth: List[List[Tuple[int, int]]] = []

    def load_initial_data(self, items) -> None:
        """No storage: the fake engine only scripts verdicts."""

    def submit(self, program) -> TransactionResult:
        """Run a single program as a one-element wave."""
        return self.submit_many([program])[0]

    def submit_many(self, programs) -> List[TransactionResult]:
        """Resolve one wave according to the script; advance ``wave_ms``."""
        dispatch_ms = self._clock.now_ms
        self._clock.advance(self.wave_ms)
        if self.per_wave_partition_growth:
            growth = self.per_wave_partition_growth.pop(0)
            for index, (reads, writes) in enumerate(growth):
                if index < len(self.partition_counters):
                    old_r, old_w = self.partition_counters[index]
                    self.partition_counters[index] = (old_r + reads, old_w + writes)
                else:
                    self.partition_counters.append((reads, writes))
        tags = [getattr(p, "tag", "?") for p in programs]
        self.waves.append(tags)
        self.wave_times.append(dispatch_ms)
        results = []
        for tag in tags:
            attempt = self._attempts.get(tag, 0)
            self._attempts[tag] = attempt + 1
            verdicts = self.script.get(tag, [])
            committed = verdicts[attempt] if attempt < len(verdicts) else True
            results.append(TransactionResult(
                txn_id=self._next_txn_id, committed=committed,
                return_value=tag if committed else None,
                abort_reason=None if committed else "scripted",
                latency_ms=self.wave_ms, epoch=len(self.waves) - 1))
            self._next_txn_id += 1
        return results

    def stats(self) -> RunStats:
        """Minimal lifetime stats (the loops never read them)."""
        return RunStats(engine=self.name)

    @property
    def clock(self) -> SimClock:
        """The fake engine's private clock."""
        return self._clock

    def partition_io_counters(self) -> List[Tuple[int, int]]:
        """The scripted per-partition counters (may grow between waves)."""
        return list(self.partition_counters)

    def open_loop_wave_limit(self) -> Optional[int]:
        """Scripted wave cap (None = drain up to ``clients``)."""
        return self.wave_limit


# --------------------------------------------------------------------------- #
# Retry/backoff policy
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_backoff_is_jitter_plus_linear_slope(self):
        policy = RetryPolicy(backoff_slope_ms=0.5, jitter_step_ms=0.1,
                             jitter_buckets=4)
        # jitter = (txn_id % 4) * 0.1; slope = 0.5 * attempts
        assert policy.backoff_ms(txn_id=0, attempts=0) == pytest.approx(0.0)
        assert policy.backoff_ms(txn_id=6, attempts=0) == pytest.approx(0.2)
        assert policy.backoff_ms(txn_id=6, attempts=3) == pytest.approx(0.2 + 1.5)

    def test_jitter_phase_decorrelates_colliding_transactions(self):
        policy = DEFAULT_RETRY_POLICY
        delays = {policy.backoff_ms(txn_id, attempts=1)
                  for txn_id in range(policy.jitter_buckets)}
        assert len(delays) == policy.jitter_buckets

    def test_backoff_grows_with_attempts(self):
        policy = DEFAULT_RETRY_POLICY
        series = [policy.backoff_ms(txn_id=3, attempts=n) for n in range(4)]
        assert series == sorted(series)
        assert series[0] < series[-1]

    def test_default_policy_is_the_dataclass_default(self):
        assert DEFAULT_RETRY_POLICY == RetryPolicy()


# --------------------------------------------------------------------------- #
# Closed-loop scheduling
# --------------------------------------------------------------------------- #
class TestClosedLoopScheduling:
    def test_retries_are_batched_before_fresh_draws(self):
        """An aborted attempt re-enters the *next* wave ahead of fresh work."""
        engine = ScriptedEngine(script={"B": [False, True], "C": [False, False]})
        run = run_closed_loop(engine, tagged_source(["A", "B", "C", "D"]),
                              total_transactions=4, clients=3, max_retries=1)
        # Wave 1 fills three slots with fresh draws; wave 2 leads with the
        # two retries and has one slot left for the last fresh draw.
        assert engine.waves == [["A", "B", "C"], ["B", "C", "D"]]
        assert run.committed == 3           # A, B (on retry), D
        assert run.aborted == 3             # B once, C twice
        assert run.retries == 2
        assert run.committed + run.aborted == 4 + run.retries
        assert len(run.results) == 6
        assert len(run.latencies_ms) == run.committed

    def test_abort_exhaustion_stops_requeueing(self):
        """After ``max_retries`` re-queues the abort is final: the slot
        draws fresh work and the program never reappears."""
        engine = ScriptedEngine(script={"X": [False] * 10})
        run = run_closed_loop(engine, tagged_source(["X"]),
                              total_transactions=1, clients=1, max_retries=2)
        assert engine.waves == [["X"], ["X"], ["X"]]   # 1 fresh + 2 retries
        assert run.committed == 0
        assert run.aborted == 3
        assert run.retries == 2
        assert run.latencies_ms == []
        assert all(r.abort_reason == "scripted" for r in run.results)

    def test_wave_size_is_capped_by_clients(self):
        engine = ScriptedEngine()
        run = run_closed_loop(engine, tagged_source(list("ABCDE")),
                              total_transactions=5, clients=2)
        assert [len(wave) for wave in engine.waves] == [2, 2, 1]
        assert run.epochs == 3

    def test_max_batches_bounds_pathological_runs(self):
        """A program that never commits cannot spin the loop forever."""
        engine = ScriptedEngine(script={"X": [False] * 100})
        run = run_closed_loop(engine, tagged_source(["X"]),
                              total_transactions=1, clients=1,
                              max_retries=99, max_batches=5)
        assert run.epochs == 5
        assert run.committed == 0

    def test_elapsed_is_measured_from_loop_start(self):
        """A clock that advanced before the run does not inflate elapsed."""
        engine = ScriptedEngine(wave_ms=7.0)
        engine.clock.advance(123.0)
        run = run_closed_loop(engine, tagged_source(["A", "B"]),
                              total_transactions=2, clients=1)
        assert run.elapsed_ms == pytest.approx(14.0)


class TestCounterDeltas:
    def test_entrywise_subtraction(self):
        before = [(5, 2), (1, 1)]
        after = [(8, 3), (4, 1)]
        assert _counter_deltas(before, after) == [(3, 1), (3, 0)]

    def test_ragged_growth_counts_missing_entries_as_zero(self):
        """An engine may grow counter entries mid-run (e.g. a recovery that
        expands the topology); new entries delta from zero."""
        before = [(5, 2)]
        after = [(6, 2), (4, 7)]
        assert _counter_deltas(before, after) == [(1, 0), (4, 7)]

    def test_closed_loop_reports_partition_deltas_across_growth(self):
        engine = ScriptedEngine()
        engine.partition_counters = [(100, 50)]          # pre-run traffic
        engine.per_wave_partition_growth = [
            [(3, 1)],                                    # wave 1: partition 0
            [(2, 0), (7, 4)],                            # wave 2 grows a partition
        ]
        run = run_closed_loop(engine, tagged_source(list("ABCD")),
                              total_transactions=4, clients=2)
        assert run.partition_physical == [(5, 1), (7, 4)]


# --------------------------------------------------------------------------- #
# Arrival processes
# --------------------------------------------------------------------------- #
class TestArrivalProcesses:
    def test_deterministic_gap_is_inverse_rate(self):
        gaps = DeterministicArrivals(rate_tps=200.0).intervals()
        assert [next(gaps) for _ in range(3)] == [5.0, 5.0, 5.0]

    def test_infinite_rate_means_everything_arrives_at_start(self):
        gaps = DeterministicArrivals(rate_tps=float("inf")).intervals()
        assert [next(gaps) for _ in range(3)] == [0.0, 0.0, 0.0]

    def test_rates_must_be_positive(self):
        with pytest.raises(ValueError):
            DeterministicArrivals(rate_tps=0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate_tps=-1.0)
        with pytest.raises(ValueError):
            PoissonArrivals(rate_tps=float("inf"))

    def test_nan_rates_are_rejected(self):
        """NaN fails every comparison, so it would slip past a plain <= 0
        check and idle-spin the open loop (max_waves only counts dispatched
        waves); it must be rejected at construction."""
        with pytest.raises(ValueError):
            DeterministicArrivals(rate_tps=float("nan"))
        with pytest.raises(ValueError):
            PoissonArrivals(rate_tps=float("nan"))
        with pytest.raises(ValueError):
            as_arrival_process(float("nan"))

    def test_poisson_stream_is_restartable(self):
        """Two intervals() iterations of one process replay the same gaps —
        the property that makes a fixed arrival_seed reproducible."""
        process = PoissonArrivals(rate_tps=150.0, seed=9)
        first = [next(process.intervals()) for _ in range(1)]
        stream_a = process.intervals()
        stream_b = process.intervals()
        a = [next(stream_a) for _ in range(16)]
        b = [next(stream_b) for _ in range(16)]
        assert a == b
        assert a[0] == first[0]
        assert all(gap > 0 for gap in a)

    def test_as_arrival_process_coercions(self):
        assert isinstance(as_arrival_process(None), DeterministicArrivals)
        assert as_arrival_process(None).rate_tps == float("inf")
        assert as_arrival_process(250).rate_tps == 250.0
        process = PoissonArrivals(100.0, seed=1)
        assert as_arrival_process(process) is process
        with pytest.raises(TypeError):
            as_arrival_process("fast")


# --------------------------------------------------------------------------- #
# Open-loop scheduling (incl. the epoch-boundary admission rule)
# --------------------------------------------------------------------------- #
class TestOpenLoopScheduling:
    def test_arrival_exactly_on_wave_boundary_joins_that_wave_once(self):
        """The regression this file exists to pin: with 10 ms waves and
        10 ms inter-arrivals every arrival instant coincides exactly with a
        wave boundary.  Each must be admitted to exactly one wave — the one
        whose dispatch instant it hits — with zero queueing delay; an
        exclusive comparison would strand it, a re-draw would double it."""
        engine = ScriptedEngine(wave_ms=10.0)
        run = run_open_loop(engine, tagged_source(["A", "B", "C"]),
                            total_transactions=3,
                            arrivals=DeterministicArrivals(rate_tps=100.0),
                            clients=4)
        assert engine.waves == [["A"], ["B"], ["C"]]    # one wave each, once
        assert engine.wave_times == [10.0, 20.0, 30.0]  # dispatched on arrival
        assert run.offered == 3
        assert run.dropped == 0
        assert run.committed == 3
        assert run.queue_delays_ms == [0.0, 0.0, 0.0]
        assert run.epochs == 3

    def test_boundary_and_midwave_arrivals_share_the_boundary_wave(self):
        """Arrivals at 5, 10, 15, 20 ms against 10 ms waves: the first wave
        dispatches at 5; the arrivals at 10 (mid-wave) and 15 (exactly the
        wave's end boundary) both join the second wave."""
        engine = ScriptedEngine(wave_ms=10.0)
        run = run_open_loop(engine, tagged_source(["A", "B", "C", "D"]),
                            total_transactions=4,
                            arrivals=DeterministicArrivals(rate_tps=200.0),
                            clients=4)
        assert engine.waves == [["A"], ["B", "C"], ["D"]]
        assert engine.wave_times == [5.0, 15.0, 25.0]
        # B and D each waited 5 ms for the next dispatch; C landed exactly
        # on wave 2's dispatch instant so its delay is 0.
        assert run.queue_delays_ms == [0.0, 5.0, 0.0, 5.0]
        assert run.offered == 4
        assert run.committed == 4

    def test_queue_limit_drops_arrivals_never_work_in_flight(self):
        """A full admission queue drops the *arrival*; dropped transactions
        never execute and the accounting identity reflects them."""
        engine = ScriptedEngine(wave_ms=10.0, wave_limit=1)
        run = run_open_loop(engine, tagged_source(list("ABCDE")),
                            total_transactions=5, arrivals=None,
                            clients=1, queue_limit=2)
        assert run.offered == 5
        assert run.dropped == 3
        assert run.committed == 2
        assert run.committed + run.aborted == (run.offered - run.dropped) + run.retries
        assert engine.waves == [["A"], ["B"]]
        assert run.max_queue_depth == 2

    def test_retries_lead_the_next_wave_and_bypass_the_queue_bound(self):
        engine = ScriptedEngine(script={"A": [False, True]}, wave_ms=10.0,
                                wave_limit=2)
        run = run_open_loop(engine, tagged_source(list("ABC")),
                            total_transactions=3, arrivals=None,
                            clients=2, queue_limit=3, max_retries=2)
        assert engine.waves == [["A", "B"], ["A", "C"]]
        assert run.retries == 1
        assert run.committed == 3
        # Commit order is B (wave 1), then A and C (wave 2).  The retry's
        # delay is measured from its re-queue (end of wave 1, t=10) to wave
        # 2's dispatch (also t=10); C queued at t=0 and waited a full wave.
        assert run.queue_delays_ms == [0.0, 0.0, 10.0]

    def test_engine_wave_limit_caps_the_wave_below_clients(self):
        engine = ScriptedEngine(wave_limit=2)
        run = run_open_loop(engine, tagged_source(list("ABCDE")),
                            total_transactions=5, arrivals=None, clients=4)
        assert [len(wave) for wave in engine.waves] == [2, 2, 1]
        assert run.epochs == 3

    def test_idle_generator_jumps_to_the_next_arrival(self):
        """With sparse arrivals the clock advances to each arrival instant
        rather than spinning; elapsed time is arrival-paced."""
        engine = ScriptedEngine(wave_ms=2.0)
        run = run_open_loop(engine, tagged_source(["A", "B"]),
                            total_transactions=2,
                            arrivals=DeterministicArrivals(rate_tps=10.0),
                            clients=4)
        assert engine.wave_times == [100.0, 200.0]
        assert run.elapsed_ms == pytest.approx(202.0)
        assert run.queue_delays_ms == [0.0, 0.0]

    def test_max_waves_bounds_pathological_runs(self):
        engine = ScriptedEngine(script={"X": [False] * 100}, wave_limit=1)
        run = run_open_loop(engine, tagged_source(["X"]),
                            total_transactions=1, arrivals=None, clients=1,
                            max_retries=99, max_waves=4)
        assert run.epochs == 4

    def test_zero_clients_terminates_without_spinning(self):
        """Non-positive wave capacity must stop the loop (as the closed
        loop's empty-wave guard does), not dispatch empty waves forever."""
        engine = ScriptedEngine()
        run = run_open_loop(engine, tagged_source(list("ABC")),
                            total_transactions=3, arrivals=None, clients=0)
        assert engine.waves == []
        assert run.epochs == 0
        assert run.committed == 0
        assert run.offered == 3          # arrivals happened; none were served

    def test_open_loop_counters_delta_like_the_closed_loop(self):
        engine = ScriptedEngine()
        engine.partition_counters = [(10, 10)]
        engine.per_wave_partition_growth = [[(4, 2)], [(1, 1), (6, 3)]]
        run = run_open_loop(engine, tagged_source(list("ABC")),
                            total_transactions=3, arrivals=None, clients=2)
        assert run.partition_physical == [(5, 3), (6, 3)]


# --------------------------------------------------------------------------- #
# Conflict-strategy seam
# --------------------------------------------------------------------------- #
class RepairableScriptedEngine(ScriptedEngine):
    """A scripted engine that additionally scripts driver-level repair.

    ``repair_script[tag]`` is the verdict ``repair_many`` returns for that
    tag (``True`` = the repair commits, ``False`` = it fails); a missing tag
    is unrepairable (``None`` in the returned list).  ``supports_repair``
    False makes ``repair_many`` decline outright (return ``None``), the
    unsupported-engine fallback.  ``prefail`` tags come back from
    ``submit_many`` with ``repair_failed`` already set, modelling an engine
    whose *in-epoch* repair already failed for them.
    """

    def __init__(self, script=None, repair_script=None, preferred="repair",
                 supports_repair=True, prefail=(), **kwargs):
        super().__init__(script=script, **kwargs)
        self.repair_script = dict(repair_script or {})
        self.preferred = preferred
        self.supports_repair = supports_repair
        self.prefail = set(prefail)
        self.repair_calls: List[List[str]] = []

    def conflict_strategy(self) -> str:
        """The engine's scripted strategy preference."""
        return self.preferred

    def submit_many(self, programs) -> List[TransactionResult]:
        """As scripted, plus ``repair_failed`` on ``prefail`` tags' aborts."""
        results = super().submit_many(programs)
        for program, result in zip(programs, results):
            if not result.committed and getattr(program, "tag", "?") in self.prefail:
                result.repair_failed = True
        return results

    def repair_many(self, factories):
        """Resolve a repair offer according to ``repair_script``."""
        if not self.supports_repair:
            return None
        tags = [getattr(f, "tag", "?") for f in factories]
        self.repair_calls.append(tags)
        repaired = []
        for tag in tags:
            verdict = self.repair_script.get(tag)
            if verdict is None:
                repaired.append(None)
                continue
            repaired.append(TransactionResult(
                txn_id=self._next_txn_id, committed=verdict,
                return_value=tag if verdict else None,
                abort_reason=None if verdict else "scripted",
                latency_ms=self.wave_ms, epoch=len(self.waves) - 1))
            self._next_txn_id += 1
        return repaired


class TestConflictStrategySeam:
    def test_engine_preference_selects_the_strategy(self):
        """``conflict_strategy=None`` defers to the engine's preference."""
        engine = RepairableScriptedEngine(script={"A": [False, True]},
                                          repair_script={"A": True})
        run = run_closed_loop(engine, tagged_source(["A", "B"]),
                              total_transactions=2, clients=2)
        assert engine.repair_calls == [["A"]]
        assert run.repaired == 1

    def test_explicit_strategy_overrides_engine_preference(self):
        """An explicit ``"retry"`` beats the engine's repair preference."""
        engine = RepairableScriptedEngine(script={"A": [False, True]},
                                          repair_script={"A": True})
        run = run_closed_loop(engine, tagged_source(["A", "B"]),
                              total_transactions=2, clients=2,
                              conflict_strategy="retry")
        assert engine.repair_calls == []
        assert run.repaired == 0
        assert run.retries == 1

    def test_unknown_strategy_name_is_rejected(self):
        engine = ScriptedEngine()
        with pytest.raises(KeyError):
            run_closed_loop(engine, tagged_source(["A"]),
                            total_transactions=1, clients=1,
                            conflict_strategy="optimism")

    def test_repair_salvages_the_conflict_within_its_wave(self):
        """A successful repair commits in the abort's own wave: no retry,
        no extra wave, no wasted attempt."""
        engine = RepairableScriptedEngine(script={"A": [False]},
                                          repair_script={"A": True})
        run = run_closed_loop(engine, tagged_source(["A", "B"]),
                              total_transactions=2, clients=2)
        assert engine.waves == [["A", "B"]]      # no second wave
        assert run.committed == 2
        assert run.aborted == 0
        assert run.retries == 0
        assert run.repaired == 1
        assert run.wasted_attempts == 0

    def test_unsupported_engine_falls_back_to_retry(self):
        """``repair_many`` returning None means the wave retries exactly as
        under RetryStrategy — same waves, same accounting."""
        script = {"A": [False, True]}
        declining = RepairableScriptedEngine(script=dict(script),
                                             supports_repair=False)
        plain = ScriptedEngine(script=dict(script))
        repaired_run = run_closed_loop(declining, tagged_source(["A", "B"]),
                                       total_transactions=2, clients=2)
        retry_run = run_closed_loop(plain, tagged_source(["A", "B"]),
                                    total_transactions=2, clients=2)
        assert declining.waves == plain.waves == [["A", "B"], ["A"]]
        assert repr(repaired_run) == repr(retry_run)
        assert repaired_run.repaired == 0
        assert repaired_run.retries == 1

    def test_unrepairable_entry_retries_while_siblings_repair(self):
        """A per-entry None from ``repair_many`` sends only that entry to
        the retry pool; repaired siblings stay committed in-wave."""
        engine = RepairableScriptedEngine(
            script={"A": [False], "B": [False, True]},
            repair_script={"A": True})           # B is unrepairable
        run = run_closed_loop(engine, tagged_source(["A", "B"]),
                              total_transactions=2, clients=2)
        assert engine.repair_calls == [["A", "B"]]
        assert engine.waves == [["A", "B"], ["B"]]
        assert run.committed == 2
        assert run.repaired == 1
        assert run.retries == 1

    def test_failed_repair_is_counted_and_still_retried(self):
        """A repair that fails marks the result ``repair_failed``, charges
        the extra wasted attempt, and the program still gets its retries."""
        engine = RepairableScriptedEngine(script={"A": [False, True]},
                                          repair_script={"A": False})
        run = run_closed_loop(engine, tagged_source(["A"]),
                              total_transactions=1, clients=1)
        assert run.committed == 1                # committed on the retry
        assert run.aborted == 1
        assert run.repair_failed == 1
        assert run.wasted_attempts == 2          # the abort + the dead repair
        assert run.retries == 1

    def test_exhausted_repairs_are_not_reoffered(self):
        """An abort that already carries ``repair_failed`` (the engine's
        in-epoch repair died) is never offered to ``repair_many`` again —
        exhaustion falls straight through to retry."""
        engine = RepairableScriptedEngine(script={"A": [False, True]},
                                          repair_script={"A": True},
                                          prefail={"A"})
        run = run_closed_loop(engine, tagged_source(["A"]),
                              total_transactions=1, clients=1)
        assert engine.repair_calls == []         # A was filtered out
        assert run.committed == 1
        assert run.repair_failed == 1
        assert run.retries == 1

    def test_retry_strategy_reproduces_batching_byte_for_byte(self):
        """Regression: the extracted RetryStrategy must reproduce the exact
        cross-wave retry batching (and RunStats repr) of the pre-seam loop,
        pinned against the schedule asserted in
        ``test_retries_are_batched_before_fresh_draws``."""
        runs = {}
        for label, kwargs in (("default", {}),
                              ("explicit", {"conflict_strategy": "retry"})):
            engine = ScriptedEngine(script={"B": [False, True],
                                            "C": [False, False]})
            runs[label] = run_closed_loop(
                engine, tagged_source(["A", "B", "C", "D"]),
                total_transactions=4, clients=3, max_retries=1, **kwargs)
            assert engine.waves == [["A", "B", "C"], ["B", "C", "D"]], label
        assert repr(runs["default"]) == repr(runs["explicit"])

    def test_open_loop_repairs_count_queue_delay_for_the_committing_attempt(self):
        """The open loop resolves repairs through the same seam: a repaired
        entry commits in its wave with its own admission-to-dispatch delay."""
        engine = RepairableScriptedEngine(script={"A": [False]},
                                          repair_script={"A": True},
                                          wave_ms=10.0)
        run = run_open_loop(engine, tagged_source(["A", "B"]),
                            total_transactions=2, arrivals=None, clients=2)
        assert engine.waves == [["A", "B"]]
        assert run.committed == 2
        assert run.repaired == 1
        assert run.queue_delays_ms == [0.0, 0.0]
