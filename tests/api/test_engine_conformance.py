"""Cross-engine conformance suite for the unified ``repro.api`` layer.

Every test in this file runs identically against all three engines
(``obladi``, ``nopriv``, ``mysql``): same programs in, same result-type
semantics out.  This is the contract the evaluation harness relies on —
a Figure-9 row must mean the same thing no matter which engine produced it.

The Obladi engine additionally runs in a *sharded* variant (``shards=4``,
the partitioned data layer), a *distributed* variant (``shards=4`` over
four distinct storage servers, one per partition), and *proxy-tier*
variants (``proxy_workers=4``, the sharded trusted tier — alone and
stacked on the distributed topology): sharding, server topology and the
proxy tier are implementation details and must clear the exact same bar —
submission order, RunStats math, serializable histories, crash/recover.

Elastic topologies extend the contract (``TestElasticReshard``): a live
mid-run reshard must not change any of the above, a crash during the
migration window recovers on the *retiring* side of the fence, a crash
after the cutover recovers on the *new* side, and the open-loop accounting
identity holds across a resharding run.
"""

import random

import pytest

from repro.api import (ENGINE_KINDS, EngineConfig, EngineFeatureUnavailable,
                       PoissonArrivals, RunStats, TransactionEngine,
                       create_engine)
from repro.audit import AuditingObserver
from repro.concurrency import check_serializable
from repro.core.client import Read, ReadMany, Write
from repro.elasticity import AutoscalePolicy, ReshardPlan

NUM_KEYS = 24

#: Every variant runs under both conflict strategies: ``retry`` (the
#: pre-seam default) and ``repair`` (in-epoch conflict repair).  Engines
#: without a repair path fall back to retry through the strategy seam, so
#: the repair variants double as fallback conformance.
STRATEGIES = ("retry", "repair")

#: (kind, shards, storage_servers, proxy_workers, strategy) variants the
#: whole suite runs against: the three engines, the sharded-colocated
#: Obladi topology, the one-server-per-partition topology, the sharded
#: proxy tier over the single-tree data path, and the fully stacked
#: deployment — each under both conflict strategies.
_BASE_VARIANTS = [(kind, 1, 1, 1) for kind in ENGINE_KINDS] + \
    [("obladi", 4, 1, 1), ("obladi", 4, 4, 1),
     ("obladi", 1, 1, 4), ("obladi", 4, 4, 4)]
ENGINE_VARIANTS = [variant + (strategy,) for variant in _BASE_VARIANTS
                   for strategy in STRATEGIES]

#: (shards, storage_servers, proxy_workers, strategy) for the
#: Obladi-specific tests (crash/recover runs against every one).
OBLADI_TOPOLOGIES = [topology + (strategy,)
                     for topology in [(1, 1, 1), (4, 1, 1), (4, 4, 1),
                                      (1, 1, 4), (4, 4, 4)]
                     for strategy in STRATEGIES]

#: Variants for the open-loop path: every engine, and the Obladi engine
#: across the full shards x proxy_workers grid — offered load is a new
#: *scenario axis* and must behave identically over every topology and
#: under either conflict strategy.
OPEN_LOOP_VARIANTS = [variant + (strategy,)
                      for variant in [("nopriv", 1, 1, 1), ("mysql", 1, 1, 1)]
                      + [("obladi", shards, 1, workers)
                         for shards in (1, 4) for workers in (1, 4)]
                      for strategy in STRATEGIES]


def _variant_id(variant) -> str:
    kind, shards, servers, workers, strategy = variant
    parts = [kind]
    if shards > 1:
        parts.append(f"shards{shards}")
    if servers > 1:
        parts.append(f"servers{servers}")
    if workers > 1:
        parts.append(f"workers{workers}")
    parts.append(strategy)
    return "-".join(parts)


def _config(shards: int = 1, storage_servers: int = 1,
            proxy_workers: int = 1, strategy: str = "retry") -> EngineConfig:
    return (EngineConfig()
            .with_oram(num_blocks=512, z_real=8, block_size=128)
            .with_batching(read_batches=3, read_batch_size=32, write_batch_size=32)
            .with_sharding(shards)
            .with_storage_servers(storage_servers)
            .with_proxy_workers(proxy_workers)
            .with_durability(False)
            .with_encryption(False)
            .with_conflict_strategy(strategy)
            .with_seed(3))


@pytest.fixture(params=ENGINE_VARIANTS, ids=_variant_id)
def engine(request) -> TransactionEngine:
    kind, shards, servers, workers, strategy = request.param
    eng = create_engine(kind, _config(shards, servers, workers, strategy))
    eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
    return eng


def append_program(key: str, suffix: bytes = b"x"):
    """Read-modify-write one key; returns the pre-image."""

    def program():
        value = yield Read(key)
        yield Write(key, (value or b"") + suffix)
        return value

    return program


def mixed_source(seed: int, hot_keys: int = 6):
    """Factory source with moderate contention: read two keys, write one."""
    rng = random.Random(seed)

    def source():
        a, b = rng.sample(range(hot_keys), 2)

        def factory():
            def program():
                values = yield ReadMany([f"k{a}", f"k{b}"])
                yield Write(f"k{a}", (values[f"k{a}"] or b"") + b"+")
                return True
            return program()

        return factory

    return source


class TestEngineConstruction:
    def test_create_engine_returns_named_engine(self, engine, request):
        assert isinstance(engine, TransactionEngine)
        assert engine.name == engine.stats().engine

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            create_engine("postgres")

    def test_legacy_aliases_resolve(self):
        assert create_engine("2pl").name == "mysql"
        assert create_engine("noprivproxy").name == "nopriv"

    def test_legacy_result_types_are_run_stats(self):
        from repro.baseline.common import BaselineRunResult
        from repro.workloads.driver import WorkloadRun
        assert BaselineRunResult is RunStats
        assert WorkloadRun is RunStats


class TestSubmission:
    def test_submit_commits_and_returns_value(self, engine):
        result = engine.submit(append_program("k1"))
        assert result.committed
        assert result.return_value == b"0"
        assert engine.read("k1") == b"0x"

    def test_submit_many_preserves_submission_order(self, engine):
        def writer(index):
            def program():
                yield Write(f"k{index}", str(index).encode())
                return index
            return program

        results = engine.submit_many([writer(i) for i in range(8)])
        assert len(results) == 8
        assert all(r.committed for r in results)
        assert [r.return_value for r in results] == list(range(8))
        for i in range(8):
            assert engine.read(f"k{i}") == str(i).encode()

    def test_transaction_facade_reads_own_writes(self, engine):
        with engine.transaction() as txn:
            before = txn.read("k2")
            txn.write("k2", b"updated")
            assert txn.read("k2") == b"updated"   # read-your-own-writes
        assert before == b"0"
        assert engine.read("k2") == b"updated"

    def test_transaction_facade_abort_discards(self, engine):
        txn = engine.transaction()
        txn.write("k3", b"doomed")
        txn.abort()
        assert engine.read("k3") == b"0"


class TestClosedLoop:
    TOTAL = 40
    CLIENTS = 8
    MAX_RETRIES = 3

    @pytest.fixture
    def run(self, engine) -> RunStats:
        return engine.run_closed_loop(mixed_source(seed=11), self.TOTAL,
                                      clients=self.CLIENTS,
                                      max_retries=self.MAX_RETRIES)

    def test_attempt_accounting(self, engine, run):
        assert isinstance(run, RunStats)
        assert run.engine == engine.name
        assert run.committed > 0
        # Every attempt resolves exactly once, and every retry adds exactly
        # one attempt, so: attempts = total + retries.
        assert run.committed + run.aborted == self.TOTAL + run.retries
        assert len(run.results) == run.committed + run.aborted
        assert len(run.latencies_ms) == run.committed

    def test_metric_math(self, run):
        assert run.elapsed_ms > 0
        assert run.throughput_tps == pytest.approx(
            run.committed * 1000.0 / run.elapsed_ms)
        assert run.abort_rate == pytest.approx(
            run.aborted / (run.committed + run.aborted))
        assert run.average_latency_ms == pytest.approx(
            sum(run.latencies_ms) / len(run.latencies_ms))
        assert run.p50_latency_ms <= run.p95_latency_ms <= run.p99_latency_ms
        assert min(run.latencies_ms) <= run.p95_latency_ms <= max(run.latencies_ms)
        assert run.epochs > 0

    def test_committed_history_is_serializable(self, engine, run):
        assert len(engine.committed_history) == run.committed
        ok, cycle = check_serializable(engine.committed_history)
        assert ok, f"{engine.name} produced a non-serializable history: {cycle}"

    def test_effects_match_commit_count(self, engine, run):
        # Every committed transaction appended exactly one byte to one hot
        # key, so total appended bytes equal the committed count.
        total_appends = sum(len(engine.read(f"k{i}")) - 1 for i in range(6))
        assert total_appends == run.committed

    def test_stats_are_cumulative(self, engine, run):
        totals = engine.stats()
        assert totals.engine == engine.name
        assert totals.committed == run.committed
        assert totals.aborted == run.aborted

    def test_stats_snapshots_do_not_alias(self, engine):
        before = engine.stats()
        committed_before = before.committed
        engine.submit(append_program("k1"))
        after = engine.stats()
        assert before.committed == committed_before
        assert after.committed == committed_before + 1
        # Mutating a returned snapshot must not corrupt the engine's books.
        after.results.clear()
        after.latencies_ms.append(1e9)
        assert len(engine.stats().latencies_ms) == committed_before + 1


class TestCrashRecovery:
    def test_capability_flag_gates_crash(self, engine):
        if engine.supports_crash_recovery:
            return  # exercised below for the engines that support it
        with pytest.raises(EngineFeatureUnavailable):
            engine.crash()
        with pytest.raises(EngineFeatureUnavailable):
            engine.recover()

    @pytest.mark.parametrize("shards,servers,workers,strategy", OBLADI_TOPOLOGIES)
    def test_obladi_crash_recover_round_trip(self, shards, servers, workers,
                                             strategy):
        eng = create_engine("obladi", _config(shards, servers, workers,
                                              strategy).with_durability(True))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        assert eng.supports_crash_recovery
        eng.submit(append_program("k1"))
        eng.crash()
        eng.recover()
        assert eng.read("k1") == b"0x"

    @pytest.mark.parametrize("shards,servers,workers,strategy", OBLADI_TOPOLOGIES)
    def test_recover_preserves_lifetime_stats_and_history(self, shards, servers,
                                                          workers, strategy):
        eng = create_engine("obladi", _config(shards, servers, workers,
                                              strategy).with_durability(True))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        eng.submit(append_program("k1"))
        pre_crash = eng.stats()
        assert pre_crash.committed == 1
        history_before = len(eng.committed_history)
        eng.crash()
        eng.recover()
        eng.submit(append_program("k2"))
        totals = eng.stats()
        # A crash loses in-flight state, not the record of durable commits.
        assert totals.committed == 2
        assert len(totals.latencies_ms) == 2
        assert len(eng.committed_history) == history_before + 1
        ok, cycle = check_serializable(eng.committed_history)
        assert ok, cycle

    @pytest.mark.parametrize("servers", [1, 4])
    def test_sharded_recover_restores_every_partition(self, servers):
        """After a crash all partitions come back: every key stays readable."""
        eng = create_engine("obladi", _config(4, servers).with_durability(True))
        eng.load_initial_data({f"k{i}": str(i).encode() for i in range(NUM_KEYS)})
        partitions = {eng.proxy.data_layer.partition_of(f"k{i}")
                      for i in range(NUM_KEYS)}
        assert partitions == {0, 1, 2, 3}   # the dataset touches every shard
        eng.submit(append_program("k1"))    # run (and checkpoint) one epoch
        eng.crash()
        eng.recover()
        assert len(eng.proxy.data_layer.partitions) == 4
        assert eng.read("k1") == b"1x"
        for i in range(2, NUM_KEYS):
            assert eng.read(f"k{i}") == str(i).encode()

    def test_distributed_recover_restores_every_server(self):
        """Recovery rebuilds partitions hosted on *distinct* servers: the new
        proxy keeps the same cluster, every server still hosts exactly its
        partition's namespace, and post-recovery traffic reaches all four."""
        eng = create_engine("obladi", _config(4, 4).with_durability(True))
        eng.load_initial_data({f"k{i}": str(i).encode() for i in range(NUM_KEYS)})
        cluster = eng.proxy.storage
        eng.submit(append_program("k1"))
        writes_before = [server.stats_writes for server in cluster.servers]
        eng.crash()
        eng.recover()
        assert eng.proxy.storage is cluster   # the untrusted tier survives
        for part in eng.proxy.data_layer.partitions:
            assert part.storage.base is cluster.server_for_partition(part.index)
        eng.submit(append_program("k2"))      # an epoch touches every server
        for index, server in enumerate(cluster.servers):
            assert server.stats_writes > writes_before[index]
        for i in range(3, NUM_KEYS):
            assert eng.read(f"k{i}") == str(i).encode()


class TestShardedStats:
    def test_partition_breakdown_sums_to_totals(self):
        eng = create_engine("obladi", _config(4))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        eng.run_closed_loop(mixed_source(seed=5), 16, clients=4)
        stats = eng.stats()
        assert len(stats.partition_physical) == 4
        assert sum(r for r, _ in stats.partition_physical) == stats.physical_reads
        assert sum(w for _, w in stats.partition_physical) == stats.physical_writes
        assert all(reads > 0 for reads, _ in stats.partition_physical)

    def test_single_tree_reports_one_partition(self):
        eng = create_engine("obladi", _config(1))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        eng.submit(append_program("k1"))
        stats = eng.stats()
        assert len(stats.partition_physical) == 1
        assert stats.partition_physical[0] == (stats.physical_reads,
                                               stats.physical_writes)


class TestServerStats:
    def test_every_engine_reports_a_server_breakdown(self, engine):
        engine.submit(append_program("k1"))
        stats = engine.stats()
        assert len(stats.server_physical) >= 1
        assert all(reads >= 0 and writes > 0
                   for reads, writes in stats.server_physical)

    def test_per_partition_servers_each_observe_their_partition(self):
        eng = create_engine("obladi", _config(4, 4))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        eng.run_closed_loop(mixed_source(seed=5), 16, clients=4)
        stats = eng.stats()
        assert len(stats.server_physical) == 4
        # With one server per partition and no durability traffic, each
        # server's read counter is exactly its partition's ORAM reads.
        for (server_reads, _), (part_reads, _) in zip(stats.server_physical,
                                                      stats.partition_physical):
            assert server_reads == part_reads

    def test_closed_loop_reports_server_deltas(self):
        eng = create_engine("obladi", _config(4, 2))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        warmup = eng.run_closed_loop(mixed_source(seed=3), 8, clients=4)
        run = eng.run_closed_loop(mixed_source(seed=5), 8, clients=4)
        assert len(warmup.server_physical) == len(run.server_physical) == 2
        totals = eng.stats().server_physical
        for index in range(2):
            assert run.server_physical[index][0] < totals[index][0]
            assert run.server_physical[index][0] > 0


class TestProxyTierStats:
    """The sharded trusted tier's per-worker counters and its equivalence
    guarantee: worker count is invisible to clients (identical results and
    simulated timing at the default, unpriced CC cost)."""

    def test_worker_breakdown_reported_and_nonempty(self):
        eng = create_engine("obladi", _config(proxy_workers=4))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        run = eng.run_closed_loop(mixed_source(seed=5), 16, clients=4)
        assert len(run.worker_ops) == 4
        assert sum(reads for reads, _ in run.worker_ops) > 0
        totals = eng.stats().worker_ops
        assert len(totals) == 4
        for (run_reads, run_writes), (total_reads, total_writes) in zip(
                run.worker_ops, totals):
            assert 0 <= run_reads <= total_reads
            assert 0 <= run_writes <= total_writes

    def test_single_proxy_reports_no_worker_breakdown(self):
        eng = create_engine("obladi", _config())
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        run = eng.run_closed_loop(mixed_source(seed=5), 8, clients=4)
        assert run.worker_ops == []
        assert eng.stats().worker_ops == []

    def test_worker_count_is_client_invisible(self):
        """proxy_workers=4 must be behavior-identical to the single proxy:
        same commit/abort outcomes, same final state, same simulated time."""
        runs = {}
        for workers in (1, 4):
            eng = create_engine("obladi", _config(proxy_workers=workers))
            eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
            stats = eng.run_closed_loop(mixed_source(seed=11), 24, clients=8)
            state = tuple(eng.read(f"k{i}") for i in range(NUM_KEYS))
            runs[workers] = (stats.committed, stats.aborted, stats.elapsed_ms,
                             tuple(stats.latencies_ms), state)
        assert runs[1] == runs[4]

    def test_epoch_summaries_carry_worker_ops(self):
        eng = create_engine("obladi", _config(proxy_workers=4))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        eng.submit(append_program("k1"))
        summary = eng.proxy.epoch_summaries[-1]
        assert len(summary.worker_ops) == 4
        assert sum(reads for reads, _ in summary.worker_ops) > 0

    def test_recover_preserves_worker_counters(self):
        eng = create_engine("obladi",
                            _config(proxy_workers=4).with_durability(True))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        eng.submit(append_program("k1"))
        before = eng.worker_op_counters()
        assert sum(reads for reads, _ in before) > 0
        eng.crash()
        eng.recover()
        assert len(eng.proxy.workers) == 4
        assert eng.worker_op_counters() == before   # retired proxy's work kept
        eng.submit(append_program("k2"))
        after = eng.worker_op_counters()
        assert sum(reads for reads, _ in after) > sum(reads for reads, _ in before)


class TestOpenLoop:
    """The open-loop path must clear the same conformance bar as the closed
    loop on every engine and Obladi topology: consistent RunStats math,
    serializable histories, crash recovery mid-load, and the degeneracy
    invariant — at unbounded offered rate with one client the open loop *is*
    the closed loop."""

    TOTAL = 32
    RATE_TPS = 400.0

    @pytest.fixture(params=OPEN_LOOP_VARIANTS, ids=_variant_id)
    def open_engine(self, request) -> TransactionEngine:
        kind, shards, servers, workers, strategy = request.param
        eng = create_engine(kind, _config(shards, servers, workers, strategy))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        return eng

    def test_open_loop_accounting(self, open_engine):
        run = open_engine.run_open_loop(
            mixed_source(seed=11), self.TOTAL,
            arrivals=PoissonArrivals(self.RATE_TPS, seed=7), clients=8)
        assert isinstance(run, RunStats)
        assert run.engine == open_engine.name
        assert run.offered == self.TOTAL
        assert run.dropped == 0                      # unbounded queue
        assert run.committed > 0
        # Dropped arrivals never execute; every admitted attempt resolves
        # exactly once and every retry adds exactly one attempt.
        assert run.committed + run.aborted == \
            (run.offered - run.dropped) + run.retries
        assert len(run.results) == run.committed + run.aborted
        assert len(run.latencies_ms) == run.committed
        assert len(run.queue_delays_ms) == run.committed
        assert all(delay >= 0.0 for delay in run.queue_delays_ms)
        assert run.max_queue_depth >= 1
        assert run.elapsed_ms > 0
        assert run.offered_tps > 0
        assert run.achieved_tps == pytest.approx(run.throughput_tps)
        # Queue-inclusive latency dominates service latency, sample-wise.
        totals = run.total_latencies_ms
        assert len(totals) == run.committed
        assert all(total == pytest.approx(queue + service)
                   for total, queue, service
                   in zip(totals, run.queue_delays_ms, run.latencies_ms))
        assert run.p50_total_latency_ms <= run.p95_total_latency_ms \
            <= run.p99_total_latency_ms

    def test_open_loop_history_is_serializable(self, open_engine):
        run = open_engine.run_open_loop(
            mixed_source(seed=5), self.TOTAL,
            arrivals=PoissonArrivals(self.RATE_TPS, seed=3), clients=8)
        assert len(open_engine.committed_history) == run.committed
        ok, cycle = check_serializable(open_engine.committed_history)
        assert ok, f"{open_engine.name}: non-serializable open-loop history: {cycle}"
        total_appends = sum(len(open_engine.read(f"k{i}")) - 1 for i in range(6))
        assert total_appends == run.committed

    def test_unbounded_single_client_open_loop_is_the_closed_loop(self, request):
        """The degeneracy invariant: arrivals=None (everything offered at
        the start) with one client produces the closed loop's schedule —
        identical outcomes, latencies and simulated timing."""
        for kind, shards, servers, workers, strategy in OPEN_LOOP_VARIANTS:
            closed_eng = create_engine(kind,
                                       _config(shards, servers, workers, strategy))
            closed_eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
            closed = closed_eng.run_closed_loop(mixed_source(seed=11), 16,
                                                clients=1, max_retries=2)
            open_eng = create_engine(kind,
                                     _config(shards, servers, workers, strategy))
            open_eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
            opened = open_eng.run_open_loop(mixed_source(seed=11), 16,
                                            arrivals=None, clients=1,
                                            max_retries=2)
            label = _variant_id((kind, shards, servers, workers, strategy))
            assert (closed.committed, closed.aborted, closed.retries) == \
                (opened.committed, opened.aborted, opened.retries), label
            assert closed.elapsed_ms == opened.elapsed_ms, label
            assert closed.latencies_ms == opened.latencies_ms, label
            assert closed.epochs == opened.epochs, label
            state_closed = [closed_eng.read(f"k{i}") for i in range(NUM_KEYS)]
            state_open = [open_eng.read(f"k{i}") for i in range(NUM_KEYS)]
            assert state_closed == state_open, label

    def test_bounded_queue_drops_are_accounted(self, open_engine):
        run = open_engine.run_open_loop(mixed_source(seed=9), self.TOTAL,
                                        arrivals=None, clients=4,
                                        queue_limit=8)
        assert run.offered == self.TOTAL
        assert run.dropped == self.TOTAL - 8         # everything arrives at once
        assert run.max_queue_depth == 8
        assert run.committed + run.aborted == \
            (run.offered - run.dropped) + run.retries

    @pytest.mark.parametrize("shards,servers,workers,strategy", OBLADI_TOPOLOGIES)
    def test_obladi_crash_recover_mid_open_loop(self, shards, servers, workers,
                                                strategy):
        """Crash with offered load still queued, recover, keep offering:
        lifetime stats accumulate across the incarnations and the combined
        history stays serializable."""
        eng = create_engine("obladi", _config(shards, servers, workers,
                                              strategy).with_durability(True))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        # max_waves cuts the first run short, leaving offered load unserved.
        first = eng.run_open_loop(mixed_source(seed=11), 24,
                                  arrivals=PoissonArrivals(800.0, seed=5),
                                  clients=4, max_waves=2)
        assert first.epochs == 2
        assert first.committed > 0
        eng.crash()
        eng.recover()
        second = eng.run_open_loop(mixed_source(seed=12), 16,
                                   arrivals=PoissonArrivals(800.0, seed=6),
                                   clients=4)
        assert second.committed > 0
        totals = eng.stats()
        assert totals.committed == first.committed + second.committed
        ok, cycle = check_serializable(eng.committed_history)
        assert ok, cycle

    def test_obladi_epoch_summaries_mirror_the_admission_queue(self):
        """For the Obladi engine one wave is one epoch: the wave's backlog
        and cumulative drop count are mirrored into its EpochSummary."""
        eng = create_engine("obladi", _config())
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        run = eng.run_open_loop(mixed_source(seed=7), 24, arrivals=None,
                                clients=4, queue_limit=16)
        assert run.dropped == 24 - 16
        summaries = eng.proxy.epoch_summaries
        assert summaries[0].queue_depth == 16 - 4    # backlog after wave 1
        assert all(s.arrivals_dropped == run.dropped for s in summaries)
        assert summaries[-1].queue_depth == 0


class TestAuditing:
    """Continuous auditing is part of the engine contract: on every engine
    and topology the streaming verdict must equal the offline checker's, the
    auditor must retain less than the full history, and attaching it must
    not perturb the run (byte-identical fixed-seed RunStats)."""

    TOTAL = 40

    def test_streaming_verdict_matches_offline_closed_loop(self, engine):
        auditor = engine.attach_observer(AuditingObserver(settle_lag=2))
        run = engine.run_closed_loop(mixed_source(seed=11), self.TOTAL,
                                     clients=8)
        report = run.audit
        assert report is not None
        offline_ok, offline_cycle = check_serializable(engine.committed_history)
        assert report.ok == offline_ok, offline_cycle
        assert report.ok, [v.detail for v in report.violations[:1]]
        assert report.txns_ingested == run.committed
        # Bounded retention: the auditor held a strict subset of the history.
        assert report.txns_settled > 0
        assert report.max_retained_nodes < report.txns_ingested

    def test_streaming_verdict_matches_offline_open_loop(self, engine):
        engine.attach_observer(AuditingObserver(settle_lag=2))
        run = engine.run_open_loop(mixed_source(seed=5), self.TOTAL,
                                   arrivals=PoissonArrivals(400.0, seed=3),
                                   clients=8)
        offline_ok, _ = check_serializable(engine.committed_history)
        assert run.audit.ok == offline_ok
        assert run.audit.txns_ingested == run.committed

    def test_attached_auditor_leaves_runstats_byte_identical(self, engine,
                                                             request):
        """Fixed seed, same variant, one run bare and one audited: the
        RunStats reprs must match byte for byte (the audit field is excluded
        from repr), proving no-observer runs are untouched by this seam."""
        variant = request.node.callspec.params["engine"]
        kind, shards, servers, workers, strategy = variant
        bare = engine.run_closed_loop(mixed_source(seed=11), self.TOTAL,
                                      clients=8)
        audited_engine = create_engine(kind, _config(shards, servers, workers,
                                                     strategy))
        audited_engine.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        audited_engine.attach_observer(AuditingObserver())
        audited = audited_engine.run_closed_loop(mixed_source(seed=11),
                                                 self.TOTAL, clients=8)
        assert bare.audit is None and audited.audit is not None
        assert repr(bare) == repr(audited)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_buggy_injections_caught_under_either_strategy(self, strategy):
        """Repair must not blunt the auditor: the ``buggy`` engine's
        injected serializability violations are flagged by both checkers
        whether the inner engine retries or repairs its conflict losers."""
        eng = create_engine("buggy", _config(strategy=strategy)
                            .with_faults(period=3, fault_seed=7))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        eng.attach_observer(AuditingObserver(settle_lag=3))
        run = eng.run_closed_loop(mixed_source(seed=11), self.TOTAL, clients=8)
        assert eng.injected, "the fault injector found no victim"
        assert not run.audit.ok
        offline_ok, cycle = check_serializable(eng.committed_history)
        assert not offline_ok
        assert cycle is not None


#: (source, target) topology endpoints for the live-reshard conformance
#: tests: a data-moving scale-up, the symmetric scale-down, a pure
#: proxy-tier rebalance (no data moves, instant cutover), and a worker-only
#: change on the fully distributed layout.
RESHARD_ENDPOINTS = [
    ((1, 1, 1), (4, 2, 1)),
    ((4, 2, 1), (1, 1, 1)),
    ((1, 1, 1), (1, 1, 4)),
    ((4, 4, 1), (4, 4, 4)),
]

_RESHARD_IDS = ["{}.{}.{}-to-{}.{}.{}".format(*source, *target)
                for source, target in RESHARD_ENDPOINTS]


def read_program(key: str):
    """A read-only transaction; used to drain migration windows."""

    def program():
        value = yield Read(key)
        return value

    return program


class TestElasticReshard:
    """Live resharding is part of the engine contract: the capability is
    gated like crash/recover, a mid-run topology change must not disturb
    submission semantics, accounting, or serializability, and the migration
    *fence* (the cutover checkpoint) decides which side a crash recovers
    on — never both, never neither."""

    def _plan(self, target) -> ReshardPlan:
        shards, servers, workers = target
        return ReshardPlan(shards=shards, storage_servers=servers,
                           proxy_workers=workers)

    def _narrow_config(self, shards: int = 1, storage_servers: int = 1,
                       durability: bool = False) -> EngineConfig:
        """Batches of 8 keep a 24-key migration in flight for ~3 barriers."""
        config = (_config(shards, storage_servers)
                  .with_batching(read_batches=3, read_batch_size=8,
                                 write_batch_size=8))
        return config.with_durability(durability) if durability else config

    def _drain(self, eng, max_waves: int = 40) -> int:
        """Read-only waves until the in-flight migration cuts over."""
        committed = 0
        waves = 0
        while eng.reshard_in_flight and waves < max_waves:
            # submit_many: single-shot submit never runs a wave boundary, so
            # it neither starts staged plans nor steps in-flight migrations.
            results = eng.submit_many([read_program("k0")])
            committed += sum(int(r.committed) for r in results)
            waves += 1
        assert not eng.reshard_in_flight, "migration never completed"
        return committed

    def _topology(self, eng):
        config = eng.proxy.config
        return (config.shards, config.storage_servers, config.proxy_workers)

    def test_capability_flag_gates_reshard(self, engine):
        if engine.supports_reshard:
            assert not engine.reshard_in_flight
            return  # exercised below for the engine that reshards
        with pytest.raises(EngineFeatureUnavailable):
            engine.reshard(self._plan((4, 1, 1)))
        assert not engine.reshard_in_flight

    def test_second_reshard_while_in_flight_is_rejected(self):
        eng = create_engine("obladi", self._narrow_config())
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        eng.reshard(self._plan((4, 2, 1)))
        assert eng.reshard_in_flight
        with pytest.raises(ValueError):
            eng.reshard(self._plan((4, 4, 1)))

    @pytest.mark.parametrize("source,target", RESHARD_ENDPOINTS,
                             ids=_RESHARD_IDS)
    def test_mid_run_reshard_clears_the_conformance_bar(self, source, target):
        """A reshard injected between two closed-loop runs: the engine lands
        on the target topology, lifetime stats keep accumulating across the
        cutover, the combined history stays serializable, and committed
        effects survive the move byte for byte."""
        shards, servers, workers = source
        eng = create_engine("obladi", _config(shards, servers, workers))
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        before = eng.run_closed_loop(mixed_source(seed=11), 16, clients=4)
        eng.reshard(self._plan(target))
        after = eng.run_closed_loop(mixed_source(seed=13), 16, clients=4)
        drained = self._drain(eng)

        assert self._topology(eng) == target
        data_moved = (source[0], source[1]) != (target[0], target[1])
        assert eng.proxy.config.generation == (1 if data_moved else 0)
        totals = eng.stats()
        assert totals.committed == \
            before.committed + after.committed + drained
        assert len(totals.migrations) == (1 if data_moved else 0)
        assert len(eng.committed_history) == totals.committed
        ok, cycle = check_serializable(eng.committed_history)
        assert ok, f"resharded history has a serialization cycle: {cycle}"
        # mixed_source appends one byte per commit to one of six hot keys;
        # the migration must carry every appended byte into the new layout.
        total_appends = sum(len(eng.read(f"k{i}")) - 1 for i in range(6))
        assert total_appends == before.committed + after.committed
        for i in range(6, NUM_KEYS):
            assert eng.read(f"k{i}") == b"0"

    def test_crash_during_migration_recovers_on_the_old_side(self):
        """The staged plan and half-copied target generation are volatile:
        a crash inside the migration window recovers the *retiring*
        topology, with no trace of the abandoned reshard."""
        eng = create_engine("obladi", self._narrow_config(durability=True))
        eng.load_initial_data({f"k{i}": str(i).encode() for i in range(NUM_KEYS)})
        eng.submit(append_program("k1"))
        eng.reshard(self._plan((4, 2, 1)))
        # The wave boundary starts the staged plan and runs one copy barrier.
        eng.submit_many([append_program("k2")])
        assert eng._migration is not None, "migration never started"
        assert eng.reshard_in_flight, "migration drained too fast to test"
        eng.crash()
        eng.recover()
        assert not eng.reshard_in_flight
        assert self._topology(eng) == (1, 1, 1)
        assert eng.proxy.config.generation == 0
        assert eng.stats().migrations == ()
        assert eng.read("k1") == b"1x"
        assert eng.read("k2") == b"2x"
        for i in range(3, NUM_KEYS):
            assert eng.read(f"k{i}") == str(i).encode()
        # The recovered engine reshards cleanly from scratch.
        eng.reshard(self._plan((4, 2, 1)))
        eng.submit_many([append_program("k3")])
        self._drain(eng)
        assert self._topology(eng) == (4, 2, 1)
        ok, cycle = check_serializable(eng.committed_history)
        assert ok, cycle

    def test_crash_after_cutover_recovers_on_the_new_side(self):
        """Past the fence — the cutover's full checkpoint — the durable
        chain reflects only the new generation: recovery rebuilds the
        *target* topology and every key read back from it."""
        eng = create_engine("obladi", self._narrow_config(durability=True))
        eng.load_initial_data({f"k{i}": str(i).encode() for i in range(NUM_KEYS)})
        eng.submit(append_program("k1"))
        eng.reshard(self._plan((4, 2, 1)))
        eng.submit_many([append_program("k2")])
        self._drain(eng)
        assert self._topology(eng) == (4, 2, 1)
        assert eng.proxy.config.generation == 1
        committed_before = eng.stats().committed
        eng.crash()
        eng.recover()
        # A crash loses in-flight state, not durable commits (reads commit
        # too, so the count is checked before the read-back sweep below).
        assert eng.stats().committed == committed_before
        assert self._topology(eng) == (4, 2, 1)
        assert eng.proxy.config.generation == 1
        assert eng.read("k1") == b"1x"
        assert eng.read("k2") == b"2x"
        for i in range(3, NUM_KEYS):
            assert eng.read(f"k{i}") == str(i).encode()
        eng.submit(append_program("k3"))
        assert eng.read("k3") == b"3x"
        assert len(eng.stats().migrations) == 1
        ok, cycle = check_serializable(eng.committed_history)
        assert ok, cycle

    def test_open_loop_accounting_identity_holds_across_reshard(self):
        """Offered load, drops, retries, and attempts reconcile exactly even
        when the serving topology changes mid-run, and the streaming auditor
        rides the whole window."""
        eng = create_engine("obladi", self._narrow_config())
        eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        eng.attach_observer(AuditingObserver(settle_lag=2))
        eng.reshard(self._plan((4, 2, 1)))        # begins at the first wave
        run = eng.run_open_loop(mixed_source(seed=9), 24, arrivals=None,
                                clients=4, queue_limit=16)
        assert run.offered == 24
        assert run.dropped == 24 - 16             # everything arrives at once
        assert run.committed + run.aborted == \
            (run.offered - run.dropped) + run.retries
        assert len(run.results) == run.committed + run.aborted
        assert run.audit is not None and run.audit.ok
        self._drain(eng)
        assert self._topology(eng) == (4, 2, 1)
        assert len(eng.stats().migrations) == 1
        ok, cycle = check_serializable(eng.committed_history)
        assert ok, cycle


class TestElasticSeamRegression:
    """The elasticity seam is strictly pay-for-what-you-use: engines built
    without ``with_autoscale`` that never call ``reshard()`` must produce
    RunStats byte-identical to the pre-elasticity ones — the new fields stay
    empty, out of repr, and out of the run's behaviour."""

    def test_static_runs_carry_no_elasticity_state(self, engine, request):
        """Every engine variant, fixed seed: no migrations, no controller,
        neither field in the repr — and the run is reproducible byte for
        byte by a fresh identically-configured engine."""
        variant = request.node.callspec.params["engine"]
        kind, shards, servers, workers, strategy = variant
        run = engine.run_closed_loop(mixed_source(seed=11), 24, clients=8)
        assert run.migrations == ()
        assert run.controller is None
        assert "migrations" not in repr(run)
        assert "controller" not in repr(run)
        twin = create_engine(kind, _config(shards, servers, workers, strategy))
        twin.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        rerun = twin.run_closed_loop(mixed_source(seed=11), 24, clients=8)
        assert repr(run) == repr(rerun)

    def test_idle_controller_leaves_runstats_byte_identical(self):
        """The controller's one sanctioned deviation from the passive
        observer contract is actuation; a policy that never triggers must
        therefore change nothing — same seeds, one engine bare and one
        autoscaled, byte-identical RunStats."""
        idle = AutoscalePolicy(ladder=((1, 1, 1), (4, 1, 1)),
                               queue_high=10**6, queue_low=0,
                               patience=3, cooldown=3)
        runs = {}
        for label in ("bare", "autoscaled"):
            config = _config()
            if label == "autoscaled":
                config = config.with_autoscale(idle)
            eng = create_engine("obladi", config)
            eng.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
            runs[label] = eng.run_open_loop(
                mixed_source(seed=11), 32,
                arrivals=PoissonArrivals(400.0, seed=7), clients=8)
        assert runs["bare"].controller is None
        report = runs["autoscaled"].controller
        assert report is not None and report.decisions == ()
        assert runs["autoscaled"].migrations == ()
        assert repr(runs["bare"]) == repr(runs["autoscaled"])
