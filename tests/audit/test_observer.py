"""Tests for the engine observer seam and the auditing observer."""

import pytest

from repro.api import EngineConfig, create_engine
from repro.audit import AuditingObserver, EngineObserver
from repro.concurrency import check_serializable
from repro.core.client import Read, Write

NUM_KEYS = 8


def _config(seed=3):
    return (EngineConfig()
            .with_oram(num_blocks=256, z_real=8, block_size=128)
            .with_batching(read_batches=3, read_batch_size=16, write_batch_size=16)
            .with_durability(False)
            .with_encryption(False)
            .with_seed(seed))


def _engine(kind="obladi", seed=3):
    engine = create_engine(kind, _config(seed))
    engine.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
    return engine


def append_program(key):
    def program():
        value = yield Read(key)
        yield Write(key, (value or b"") + b"x")
        return value
    return program


def rmw_source(seed=11):
    import random
    rng = random.Random(seed)

    def source():
        key = f"k{rng.randrange(NUM_KEYS)}"
        return append_program(key)

    return source


class RecordingObserver(EngineObserver):
    """Counts callbacks; used to test the seam itself."""

    def __init__(self):
        self.attached_to = None
        self.waves = 0
        self.wave_results = 0
        self.run_ends = 0

    def on_attach(self, engine):
        self.attached_to = engine

    def on_wave(self, engine, results):
        self.waves += 1
        self.wave_results += len(results)

    def on_run_end(self, engine, stats):
        self.run_ends += 1


class TestObserverSeam:
    def test_attach_returns_observer_and_lists_it(self):
        engine = _engine()
        observer = RecordingObserver()
        assert engine.attach_observer(observer) is observer
        assert observer.attached_to is engine
        assert engine.observers == [observer]

    def test_detach_stops_notifications(self):
        engine = _engine()
        observer = engine.attach_observer(RecordingObserver())
        engine.submit(append_program("k1"))
        seen = observer.waves
        engine.detach_observer(observer)
        assert engine.observers == []
        engine.submit(append_program("k2"))
        assert observer.waves == seen
        engine.detach_observer(observer)   # double-detach is a no-op

    @pytest.mark.parametrize("kind", ["obladi", "nopriv", "mysql"])
    def test_every_engine_notifies_waves_and_run_end(self, kind):
        engine = _engine(kind)
        observer = engine.attach_observer(RecordingObserver())
        stats = engine.run_closed_loop(rmw_source(), 12, clients=4)
        assert observer.waves == stats.epochs
        assert observer.wave_results == len(stats.results)
        assert observer.run_ends == 1

    def test_base_observer_callbacks_are_noops(self):
        engine = _engine()
        engine.attach_observer(EngineObserver())
        result = engine.submit(append_program("k1"))
        assert result.committed


class TestAuditingObserver:
    @pytest.mark.parametrize("kind", ["obladi", "nopriv", "mysql"])
    def test_closed_loop_publishes_audit_report(self, kind):
        engine = _engine(kind)
        auditor = engine.attach_observer(AuditingObserver())
        stats = engine.run_closed_loop(rmw_source(), 16, clients=4)
        report = stats.audit
        assert report is not None and report.ok
        assert report.txns_ingested == len(engine.committed_history)
        offline_ok, _ = check_serializable(engine.committed_history)
        assert report.ok == offline_ok
        auditor.assert_ok()

    def test_open_loop_publishes_audit_report(self):
        from repro.api import PoissonArrivals
        engine = _engine()
        engine.attach_observer(AuditingObserver())
        stats = engine.run_open_loop(rmw_source(), 16,
                                     arrivals=PoissonArrivals(400.0, seed=7),
                                     clients=4)
        assert stats.audit is not None and stats.audit.ok
        assert stats.audit.txns_ingested == len(engine.committed_history)

    def test_double_notification_is_idempotent(self):
        # The engine notifies per wave AND the loop notifies at run end;
        # the cursor must prevent double ingestion.
        engine = _engine()
        auditor = engine.attach_observer(AuditingObserver())
        engine.submit(append_program("k1"))
        auditor.ingest_pending(engine)      # explicit extra notification
        auditor.ingest_pending(engine)
        assert auditor.graph.txns_ingested == 1

    def test_cursor_survives_crash_recover(self):
        engine = create_engine("obladi", _config().with_durability(True))
        engine.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        auditor = engine.attach_observer(AuditingObserver())
        engine.submit(append_program("k1"))
        engine.crash()
        engine.recover()
        engine.submit(append_program("k2"))
        assert auditor.ok
        assert auditor.graph.txns_ingested == len(engine.committed_history) == 2

    def test_attach_midstream_audits_only_the_suffix(self):
        engine = _engine()
        engine.submit(append_program("k1"))
        auditor = engine.attach_observer(AuditingObserver())
        engine.submit(append_program("k2"))
        assert auditor.graph.txns_ingested == 1

    def test_assert_ok_raises_with_violation_detail(self):
        from repro.concurrency import CommittedTransaction

        class FakeEngine:
            committed_history = [
                CommittedTransaction(txn_id=1, timestamp=1, epoch=0,
                                     read_set={"b": -1}, write_set={"a": b"x"}),
                CommittedTransaction(txn_id=2, timestamp=2, epoch=0,
                                     read_set={"a": -1}, write_set={"b": b"y"}),
            ]

        auditor = AuditingObserver()
        auditor.ingest_pending(FakeEngine())
        with pytest.raises(AssertionError, match="cycle"):
            auditor.assert_ok()


class TestByteIdentity:
    """Attaching an auditor must not perturb the run: fixed-seed RunStats
    stay byte-identical (repr) with and without the observer — the audit
    field is excluded from repr/compare — and so does the final state."""

    @pytest.mark.parametrize("kind", ["obladi", "nopriv", "mysql"])
    def test_closed_loop_runstats_repr_unchanged(self, kind):
        plain = _engine(kind)
        bare = plain.run_closed_loop(rmw_source(seed=11), 16, clients=4)
        audited_engine = _engine(kind)
        audited_engine.attach_observer(AuditingObserver())
        audited = audited_engine.run_closed_loop(rmw_source(seed=11), 16, clients=4)
        assert audited.audit is not None and bare.audit is None
        assert repr(bare) == repr(audited)
        assert [plain.read(f"k{i}") for i in range(NUM_KEYS)] == \
            [audited_engine.read(f"k{i}") for i in range(NUM_KEYS)]

    def test_open_loop_runstats_repr_unchanged(self):
        from repro.api import PoissonArrivals
        runs = []
        for with_auditor in (False, True):
            engine = _engine()
            if with_auditor:
                engine.attach_observer(AuditingObserver())
            runs.append(engine.run_open_loop(
                rmw_source(seed=11), 16,
                arrivals=PoissonArrivals(300.0, seed=5), clients=4))
        assert repr(runs[0]) == repr(runs[1])
