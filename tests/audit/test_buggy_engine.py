"""Adversarial conformance: the buggy engine must not fool the auditor."""

import pytest

from repro.api import DIAGNOSTIC_KINDS, ENGINE_KINDS, EngineConfig, create_engine
from repro.audit import FAULT_KINDS, AuditingObserver, BuggyEngine
from repro.concurrency import build_serialization_graph, check_serializable
from repro.core.client import Read, ReadMany, Write

NUM_KEYS = 8


def _config(seed=3):
    return (EngineConfig()
            .with_oram(num_blocks=256, z_real=8, block_size=128)
            .with_batching(read_batches=3, read_batch_size=16, write_batch_size=16)
            .with_durability(False)
            .with_encryption(False)
            .with_seed(seed))


def mixed_source(seed=11):
    import random
    rng = random.Random(seed)

    def source():
        a, b = rng.sample(range(NUM_KEYS), 2)

        def program():
            values = yield ReadMany([f"k{a}", f"k{b}"])
            yield Write(f"k{a}", (values[f"k{a}"] or b"") + b"+")
            return True

        return program

    return source


def _buggy(kinds=None, period=3, seed=3):
    engine = create_engine("buggy",
                           _config(seed).with_faults(kinds=kinds, period=period))
    engine.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
    return engine


class TestRegistration:
    def test_buggy_is_a_diagnostic_kind_not_an_evaluated_one(self):
        assert "buggy" in DIAGNOSTIC_KINDS
        assert "buggy" not in ENGINE_KINDS   # must never feed a figure

    def test_create_engine_builds_a_buggy_wrapper(self):
        engine = create_engine("buggy", _config())
        assert isinstance(engine, BuggyEngine)
        assert engine.name == "buggy"
        assert engine.kinds == FAULT_KINDS

    def test_fault_plan_flows_from_config(self):
        engine = create_engine(
            "buggy", _config().with_faults(kinds=("stale_read",), period=7,
                                           fault_seed=9))
        assert engine.kinds == ("stale_read",)
        assert engine.period == 7

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            create_engine("buggy", _config().with_faults(kinds=("phantom",)))


class TestDelegation:
    def test_execution_is_untouched_only_the_report_lies(self):
        """The wrapper corrupts the reported history, not the run: results,
        timing and final state match a plain Obladi engine bit for bit."""
        plain = create_engine("obladi", _config())
        plain.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        honest = plain.run_closed_loop(mixed_source(seed=11), 24, clients=8)

        buggy = _buggy()
        lied = buggy.run_closed_loop(mixed_source(seed=11), 24, clients=8)

        assert (honest.committed, honest.aborted, honest.elapsed_ms,
                honest.latencies_ms) == \
            (lied.committed, lied.aborted, lied.elapsed_ms, lied.latencies_ms)
        assert [plain.read(f"k{i}") for i in range(NUM_KEYS)] == \
            [buggy.read(f"k{i}") for i in range(NUM_KEYS)]
        assert buggy.stats().engine == "buggy"
        assert buggy.injected                       # but the report lies
        honest_ok, _ = check_serializable(plain.committed_history)
        lied_ok, _ = check_serializable(buggy.committed_history)
        assert honest_ok and not lied_ok

    def test_crash_recover_delegates(self):
        engine = create_engine("buggy", _config().with_faults(period=2)
                               .with_durability(True))
        engine.load_initial_data({f"k{i}": b"0" for i in range(NUM_KEYS)})
        assert engine.supports_crash_recovery
        engine.run_closed_loop(mixed_source(seed=5), 8, clients=4)
        history_before = len(engine.committed_history)
        engine.crash()
        engine.recover()
        engine.run_closed_loop(mixed_source(seed=6), 8, clients=4)
        assert len(engine.committed_history) > history_before


class TestDetection:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_every_injection_is_detected_by_auditor_and_offline(self, kind):
        engine = _buggy(kinds=(kind,))
        auditor = engine.attach_observer(AuditingObserver(settle_lag=2))
        stats = engine.run_closed_loop(mixed_source(seed=5), 48, clients=8)

        assert engine.injected, f"no {kind} injection opportunity arose"
        assert all(inj.kind == kind for inj in engine.injected)

        # The streaming auditor flags the corrupted history...
        report = stats.audit
        assert not report.ok
        # ...and so does the offline checker (ground truth).
        offline_ok, offline_cycle = check_serializable(engine.committed_history)
        assert not offline_ok and offline_cycle

        # Every single injection has a concrete witness: a violation whose
        # txn/cycle mentions one of the corrupted transactions, or a
        # stale-read/time-travel witness on one of them.
        flagged = set()
        for violation in report.violations:
            flagged.add(violation.txn_id)
            if violation.cycle:
                flagged.update(violation.cycle)
        for injection in engine.injected:
            assert set(injection.txn_ids) & flagged, \
                f"injection {injection} escaped the auditor"

    def test_reported_cycles_are_genuine_offline_cycles(self):
        engine = _buggy()
        auditor = engine.attach_observer(AuditingObserver(settle_lag=4))
        engine.run_closed_loop(mixed_source(seed=7), 48, clients=8)
        report = auditor.report()
        assert not report.ok
        offline = build_serialization_graph(engine.committed_history)
        cycles = [v.cycle for v in report.violations if v.cycle]
        assert cycles, "expected at least one cycle witness"
        for cycle in cycles:
            # Each hop of the witness path (including the closing hop) is an
            # edge of the offline DSG over the full corrupted history.
            for src, dst in zip(cycle, cycle[1:] + cycle[:1]):
                assert dst in offline.edges[src], \
                    f"witness hop {src}->{dst} missing offline"

    def test_clean_periods_stay_clean(self):
        # With a period longer than the run, nothing is injected and the
        # buggy engine is indistinguishable from a correct one.
        engine = _buggy(period=10_000)
        engine.attach_observer(AuditingObserver())
        stats = engine.run_closed_loop(mixed_source(seed=5), 16, clients=4)
        assert not engine.injected
        assert stats.audit.ok
        offline_ok, _ = check_serializable(engine.committed_history)
        assert offline_ok
