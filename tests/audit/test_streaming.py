"""Unit tests for the incremental DSG maintainer and its garbage collector."""

import pytest

from repro.audit import KeyFrontier, StreamingSerializationGraph
from repro.concurrency import CommittedTransaction, check_serializable


def txn(txn_id, ts=None, reads=None, writes=None, epoch=0):
    return CommittedTransaction(
        txn_id=txn_id, timestamp=ts if ts is not None else txn_id, epoch=epoch,
        read_set=dict(reads or {}),
        write_set={key: b"v" for key in (writes or ())})


class TestIncrementalCycleDetection:
    def test_serial_history_stays_clean(self):
        graph = StreamingSerializationGraph()
        graph.ingest_batch([txn(1, writes=["a"]),
                            txn(2, reads={"a": 1}, writes=["a"]),
                            txn(3, reads={"a": 2})])
        assert graph.ok
        assert graph.retained_nodes == 3

    def test_write_skew_cycle_detected_within_batch(self):
        # Each transaction reads the initial version of the other's key:
        # rw edges both ways, the classic 2-cycle.
        graph = StreamingSerializationGraph()
        graph.ingest_batch([txn(1, reads={"b": -1}, writes=["a"]),
                            txn(2, reads={"a": -1}, writes=["b"])])
        assert not graph.ok
        violation = graph.violations[0]
        assert violation.kind == "cycle"
        assert set(violation.cycle) == {1, 2}

    def test_cycle_detected_across_batches(self):
        graph = StreamingSerializationGraph(settle_lag=4)
        graph.ingest_batch([txn(1, reads={"b": -1}, writes=["a"])])
        assert graph.ok
        graph.ingest_batch([txn(2, reads={"a": -1}, writes=["b"])])
        assert not graph.ok
        assert graph.violations[0].kind == "cycle"

    def test_reported_cycle_is_a_real_path(self):
        # A 3-cycle: t1 -wr:a-> t2 -wr:b-> t3 -rw:c-> t1.
        graph = StreamingSerializationGraph(settle_lag=8)
        history = [txn(1, writes=["a", "c"]),
                   txn(2, reads={"a": 1}, writes=["b"]),
                   txn(3, reads={"b": 2, "c": -1})]
        graph.ingest_batch(history)
        assert not graph.ok
        cycle = graph.violations[0].cycle
        assert len(cycle) >= 2
        # Every consecutive hop of the witness (and the closing hop) is a
        # labelled edge of the graph or the rejected closing edge itself.
        offline_ok, _ = check_serializable(history)
        assert not offline_ok

    def test_graph_stays_usable_after_a_cycle(self):
        graph = StreamingSerializationGraph()
        graph.ingest_batch([txn(1, reads={"b": -1}, writes=["a"]),
                            txn(2, reads={"a": -1}, writes=["b"])])
        assert not graph.ok
        before = len(graph.violations)
        graph.ingest_batch([txn(3, reads={"a": 1}, writes=["c"])])
        assert len(graph.violations) == before   # clean txn adds nothing

    def test_wr_edge_binds_late_within_a_batch(self):
        # The reader's record arrives before its writer's (same batch, e.g.
        # commit-order reporting): the wr edge must still materialise.
        graph = StreamingSerializationGraph(settle_lag=4)
        graph.ingest_batch([txn(5, ts=5, reads={"a": 7}),
                            txn(7, ts=7, writes=["a"])])
        assert graph.ok
        assert "wr:a" in graph.edge_labels(7, 5)

    def test_duplicate_txn_id_flagged(self):
        graph = StreamingSerializationGraph()
        graph.ingest_batch([txn(1, writes=["a"])])
        graph.ingest_batch([txn(1, writes=["a"])])
        assert not graph.ok
        assert graph.txns_ingested == 1


class TestGarbageCollection:
    def make_batches(self, count, keys=("a", "b"), reads_latest=True):
        """``count`` single-txn batches of read-modify-writes over ``keys``."""
        batches, last_writer = [], {key: -1 for key in keys}
        for i in range(1, count + 1):
            key = keys[i % len(keys)]
            reads = {key: last_writer[key]} if reads_latest else {}
            batches.append([txn(i, reads=reads, writes=[key])])
            last_writer[key] = i
        return batches

    def test_settlement_collapses_old_batches(self):
        graph = StreamingSerializationGraph(settle_lag=2)
        for batch in self.make_batches(10):
            graph.ingest_batch(batch)
        assert graph.ok
        assert graph.txns_ingested == 10
        assert graph.txns_settled == 8          # all but the lag window
        assert graph.retained_nodes == 2
        assert graph.batches_settled == 8
        assert graph.watermark_ts == 8

    def test_frontier_summarises_settled_writers_and_readers(self):
        graph = StreamingSerializationGraph(settle_lag=1)
        graph.ingest_batch([txn(1, writes=["a"])])
        graph.ingest_batch([txn(2, reads={"a": 1})])
        graph.ingest_batch([txn(3, writes=["b"])])   # settles txn 1
        graph.ingest_batch([txn(4, writes=["b"])])   # settles txn 2
        frontier = graph.frontier("a")
        assert frontier == KeyFrontier(last_writer_ts=1, last_writer_txn=1,
                                       max_reader_ts=2)

    def test_memory_high_water_is_bounded_by_the_window(self):
        graph = StreamingSerializationGraph(settle_lag=2)
        for batch in self.make_batches(200):
            graph.ingest_batch(batch)
        assert graph.ok
        report = graph.report()
        assert report.txns_ingested == 200
        # One txn per batch, lag 2: never more than lag+1 nodes retained.
        assert report.max_retained_nodes <= 3
        assert report.retained_nodes <= 3
        assert report.max_retained_edges <= 6

    def test_stale_read_against_settled_frontier_is_witnessed(self):
        graph = StreamingSerializationGraph(settle_lag=1)
        for batch in self.make_batches(6, keys=("a",)):
            graph.ingest_batch(batch)
        assert graph.ok
        # txn 7 claims it read version 1 of "a", long since overwritten and
        # settled: the writer node is gone, so the frontier witnesses it.
        graph.ingest_batch([txn(7, reads={"a": 1})])
        assert not graph.ok
        violation = graph.violations[0]
        assert violation.kind == "stale-read"
        assert violation.key == "a"

    def test_time_travel_write_below_watermark_is_witnessed(self):
        graph = StreamingSerializationGraph(settle_lag=1)
        for batch in self.make_batches(6, keys=("a",)):
            graph.ingest_batch(batch)
        graph.ingest_batch([txn(100, ts=2, writes=["a"])])
        assert not graph.ok
        kinds = {violation.kind for violation in graph.violations}
        assert "time-travel-write" in kinds or "watermark" in kinds

    def test_settlement_defers_when_timestamps_interleave(self):
        # Batches whose timestamp ranges overlap must not settle past each
        # other: the fence defers GC instead of risking a wrong frontier.
        graph = StreamingSerializationGraph(settle_lag=1)
        graph.ingest_batch([txn(10, ts=10, writes=["a"])])
        graph.ingest_batch([txn(5, ts=5, writes=["a"])])   # older ts, newer batch
        graph.ingest_batch([txn(6, ts=6, writes=["a"])])
        graph.ingest_batch([txn(7, ts=7, writes=["a"])])
        assert graph.txns_settled == 0
        assert graph.retained_nodes == 4

    def test_report_snapshot_fields(self):
        graph = StreamingSerializationGraph(settle_lag=2)
        for batch in self.make_batches(8):
            graph.ingest_batch(batch)
        report = graph.report()
        assert report.ok and report.violations == ()
        assert report.batches_ingested == 8
        assert report.retained_nodes == graph.retained_nodes
        assert report.frontier_keys == 2
        assert report.watermark_ts == graph.watermark_ts
        assert report.first_cycle() is None

    def test_settle_lag_validation(self):
        with pytest.raises(ValueError):
            StreamingSerializationGraph(settle_lag=0)


class TestOfflineEquivalenceOnHandHistories:
    HISTORIES = [
        [],
        [txn(1, writes=["a"]), txn(2, reads={"a": 1}, writes=["a"]),
         txn(3, reads={"a": 2})],
        [txn(1, reads={"b": -1}, writes=["a"]),
         txn(2, reads={"a": -1}, writes=["b"])],
        [txn(i, writes=[f"k{i}"]) for i in range(1, 6)],
        [txn(1, writes=["a"]), txn(2, writes=["a"]),
         txn(3, reads={"a": 2}, writes=["b"]), txn(4, reads={"b": 3})],
        # RMW claiming a stale base: lost update, offline-cyclic.
        [txn(1, writes=["a"]), txn(2, reads={"a": 1}, writes=["a"]),
         txn(3, reads={"a": 1}, writes=["a"])],
    ]

    @pytest.mark.parametrize("history", HISTORIES,
                             ids=lambda h: f"{len(h)}txns")
    @pytest.mark.parametrize("batch_size", [1, 2, 10])
    def test_streaming_verdict_matches_offline(self, history, batch_size):
        offline_ok, _ = check_serializable(history)
        graph = StreamingSerializationGraph(settle_lag=2)
        for start in range(0, len(history), batch_size):
            graph.ingest_batch(history[start:start + batch_size])
        assert graph.ok == offline_ok
