"""Unit tests for the sharded trusted proxy tier (``repro.proxytier``)."""

import pytest

from repro.concurrency.transaction import AbortReason, TransactionStatus
from repro.core.client import Read, ReadMany, Write
from repro.core.config import ObladiConfig, RingOramConfig
from repro.core.proxy import ObladiProxy
from repro.proxytier import (ProxyCoordinator, ProxyWorker,
                             ShardedMVTSOManager, ShardedVersionCache,
                             build_proxy, worker_for_key)
from repro.sharding import key_partition
from repro.sim.latency import CpuCostModel


def make_config(workers=4, cc_op_ms=0.0, **overrides):
    defaults = dict(
        oram=RingOramConfig(num_blocks=256, z_real=4, block_size=96),
        read_batches=3, read_batch_size=16, write_batch_size=16,
        backend="dummy", durability=False, seed=5, encrypt=False,
        proxy_workers=workers, cost_model=CpuCostModel(cc_op_ms=cc_op_ms),
    )
    defaults.update(overrides)
    return ObladiConfig(**defaults)


class TestBuildProxy:
    def test_single_worker_builds_plain_proxy(self):
        proxy = build_proxy(make_config(workers=1))
        assert type(proxy) is ObladiProxy

    def test_multi_worker_builds_coordinator(self):
        proxy = build_proxy(make_config(workers=4))
        assert isinstance(proxy, ProxyCoordinator)
        assert len(proxy.workers) == 4

    def test_routing_reuses_the_sharding_partition_map(self):
        config = make_config(workers=4, partition_seed=9)
        proxy = build_proxy(config)
        for key in ("a", "account:17", "zz"):
            expected = key_partition(key, 4, partition_seed=9)
            assert worker_for_key(key, 4, 9) == expected
            assert proxy.worker_of(key) == expected


class TestShardedState:
    def test_chains_live_on_the_owning_worker_slice(self):
        workers = [ProxyWorker(i) for i in range(4)]
        manager = ShardedMVTSOManager(workers, lambda key: worker_for_key(key, 4))
        txn = manager.begin(epoch=0)
        manager.write(txn, "k1", b"v")
        owner = worker_for_key("k1", 4)
        for index, worker in enumerate(workers):
            held = worker.mvtso_store.get_chain("k1")
            assert (held is not None) == (index == owner)
        # Aggregate views merge the slices.
        assert "k1" in manager.store.keys()
        assert len(manager.store) == 1

    def test_cache_base_values_live_on_the_owning_worker(self):
        workers = [ProxyWorker(i) for i in range(4)]
        cache = ShardedVersionCache(workers, lambda key: worker_for_key(key, 4))
        cache.install_base("k1", b"v")
        owner = worker_for_key("k1", 4)
        for index, worker in enumerate(workers):
            assert ("k1" in worker.base_values) == (index == owner)
        assert cache.has_base("k1") and cache.base_value("k1") == b"v"
        assert not cache.has_base("k2")
        cache.reset()
        assert not cache.has_base("k1")

    def test_cache_store_stays_cold_like_the_single_proxy(self):
        """The single proxy keeps ``VersionCache.store`` distinct from the
        MVTSO chains; the sharded tier must mirror that, or read paths
        would diverge from the ``proxy_workers=1`` behaviour."""
        proxy = build_proxy(make_config(workers=4))
        proxy.load_initial_data({f"k{i}": b"0" for i in range(8)})

        def program():
            value = yield Read("k1")
            yield Write("k1", (value or b"") + b"x")
            return value

        proxy.submit(program)
        proxy.run_epoch()
        assert proxy.mvtso.store is not proxy.data_layer.cache.store
        for worker in proxy.workers:
            assert len(worker.cache_store) == 0


class TestEpochBarrier:
    def make_manager(self):
        workers = [ProxyWorker(i) for i in range(4)]
        return workers, ShardedMVTSOManager(
            workers, lambda key: worker_for_key(key, 4))

    def test_unanimous_votes_commit(self):
        workers, manager = self.make_manager()
        writer = manager.begin(epoch=0)
        manager.write(writer, "k1", b"v")
        reader = manager.begin(epoch=0)
        manager.read(reader, "k1")
        writer.request_commit()
        reader.request_commit()
        decisions = manager.prepare_epoch([writer, reader])
        assert decisions[writer.txn_id] and decisions[reader.txn_id]
        assert manager.barrier_stats.transactions_voted == 2
        assert manager.barrier_stats.abort_votes == 0
        assert manager.can_commit(writer) and manager.can_commit(reader)

    def test_participant_veto_blocks_commit(self):
        """A worker holding an aborted dependency votes abort, and the
        unanimous barrier turns that single veto into a global refusal."""
        workers, manager = self.make_manager()
        writer = manager.begin(epoch=0)
        manager.write(writer, "k1", b"v")
        reader = manager.begin(epoch=0)
        manager.read(reader, "k1")          # dependency on the writer
        reader.request_commit()
        # Abort the writer *without* the manager's cascade, as the
        # write-batch shedding path can: the barrier must catch it.
        writer.mark_aborted(AbortReason.BATCH_FULL)
        decisions = manager.prepare_epoch([reader])
        assert decisions[reader.txn_id] is False
        assert manager.barrier_stats.vetoed == 1
        assert manager.barrier_stats.abort_votes >= 1
        assert not manager.can_commit(reader)

    def test_only_participants_vote(self):
        workers, manager = self.make_manager()
        txn = manager.begin(epoch=0)
        manager.write(txn, "k1", b"v")
        txn.request_commit()
        manager.prepare_epoch([txn])
        owner = worker_for_key("k1", 4)
        for index, worker in enumerate(workers):
            assert worker.stats_votes == (1 if index == owner else 0)

    def test_reset_clears_votes_and_worker_state(self):
        workers, manager = self.make_manager()
        txn = manager.begin(epoch=0)
        manager.write(txn, "k1", b"v")
        txn.request_commit()
        manager.prepare_epoch([txn])
        manager.reset_epoch_state()
        assert manager._vote_memo == {}
        for worker in workers:
            assert worker.txn_deps == {} and worker.txn_touched == set()
            assert len(worker.mvtso_store) == 0


class TestWorkerLaneCpu:
    def run_epochs(self, proxy, epochs=4):
        proxy.load_initial_data({f"k{i}": b"0" for i in range(32)})
        for epoch in range(epochs):
            for offset in range(8):
                key_a, key_b = f"k{(epoch * 7 + offset) % 32}", f"k{offset}"

                def program(key_a=key_a, key_b=key_b):
                    values = yield ReadMany([key_a, key_b])
                    yield Write(key_a, (values[key_a] or b"") + b"+")
                    return True

                proxy.submit(program)
            proxy.run_epoch()
        return proxy

    def test_unpriced_cc_never_touches_the_clock(self):
        single = self.run_epochs(build_proxy(make_config(workers=1)))
        sharded = self.run_epochs(build_proxy(make_config(workers=4)))
        assert sharded.clock.now_ms == single.clock.now_ms
        assert sharded.cc_cpu_ms == 0.0
        assert sharded.lane_stats.charges == 0

    def test_priced_cc_charges_parallel_lanes(self):
        # A proxy-CPU-bound shape: the batch interval is too small to absorb
        # the CC work, so the serial-vs-lanes difference reaches the clock
        # (with roomy intervals both are absorbed and only cc_cpu_ms moves).
        single = self.run_epochs(build_proxy(
            make_config(workers=1, cc_op_ms=0.05, batch_interval_ms=0.25)))
        sharded = self.run_epochs(build_proxy(
            make_config(workers=4, cc_op_ms=0.05, batch_interval_ms=0.25)))
        # Identical transaction outcomes either way...
        assert sharded.stats_committed == single.stats_committed
        # ...but the sharded tier charges the lanes' makespan, which beats
        # the single proxy's serial charge whenever work is spread out.
        assert 0 < sharded.cc_cpu_ms < single.cc_cpu_ms
        assert sharded.clock.now_ms < single.clock.now_ms
        assert sharded.lane_stats.speedup > 1.0
        assert sharded.lane_stats.lane_ms <= sharded.lane_stats.serial_ms
        # Per-worker lane time accumulates on the workers that did the work.
        busy = [worker for worker in sharded.workers if worker.cpu_ms > 0]
        assert busy
        assert sum(worker.cpu_ms for worker in sharded.workers) == pytest.approx(
            sharded.lane_stats.serial_ms)

    def test_epoch_summary_worker_ops_sum_to_manager_totals(self):
        sharded = self.run_epochs(build_proxy(make_config(workers=4)))
        per_worker_totals = sharded.worker_op_totals()
        summed = [tuple(sum(epoch.worker_ops[index][column]
                            for epoch in sharded.epoch_summaries)
                        for column in (0, 1))
                  for index in range(4)]
        # Totals also include the bulk-load-free interactive reads performed
        # outside run_epoch; here everything went through epochs, so the
        # per-epoch breakdowns must add up exactly.
        assert [tuple(total) for total in per_worker_totals] == summed


class TestCrashRecovery:
    def test_coordinator_recovers_as_coordinator(self):
        config = make_config(workers=4, durability=True, backend="server")
        proxy = build_proxy(config)
        proxy.load_initial_data({f"k{i}": b"0" for i in range(16)})

        def program():
            value = yield Read("k3")
            yield Write("k3", (value or b"") + b"x")
            return value

        proxy.submit(program)
        proxy.run_epoch()
        proxy.crash()
        from repro.recovery.manager import recover_proxy
        recovered, report = recover_proxy(proxy.storage, config,
                                          master_key=proxy.master_key)
        assert isinstance(recovered, ProxyCoordinator)
        assert len(recovered.workers) == 4
        result = recovered.execute_transaction(
            lambda: (lambda: (yield Read("k3")))())
        assert result.return_value == b"0x"
