"""Tests for tree geometry and the deterministic eviction schedule."""

import pytest

from repro.oram import path_math


class TestTreeGeometry:
    def test_tree_levels_power_of_two(self):
        assert path_math.tree_levels(1) == 0
        assert path_math.tree_levels(8) == 3
        assert path_math.tree_levels(1024) == 10

    def test_tree_levels_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            path_math.tree_levels(6)

    def test_num_buckets(self):
        assert path_math.num_buckets(0) == 1
        assert path_math.num_buckets(3) == 15

    def test_bucket_id_round_trip(self):
        for level in range(5):
            for index in range(1 << level):
                bid = path_math.bucket_id(level, index)
                assert path_math.bucket_level(bid) == level
                assert path_math.bucket_index_in_level(bid) == index

    def test_bucket_id_out_of_range(self):
        with pytest.raises(ValueError):
            path_math.bucket_id(2, 4)

    def test_root_is_bucket_zero(self):
        assert path_math.bucket_id(0, 0) == 0


class TestPaths:
    def test_path_starts_at_root_and_ends_at_leaf(self):
        depth = 4
        buckets = path_math.path_buckets(leaf=5, depth=depth)
        assert buckets[0] == 0
        assert len(buckets) == depth + 1
        assert path_math.bucket_level(buckets[-1]) == depth

    def test_adjacent_levels_are_parent_child(self):
        buckets = path_math.path_buckets(leaf=11, depth=4)
        for parent, child in zip(buckets, buckets[1:]):
            assert (child - 1) // 2 == parent

    def test_all_paths_distinct_leaves(self):
        depth = 3
        leaves = {path_math.path_buckets(leaf, depth)[-1] for leaf in range(1 << depth)}
        assert len(leaves) == 1 << depth

    def test_leaf_out_of_range(self):
        with pytest.raises(ValueError):
            path_math.path_buckets(leaf=8, depth=3)

    def test_bucket_on_path(self):
        depth = 3
        buckets = path_math.path_buckets(leaf=6, depth=depth)
        for bid in buckets:
            assert path_math.bucket_on_path(bid, 6, depth)
        assert not path_math.bucket_on_path(buckets[-1], 5, depth)

    def test_deepest_common_level_same_leaf(self):
        assert path_math.deepest_common_level(5, 5, 4) == 4

    def test_deepest_common_level_root_only(self):
        # Leaves 0 and 2^d - 1 share only the root.
        assert path_math.deepest_common_level(0, 15, 4) == 0

    def test_deepest_common_level_partial(self):
        # Leaves 0b100 and 0b101 share the top two levels plus the root.
        assert path_math.deepest_common_level(4, 5, 3) == 2


class TestEvictionSchedule:
    def test_reverse_bits(self):
        assert path_math.reverse_bits(0b001, 3) == 0b100
        assert path_math.reverse_bits(0b110, 3) == 0b011
        assert path_math.reverse_bits(0, 4) == 0

    def test_reverse_bits_rejects_overflow(self):
        with pytest.raises(ValueError):
            path_math.reverse_bits(8, 3)

    def test_eviction_path_cycles_through_all_leaves(self):
        depth = 3
        visited = {path_math.eviction_path(g, depth) for g in range(1 << depth)}
        assert visited == set(range(1 << depth))

    def test_eviction_path_is_periodic(self):
        depth = 4
        for g in range(40):
            assert path_math.eviction_path(g, depth) == path_math.eviction_path(
                g + (1 << depth), depth)

    def test_consecutive_evictions_spread_across_subtrees(self):
        # Reverse-lexicographic order alternates between left and right
        # subtrees, which is what balances bucket rewrites.
        depth = 3
        first, second = path_math.eviction_path(0, depth), path_math.eviction_path(1, depth)
        assert (first < 4) != (second < 4)

    def test_eviction_count_root_equals_g(self):
        assert path_math.eviction_count_for_bucket(0, 17, 5) == 17

    def test_eviction_count_matches_enumeration(self):
        depth = 4
        for g_total in (0, 1, 5, 16, 33):
            observed = {bid: 0 for bid in range(path_math.num_buckets(depth))}
            for g in range(g_total):
                for bid in path_math.path_buckets(path_math.eviction_path(g, depth), depth):
                    observed[bid] += 1
            for bid, count in observed.items():
                assert path_math.eviction_count_for_bucket(bid, g_total, depth) == count, (
                    f"bucket {bid} at G={g_total}")

    def test_level_l_bucket_written_once_per_period(self):
        depth = 4
        for level in range(depth + 1):
            bid = path_math.bucket_id(level, 0)
            per_period = (path_math.eviction_count_for_bucket(bid, 1 << depth, depth))
            assert per_period == (1 << depth) >> level
